//! Span/event journal: bounded per-thread ring buffers drained to a
//! JSONL file alongside the session.
//!
//! The recording discipline mirrors the tool it observes: each thread
//! writes only into its own fixed-capacity ring, so the journal's memory
//! is `threads x capacity x event` and never grows with run length. A
//! full ring drops the newest event and bumps a shared atomic
//! `dropped_events` counter instead of allocating. The hot path touches
//! only the owning ring's lock, which is contended solely by the drainer
//! (a periodic, amortized pass) — never by other recording threads.
//!
//! Drained events are appended to `obs.jsonl` as one JSON object per
//! line. Because lines are appended incrementally and each is
//! self-contained, a crashed run's journal survives for postmortem: a
//! reader tolerates a torn final line (see [`read_journal`]).

use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::{self, Value};

/// Default per-thread ring capacity (events). At ~100 bytes/event this
/// bounds the journal at ~800 KiB per recording thread, far inside the
/// tool's own 3.3 MB/thread budget.
pub const DEFAULT_RING_CAPACITY: usize = 8192;

/// Which layer of the stack an event belongs to. Renders as a separate
/// process row in the Chrome trace export.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    /// Online collection: app threads, compression workers, writer.
    Runtime,
    /// Offline analysis: pipeline stages and workers, live poller.
    Offline,
    /// The archer-sim comparison tool.
    Archer,
    /// CLI orchestration (run/analyze/watch/fuzz driver activity).
    Cli,
}

impl Layer {
    /// Stable lowercase name used in the JSONL `layer` field.
    pub fn as_str(self) -> &'static str {
        match self {
            Layer::Runtime => "runtime",
            Layer::Offline => "offline",
            Layer::Archer => "archer",
            Layer::Cli => "cli",
        }
    }

    /// Stable synthetic pid for Chrome trace export (one process row per
    /// layer).
    pub fn pid(self) -> u64 {
        match self {
            Layer::Runtime => 1,
            Layer::Offline => 2,
            Layer::Archer => 3,
            Layer::Cli => 4,
        }
    }

    /// Parses the JSONL `layer` field.
    pub fn from_name(s: &str) -> Option<Layer> {
        match s {
            "runtime" => Some(Layer::Runtime),
            "offline" => Some(Layer::Offline),
            "archer" => Some(Layer::Archer),
            "cli" => Some(Layer::Cli),
            _ => None,
        }
    }
}

/// One journal record: a completed span (`dur_us` set) or an instant.
#[derive(Clone, Debug, PartialEq)]
pub struct JournalEvent {
    /// Owning layer.
    pub layer: Layer,
    /// Recording thread's label (e.g. `app-3`, `writer`, `oa-worker-0`).
    pub thread: String,
    /// Event name (e.g. `flush-handoff`, `compress`, `build-structure`).
    pub name: String,
    /// Start time, microseconds since the journal epoch.
    pub t_us: u64,
    /// Span duration in microseconds; `None` for instant events.
    pub dur_us: Option<u64>,
    /// Numeric attributes (byte counts, depths, ...).
    pub args: Vec<(String, f64)>,
}

impl JournalEvent {
    /// Serializes to one JSONL line (without the trailing newline).
    pub fn to_json(&self) -> Value {
        let mut pairs = vec![
            ("t".to_string(), Value::Num(self.t_us as f64)),
            ("layer".to_string(), Value::Str(self.layer.as_str().to_string())),
            ("thread".to_string(), Value::Str(self.thread.clone())),
            ("name".to_string(), Value::Str(self.name.clone())),
        ];
        if let Some(dur) = self.dur_us {
            pairs.push(("dur".to_string(), Value::Num(dur as f64)));
        }
        if !self.args.is_empty() {
            let args = self.args.iter().map(|(k, v)| (k.clone(), Value::Num(*v))).collect();
            pairs.push(("args".to_string(), Value::Obj(args)));
        }
        Value::Obj(pairs)
    }

    /// Parses one journal line.
    pub fn from_json(v: &Value) -> Result<JournalEvent, String> {
        let t_us = v.get("t").and_then(Value::as_u64).ok_or("missing t")?;
        let layer = v
            .get("layer")
            .and_then(Value::as_str)
            .and_then(Layer::from_name)
            .ok_or("missing/unknown layer")?;
        let thread = v.get("thread").and_then(Value::as_str).ok_or("missing thread")?;
        let name = v.get("name").and_then(Value::as_str).ok_or("missing name")?;
        let dur_us = v.get("dur").and_then(Value::as_u64);
        let mut args = Vec::new();
        if let Some(pairs) = v.get("args").and_then(Value::as_obj) {
            for (k, av) in pairs {
                args.push((k.clone(), av.as_f64().ok_or("non-numeric arg")?));
            }
        }
        Ok(JournalEvent {
            layer,
            thread: thread.to_string(),
            name: name.to_string(),
            t_us,
            dur_us,
            args,
        })
    }
}

struct Ring {
    layer: Layer,
    label: String,
    events: Mutex<VecDeque<JournalEvent>>,
}

struct JournalInner {
    epoch: Instant,
    capacity: usize,
    rings: Mutex<Vec<Arc<Ring>>>,
    // Shared ring for events not tied to a registered thread (registry
    // snapshots, drop markers); avoids growing the ring list per record.
    meta: Arc<Ring>,
    dropped: AtomicU64,
}

/// The shared journal: hands out per-thread recorders and drains them.
#[derive(Clone)]
pub struct Journal {
    inner: Arc<JournalInner>,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("capacity", &self.inner.capacity)
            .field("dropped", &self.dropped_events())
            .finish()
    }
}

impl Default for Journal {
    fn default() -> Self {
        Journal::new(DEFAULT_RING_CAPACITY)
    }
}

impl Journal {
    /// Creates a journal whose per-thread rings hold `capacity` events.
    pub fn new(capacity: usize) -> Journal {
        let meta = Arc::new(Ring {
            layer: Layer::Cli,
            label: "metrics".to_string(),
            events: Mutex::new(VecDeque::new()),
        });
        Journal {
            inner: Arc::new(JournalInner {
                epoch: Instant::now(),
                capacity: capacity.max(1),
                rings: Mutex::new(vec![Arc::clone(&meta)]),
                meta,
                dropped: AtomicU64::new(0),
            }),
        }
    }

    /// Records a pre-built event into the shared meta ring (same bounded
    /// drop-and-count discipline as per-thread rings). The event keeps
    /// its own layer/thread attribution.
    pub fn record(&self, event: JournalEvent) {
        let mut events = self.inner.meta.events.lock().expect("ring lock");
        if events.len() >= self.inner.capacity {
            drop(events);
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        events.push_back(event);
    }

    /// Microseconds since the journal epoch.
    pub fn now_us(&self) -> u64 {
        self.inner.epoch.elapsed().as_micros() as u64
    }

    /// Registers a recorder for one thread. Call once per thread; the
    /// handle is cheap to clone but rings are not deduplicated by label.
    pub fn for_thread(&self, layer: Layer, label: impl Into<String>) -> ThreadJournal {
        let ring =
            Arc::new(Ring { layer, label: label.into(), events: Mutex::new(VecDeque::new()) });
        self.inner.rings.lock().expect("journal lock").push(Arc::clone(&ring));
        ThreadJournal { journal: self.clone(), ring }
    }

    /// Events dropped because a ring was full.
    pub fn dropped_events(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Removes and returns all buffered events, oldest first per ring,
    /// merged and sorted by start time.
    pub fn drain(&self) -> Vec<JournalEvent> {
        let rings: Vec<Arc<Ring>> = self.inner.rings.lock().expect("journal lock").clone();
        let mut out = Vec::new();
        for ring in rings {
            let mut events = ring.events.lock().expect("ring lock");
            out.extend(events.drain(..));
        }
        out.sort_by_key(|e| e.t_us);
        out
    }
}

/// Per-thread recording handle. Records go into this thread's ring only.
#[derive(Clone)]
pub struct ThreadJournal {
    journal: Journal,
    ring: Arc<Ring>,
}

impl std::fmt::Debug for ThreadJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadJournal").field("label", &self.ring.label).finish()
    }
}

impl ThreadJournal {
    /// Microseconds since the journal epoch.
    pub fn now_us(&self) -> u64 {
        self.journal.now_us()
    }

    /// Starts a scoped span; recorded when the guard drops.
    pub fn span(&self, name: impl Into<String>) -> Span<'_> {
        Span {
            recorder: self,
            name: name.into(),
            start_us: self.journal.now_us(),
            args: Vec::new(),
        }
    }

    /// Records an already-measured span (start and duration in
    /// microseconds since the journal epoch).
    pub fn span_closed(
        &self,
        name: impl Into<String>,
        start_us: u64,
        dur_us: u64,
        args: Vec<(String, f64)>,
    ) {
        self.push(JournalEvent {
            layer: self.ring.layer,
            thread: self.ring.label.clone(),
            name: name.into(),
            t_us: start_us,
            dur_us: Some(dur_us),
            args,
        });
    }

    /// Records an instant event.
    pub fn instant(&self, name: impl Into<String>, args: Vec<(String, f64)>) {
        let now = self.journal.now_us();
        self.push(JournalEvent {
            layer: self.ring.layer,
            thread: self.ring.label.clone(),
            name: name.into(),
            t_us: now,
            dur_us: None,
            args,
        });
    }

    fn push(&self, event: JournalEvent) {
        let mut events = self.ring.events.lock().expect("ring lock");
        if events.len() >= self.journal.inner.capacity {
            drop(events);
            self.journal.inner.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        events.push_back(event);
    }
}

/// Scoped span guard: measures from creation to drop.
pub struct Span<'a> {
    recorder: &'a ThreadJournal,
    name: String,
    start_us: u64,
    args: Vec<(String, f64)>,
}

impl Span<'_> {
    /// Attaches a numeric attribute.
    pub fn arg(mut self, key: impl Into<String>, value: f64) -> Self {
        self.args.push((key.into(), value));
        self
    }

    /// Attaches a numeric attribute to an existing guard (for values
    /// known only mid-span).
    pub fn set_arg(&mut self, key: impl Into<String>, value: f64) {
        self.args.push((key.into(), value));
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let end = self.recorder.now_us();
        self.recorder.span_closed(
            std::mem::take(&mut self.name),
            self.start_us,
            end.saturating_sub(self.start_us),
            std::mem::take(&mut self.args),
        );
    }
}

/// Append-only JSONL writer for the journal file.
pub struct JournalSink {
    path: PathBuf,
    file: BufWriter<File>,
}

impl std::fmt::Debug for JournalSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JournalSink").field("path", &self.path).finish()
    }
}

impl JournalSink {
    /// Creates (truncating) the journal file.
    pub fn create(path: impl Into<PathBuf>) -> io::Result<JournalSink> {
        let path = path.into();
        let file = BufWriter::new(File::create(&path)?);
        Ok(JournalSink { path, file })
    }

    /// Opens the journal file for appending (the offline pass appends its
    /// spans to the collector's journal).
    pub fn append(path: impl Into<PathBuf>) -> io::Result<JournalSink> {
        let path = path.into();
        let file = BufWriter::new(OpenOptions::new().create(true).append(true).open(&path)?);
        Ok(JournalSink { path, file })
    }

    /// The file being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends events as JSONL lines and flushes, so a crash loses at
    /// most the events still buffered in rings.
    pub fn write_events(&mut self, events: &[JournalEvent]) -> io::Result<()> {
        for event in events {
            let line = event.to_json().render();
            self.file.write_all(line.as_bytes())?;
            self.file.write_all(b"\n")?;
        }
        self.file.flush()
    }

    /// Drains the journal into the file; records a `dropped_events`
    /// instant first when rings overflowed since the last drain.
    pub fn drain_from(&mut self, journal: &Journal, last_dropped: &mut u64) -> io::Result<usize> {
        let dropped = journal.dropped_events();
        let mut events = Vec::new();
        if dropped > *last_dropped {
            events.push(JournalEvent {
                layer: Layer::Cli,
                thread: "journal".to_string(),
                name: "dropped_events".to_string(),
                t_us: journal.now_us(),
                dur_us: None,
                args: vec![("count".to_string(), (dropped - *last_dropped) as f64)],
            });
            *last_dropped = dropped;
        }
        events.extend(journal.drain());
        let n = events.len();
        if n > 0 {
            self.write_events(&events)?;
        }
        Ok(n)
    }
}

/// Result of reading a journal file back.
#[derive(Clone, Debug, Default)]
pub struct JournalRead {
    /// Parsed events in file order.
    pub events: Vec<JournalEvent>,
    /// True when the final line was torn (crashed mid-write) and was
    /// skipped.
    pub truncated_tail: bool,
}

/// Reads a journal JSONL file line-by-line. A malformed *final* line —
/// the signature of a run killed mid-append — is tolerated and flagged;
/// malformed interior lines are `InvalidData` errors.
pub fn read_journal(path: &Path) -> io::Result<JournalRead> {
    let reader = BufReader::new(File::open(path)?);
    let mut out = JournalRead::default();
    let mut pending_error: Option<String> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        if let Some(err) = pending_error.take() {
            // The bad line was not the last one: real corruption.
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("journal line {}: {err}", idx),
            ));
        }
        if line.trim().is_empty() {
            continue;
        }
        match json::parse(&line).and_then(|v| JournalEvent::from_json(&v)) {
            Ok(event) => out.events.push(event),
            Err(err) => pending_error = Some(err),
        }
    }
    out.truncated_tail = pending_error.is_some();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_guard_records_duration_and_args() {
        let journal = Journal::new(16);
        let tj = journal.for_thread(Layer::Runtime, "app-0");
        {
            let _span = tj.span("flush-handoff").arg("bytes", 4096.0);
        }
        tj.instant("publish", vec![]);
        let events = journal.drain();
        assert_eq!(events.len(), 2);
        let span = events.iter().find(|e| e.name == "flush-handoff").unwrap();
        assert!(span.dur_us.is_some());
        assert_eq!(span.args, vec![("bytes".to_string(), 4096.0)]);
        assert_eq!(span.thread, "app-0");
        let inst = events.iter().find(|e| e.name == "publish").unwrap();
        assert_eq!(inst.dur_us, None);
        // Drain empties the rings.
        assert!(journal.drain().is_empty());
    }

    #[test]
    fn ring_overflow_drops_and_counts_instead_of_growing() {
        let journal = Journal::new(8);
        let tj = journal.for_thread(Layer::Runtime, "app-0");
        for i in 0..100 {
            tj.instant(format!("e{i}"), vec![]);
        }
        assert_eq!(journal.dropped_events(), 92);
        let events = journal.drain();
        assert_eq!(events.len(), 8);
        // Drop-newest: the survivors are the oldest records.
        assert_eq!(events[0].name, "e0");
        assert_eq!(events[7].name, "e7");
        // Other threads' rings are unaffected.
        let tj2 = journal.for_thread(Layer::Offline, "worker-0");
        tj2.instant("ok", vec![]);
        assert_eq!(journal.drain().len(), 1);
    }

    #[test]
    fn event_jsonl_roundtrip() {
        let event = JournalEvent {
            layer: Layer::Offline,
            thread: "oa-worker-1".to_string(),
            name: "task".to_string(),
            t_us: 123456,
            dur_us: Some(789),
            args: vec![("nodes".to_string(), 42.0)],
        };
        let line = event.to_json().render();
        let back = JournalEvent::from_json(&json::parse(&line).unwrap()).unwrap();
        assert_eq!(back, event);
    }

    #[test]
    fn sink_roundtrip_and_dropped_marker() {
        let dir = std::env::temp_dir().join(format!("obs-sink-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("obs.jsonl");
        let journal = Journal::new(4);
        let tj = journal.for_thread(Layer::Runtime, "app-0");
        for i in 0..10 {
            tj.instant(format!("e{i}"), vec![]);
        }
        let mut sink = JournalSink::create(&path).unwrap();
        let mut last_dropped = 0;
        let n = sink.drain_from(&journal, &mut last_dropped).unwrap();
        assert_eq!(n, 5); // dropped marker + 4 ring survivors
        let read = read_journal(&path).unwrap();
        assert!(!read.truncated_tail);
        let marker = read.events.iter().find(|e| e.name == "dropped_events").unwrap();
        assert_eq!(marker.args[0].1, 6.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_tolerated_interior_corruption_rejected() {
        let dir = std::env::temp_dir().join(format!("obs-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let good = JournalEvent {
            layer: Layer::Runtime,
            thread: "app-0".to_string(),
            name: "flush".to_string(),
            t_us: 10,
            dur_us: Some(5),
            args: vec![],
        }
        .to_json()
        .render();

        // A journal whose process died mid-append: final line torn.
        let torn = dir.join("torn.jsonl");
        std::fs::write(&torn, format!("{good}\n{good}\n{{\"t\":99,\"lay")).unwrap();
        let read = read_journal(&torn).unwrap();
        assert_eq!(read.events.len(), 2);
        assert!(read.truncated_tail);

        // Corruption in the middle is an error, not silent data loss.
        let corrupt = dir.join("corrupt.jsonl");
        std::fs::write(&corrupt, format!("{good}\nnot json at all\n{good}\n")).unwrap();
        let err = read_journal(&corrupt).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }
}
