//! Structured observability for the SWORD stack.
//!
//! The tool's headline claim is operational — a bounded `N x (B + C)`
//! footprint and a flush path off the app's critical path — so the
//! observability layer obeys the same discipline it measures:
//!
//! - [`journal`]: scoped spans and instant events recorded into bounded
//!   per-thread ring buffers (overflow drops and counts, never grows),
//!   drained incrementally to a JSONL file next to the session so a
//!   crashed run's telemetry survives for postmortem.
//! - [`registry`]: named counter/gauge/histogram handles plus
//!   read-on-demand sources wrapping the pre-existing ad-hoc metrics
//!   (`FlushCounters`, `MemGauge`, pool occupancy), with Prometheus text
//!   exposition and periodic snapshots appended to the journal.
//! - [`export`]: `sword trace export --format chrome` renders the
//!   journal as a Chrome `trace_event` timeline (one process row per
//!   layer, one thread row per recording thread).
//! - [`report`]: `sword report` renders a consolidated run report —
//!   flush path, pipeline stages, memory peaks against the paper's
//!   3.3 MB/thread bound, hot sites, and the hottest spans.
//! - [`sites`]: per-source-site attribution of compare-stage work
//!   (accesses scanned, pairs checked, solver calls, races), published
//!   through the registry as labeled gauges.
//! - [`html`]: `sword report --html` renders the same data as a single
//!   self-contained HTML dashboard with one expandable card per race.
//!
//! The crate is std-only (the journal must be readable without any
//! external JSON dependency, so [`json`] carries a minimal parser).

#![forbid(unsafe_code)]

pub mod export;
pub mod html;
pub mod journal;
pub mod json;
pub mod registry;
pub mod report;
pub mod sites;

pub use export::{chrome_trace, write_chrome_trace, ExportFormat};
pub use html::{render_html, HtmlInput, HtmlRace};
pub use journal::{
    read_journal, FlowPhase, Journal, JournalEvent, JournalRead, JournalSink, JournalTap, Layer,
    Span, ThreadJournal, DEFAULT_RING_CAPACITY,
};
pub use registry::{Counter, Gauge, Histogram, Registry};
pub use report::{
    histogram_rows, render_report, span_rows, HistogramRow, ReportInput, SpanRow,
    PAPER_PER_THREAD_BOUND_BYTES,
};
pub use sites::{hot_sites_from_metrics, HotSite, SiteCounters, SiteId, SiteStats, SiteTable};

/// One observability context: a journal plus a registry, shared by every
/// layer of a run (the collector, the offline pass, and the CLI clone
/// the same handle).
#[derive(Clone, Debug)]
pub struct Obs {
    /// The span/event journal.
    pub journal: Journal,
    /// The metrics registry.
    pub registry: Registry,
}

impl Default for Obs {
    fn default() -> Obs {
        Obs::with_ring_capacity(DEFAULT_RING_CAPACITY)
    }
}

impl Obs {
    /// Creates a fresh context with default ring capacity.
    pub fn new() -> Obs {
        Obs::default()
    }

    /// Creates a context with a custom per-thread ring capacity.
    pub fn with_ring_capacity(capacity: usize) -> Obs {
        let journal = Journal::new(capacity);
        let registry = Registry::new();
        let j = journal.clone();
        registry.source(
            "sword_journal_dropped_events_total",
            "journal events dropped at ring capacity",
            move || j.dropped_events() as f64,
        );
        Obs { journal, registry }
    }

    /// Appends a registry snapshot event to the journal, so the next
    /// drain persists it (renders as counter tracks in the Chrome
    /// export).
    pub fn snapshot_to_journal(&self) {
        self.journal.record(self.registry.snapshot_event(&self.journal));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_to_journal_lands_in_drain() {
        let obs = Obs::new();
        obs.registry.counter("n", "help").add(2);
        obs.snapshot_to_journal();
        let events = obs.journal.drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "metrics");
        let lookup = |k: &str| events[0].args.iter().find(|(n, _)| n == k).map(|(_, v)| *v);
        assert_eq!(lookup("n"), Some(2.0));
        // Every context carries the journal drop counter as a source.
        assert_eq!(lookup("sword_journal_dropped_events_total"), Some(0.0));
    }
}
