//! Consolidated run report: flush path, pipeline stages, memory peaks
//! against the paper's per-thread bound, and the top-N hottest spans —
//! all derived from the session's journal and info file.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::journal::{JournalEvent, Layer};
use crate::sites::hot_sites_from_metrics;

/// The paper's per-thread tool-memory bound: two 25,000-event buffers
/// plus runtime bookkeeping, quoted as "less than 3.3 MB per thread"
/// (PAPER.md §IV).
pub const PAPER_PER_THREAD_BOUND_BYTES: u64 = 3_460_300;

/// Inputs to [`render_report`].
#[derive(Clone, Debug, Default)]
pub struct ReportInput {
    /// Journal events (possibly from a torn journal).
    pub events: Vec<JournalEvent>,
    /// Session `session.meta` key/value info, when available.
    pub info: BTreeMap<String, String>,
    /// True when the journal had a torn final line.
    pub truncated_tail: bool,
    /// How many hottest spans to list.
    pub top_n: usize,
}

/// One aggregated span row: every completed span of one name within a
/// layer, folded. Shared by the text report and the HTML dashboard.
#[derive(Clone, Debug)]
pub struct SpanRow {
    /// Recording layer.
    pub layer: Layer,
    /// Span name.
    pub name: String,
    /// Completed spans folded in.
    pub count: u64,
    /// Sum of durations.
    pub total_us: u64,
    /// Longest single span.
    pub max_us: u64,
}

/// Renders the consolidated run report as plain text.
pub fn render_report(input: &ReportInput) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "SWORD run report");
    let _ = writeln!(out, "================");

    // --- Journal overview -------------------------------------------------
    let mut per_layer: BTreeMap<Layer, u64> = BTreeMap::new();
    let mut dropped = 0u64;
    for e in &input.events {
        *per_layer.entry(e.layer).or_insert(0) += 1;
        if e.name == "dropped_events" {
            dropped += e.args.iter().find(|(k, _)| k == "count").map_or(0, |(_, v)| *v as u64);
        }
    }
    let layers: Vec<String> =
        per_layer.iter().map(|(layer, n)| format!("{} {}", layer.as_str(), n)).collect();
    let _ = writeln!(
        out,
        "journal: {} events ({})",
        input.events.len(),
        if layers.is_empty() { "empty".to_string() } else { layers.join(", ") }
    );
    // The registry counter covers drops the drain markers never saw
    // (e.g. events shed after the final drain); report whichever is
    // larger so a lossy journal is never presented as complete.
    let snapshot = last_metrics_snapshot(&input.events);
    let counter_dropped = snapshot
        .iter()
        .find(|(k, _)| k == "sword_journal_dropped_events_total")
        .map_or(0, |(_, v)| *v as u64);
    let dropped = dropped.max(counter_dropped);
    if dropped > 0 {
        let _ = writeln!(
            out,
            "WARNING: journal dropped {dropped} events at ring capacity (telemetry below is incomplete)"
        );
    }
    if input.truncated_tail {
        let _ = writeln!(out, "journal: torn final line skipped (run ended abruptly)");
    }

    // --- Flush path (from persisted session info) -------------------------
    if let Some(flushes) = input.info.get("flush_count") {
        let _ = writeln!(out);
        let _ = writeln!(out, "flush path");
        let _ = writeln!(out, "----------");
        let get = |k: &str| input.info.get(k).and_then(|v| v.parse::<u64>().ok()).unwrap_or(0);
        let raw = get("flush_raw_bytes");
        let compressed = get("flush_compressed_bytes");
        let ratio = if compressed > 0 { raw as f64 / compressed as f64 } else { 0.0 };
        let _ = writeln!(
            out,
            "flushes {flushes}  raw {}  compressed {}  ratio {ratio:.2}x",
            format_bytes(raw),
            format_bytes(compressed),
        );
        let _ = writeln!(
            out,
            "app-thread stall {:.2} ms  compress {:.2} ms  write {:.2} ms",
            get("flush_stall_nanos") as f64 / 1e6,
            get("flush_compress_nanos") as f64 / 1e6,
            get("flush_write_nanos") as f64 / 1e6,
        );
    }

    // --- Pipeline stages (offline-layer spans, aggregated) ----------------
    let stage_rows = span_rows(&input.events, Some(Layer::Offline));
    if !stage_rows.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "offline pipeline stages");
        let _ = writeln!(out, "-----------------------");
        for agg in &stage_rows {
            let _ = writeln!(
                out,
                "{:<18} calls {:<6} total {:>9.2} ms  max {:>8.2} ms",
                agg.name,
                agg.count,
                agg.total_us as f64 / 1e3,
                agg.max_us as f64 / 1e3,
            );
        }
    }

    // --- Latency quantiles (registry histograms) --------------------------
    let quantile_rows = histogram_rows(&snapshot);
    if !quantile_rows.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "latency quantiles");
        let _ = writeln!(out, "-----------------");
        for row in &quantile_rows {
            let _ = writeln!(
                out,
                "{:<34} count {:<9} p50 {:<10} p95 {:<10} p99 {:<10} max {}",
                row.name, row.count, row.p50, row.p95, row.p99, row.max,
            );
        }
    }

    // --- Memory peaks vs the paper bound ----------------------------------
    let mem_keys: Vec<(String, f64)> = snapshot
        .iter()
        .filter(|(k, _)| k.contains("bytes") && !k.starts_with("flush_"))
        .cloned()
        .collect();
    if !mem_keys.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "memory");
        let _ = writeln!(out, "------");
        let threads = input.info.get("threads").and_then(|v| v.parse::<u64>().ok()).unwrap_or(0);
        let bound = threads * PAPER_PER_THREAD_BOUND_BYTES;
        for (name, value) in &mem_keys {
            let bytes = *value as u64;
            let mut line = format!("{name:<34} {:>12}", format_bytes(bytes));
            if bound > 0 && name.contains("mem") {
                let verdict = if bytes <= bound { "within" } else { "EXCEEDS" };
                let _ = write!(
                    line,
                    "  ({verdict} {threads}x{} = {} bound)",
                    format_bytes(PAPER_PER_THREAD_BOUND_BYTES),
                    format_bytes(bound),
                );
            }
            let _ = writeln!(out, "{line}");
        }
    }

    // --- Hot sites (compare-stage attribution) ----------------------------
    let hot = hot_sites_from_metrics(&snapshot);
    if !hot.is_empty() {
        let top_n = if input.top_n == 0 { 10 } else { input.top_n };
        let _ = writeln!(out);
        let _ =
            writeln!(out, "hot sites (compare-stage attribution, top {})", top_n.min(hot.len()));
        let _ = writeln!(out, "---------");
        for h in hot.iter().take(top_n) {
            let _ = writeln!(
                out,
                "{:<28} scanned {:<9} pairs {:<8} solves {:<8} racy pairs {}",
                h.site, h.stats.scanned, h.stats.pairs, h.stats.solver_calls, h.stats.races,
            );
        }
    }

    // --- Hottest spans ----------------------------------------------------
    let mut hottest: Vec<SpanRow> = span_rows(&input.events, None);
    hottest.sort_by_key(|agg| std::cmp::Reverse(agg.total_us));
    if !hottest.is_empty() {
        let top_n = if input.top_n == 0 { 10 } else { input.top_n };
        let _ = writeln!(out);
        let _ = writeln!(out, "hottest spans (top {})", top_n.min(hottest.len()));
        let _ = writeln!(out, "-------------");
        for agg in hottest.iter().take(top_n) {
            let _ = writeln!(
                out,
                "{:<8} {:<22} calls {:<7} total {:>9.2} ms  max {:>8.2} ms",
                agg.layer.as_str(),
                agg.name,
                agg.count,
                agg.total_us as f64 / 1e3,
                agg.max_us as f64 / 1e3,
            );
        }
    }
    out
}

/// Aggregates completed spans by `(layer, name)`, optionally restricted
/// to one layer, in first-seen order.
pub fn span_rows(events: &[JournalEvent], layer: Option<Layer>) -> Vec<SpanRow> {
    let mut rows: Vec<SpanRow> = Vec::new();
    for e in events {
        let Some(dur) = e.dur_us else { continue };
        if layer.is_some_and(|l| e.layer != l) {
            continue;
        }
        match rows.iter_mut().find(|agg| agg.name == e.name && agg.layer == e.layer) {
            Some(agg) => {
                agg.count += 1;
                agg.total_us += dur;
                agg.max_us = agg.max_us.max(dur);
            }
            None => rows.push(SpanRow {
                layer: e.layer,
                name: e.name.clone(),
                count: 1,
                total_us: dur,
                max_us: dur,
            }),
        }
    }
    rows
}

/// One histogram family reconstructed from a flat metrics snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramRow {
    /// Histogram base name (e.g. `sword_solver_call_nanos`).
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Approximate 50th percentile (bucket upper bound).
    pub p50: u64,
    /// Approximate 95th percentile.
    pub p95: u64,
    /// Approximate 99th percentile.
    pub p99: u64,
    /// Largest sample.
    pub max: u64,
}

/// Reconstructs histogram families from a flat snapshot: every base name
/// with `_count` and `_p50`/`_p95`/`_p99` expansions and at least one
/// sample.
pub fn histogram_rows(snapshot: &[(String, f64)]) -> Vec<HistogramRow> {
    let get = |k: &str| snapshot.iter().find(|(n, _)| n == k).map(|(_, v)| *v as u64);
    let mut rows = Vec::new();
    for (key, count) in snapshot {
        let Some(name) = key.strip_suffix("_count") else { continue };
        if *count < 1.0 {
            continue;
        }
        let (Some(p50), Some(p95), Some(p99)) =
            (get(&format!("{name}_p50")), get(&format!("{name}_p95")), get(&format!("{name}_p99")))
        else {
            continue;
        };
        rows.push(HistogramRow {
            name: name.to_string(),
            count: *count as u64,
            p50,
            p95,
            p99,
            max: get(&format!("{name}_max")).unwrap_or(0),
        });
    }
    rows
}

/// The merged view of all `metrics` snapshot events: the latest value
/// per key, in first-seen key order. Journals accumulate snapshots from
/// several registries (the collector's at run time, the analyzer's when
/// `analyze --obs` appends), so folding — rather than taking only the
/// final event — keeps every layer's gauges visible.
pub fn last_metrics_snapshot(events: &[JournalEvent]) -> Vec<(String, f64)> {
    let mut merged: Vec<(String, f64)> = Vec::new();
    for e in events.iter().filter(|e| e.name == "metrics") {
        for (key, value) in &e.args {
            match merged.iter_mut().find(|(k, _)| k == key) {
                Some((_, v)) => *v = *value,
                None => merged.push((key.clone(), *value)),
            }
        }
    }
    merged
}

/// Human-readable byte count; integral bytes below 1 KiB.
pub(crate) fn format_bytes(bytes: u64) -> String {
    const UNITS: [(&str, u64); 4] = [("GB", 1 << 30), ("MB", 1 << 20), ("KB", 1 << 10), ("B", 1)];
    for (name, size) in UNITS {
        if bytes >= size {
            return if size == 1 {
                format!("{bytes} {name}")
            } else {
                format!("{:.2} {}", bytes as f64 / size as f64, name)
            };
        }
    }
    "0 B".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(layer: Layer, thread: &str, name: &str, t: u64, dur: u64) -> JournalEvent {
        JournalEvent {
            layer,
            thread: thread.to_string(),
            name: name.to_string(),
            t_us: t,
            dur_us: Some(dur),
            args: vec![],
            flow: None,
        }
    }

    #[test]
    fn report_renders_all_sections() {
        let mut info = BTreeMap::new();
        info.insert("threads".to_string(), "4".to_string());
        info.insert("flush_count".to_string(), "12".to_string());
        info.insert("flush_raw_bytes".to_string(), "1048576".to_string());
        info.insert("flush_compressed_bytes".to_string(), "262144".to_string());
        info.insert("flush_stall_nanos".to_string(), "5000000".to_string());
        info.insert("flush_compress_nanos".to_string(), "9000000".to_string());
        info.insert("flush_write_nanos".to_string(), "2000000".to_string());
        let events = vec![
            span(Layer::Runtime, "app-0", "flush-handoff", 0, 100),
            span(Layer::Runtime, "app-0", "flush-handoff", 200, 300),
            span(Layer::Offline, "analyzer", "build-structure", 500, 900),
            JournalEvent {
                layer: Layer::Cli,
                thread: "metrics".to_string(),
                name: "metrics".to_string(),
                t_us: 999,
                dur_us: None,
                args: vec![
                    ("sword_collector_tool_mem_bytes".to_string(), 2_000_000.0),
                    ("sword_oa_tree_mem_bytes_peak".to_string(), 40_000.0),
                    ("flush_raw_bytes".to_string(), 1.0),
                ],
                flow: None,
            },
            JournalEvent {
                layer: Layer::Cli,
                thread: "journal".to_string(),
                name: "dropped_events".to_string(),
                t_us: 1000,
                dur_us: None,
                args: vec![("count".to_string(), 3.0)],
                flow: None,
            },
        ];
        let report = render_report(&ReportInput { events, info, truncated_tail: true, top_n: 5 });
        assert!(report.contains("flush path"));
        assert!(report.contains("ratio 4.00x"));
        assert!(report.contains("build-structure"));
        assert!(report.contains("sword_collector_tool_mem_bytes"));
        assert!(report.contains("within 4x3.30 MB"));
        assert!(report.contains("hottest spans"));
        assert!(report.contains("flush-handoff"));
        assert!(report.contains("WARNING: journal dropped 3 events at ring capacity"));
        assert!(report.contains("torn final line"));
        // flush_ keys from snapshots are excluded from the memory table.
        assert!(!report.contains("flush_raw_bytes        "));
    }

    #[test]
    fn hot_sites_section_renders_from_snapshot() {
        let events = vec![JournalEvent {
            layer: Layer::Cli,
            thread: "metrics".to_string(),
            name: "metrics".to_string(),
            t_us: 0,
            dur_us: None,
            args: vec![
                ("sword_site_pairs{site=\"kernel.rs:10\"}".to_string(), 42.0),
                ("sword_site_races{site=\"kernel.rs:10\"}".to_string(), 2.0),
            ],
            flow: None,
        }];
        let report = render_report(&ReportInput {
            events,
            info: BTreeMap::new(),
            truncated_tail: false,
            top_n: 5,
        });
        assert!(report.contains("hot sites"), "{report}");
        assert!(report.contains("kernel.rs:10"), "{report}");
        assert!(report.contains("pairs 42"), "{report}");
    }

    #[test]
    fn bound_verdict_flags_excess() {
        let mut info = BTreeMap::new();
        info.insert("threads".to_string(), "1".to_string());
        let events = vec![JournalEvent {
            layer: Layer::Cli,
            thread: "metrics".to_string(),
            name: "metrics".to_string(),
            t_us: 0,
            dur_us: None,
            args: vec![("sword_collector_tool_mem_bytes".to_string(), 1e9)],
            flow: None,
        }];
        let report = render_report(&ReportInput { events, info, truncated_tail: false, top_n: 3 });
        assert!(report.contains("EXCEEDS"));
    }
}
