//! Per-site attribution: compare-stage counters keyed by source
//! location (PC).
//!
//! The offline analyzer's `compare` stage accumulates, per program
//! counter, how much work each source line caused — accesses scanned,
//! candidate node pairs checked, exact solver calls, racy pairs — so a
//! report can show *where* the analysis cost went, the way LLOV-style
//! per-line attribution does for verdicts.
//!
//! Two layers keep the hot path cheap:
//!
//! - [`SiteCounters`] is a per-worker accumulator (a dense `Vec` indexed
//!   by site id — PC ids are small and dense — so a hot-path credit is
//!   one bounds-checked index and an add, no hashing, no locks),
//!   threaded through `check_pair`.
//! - [`SiteTable`] is the shared, clonable sink the workers absorb their
//!   accumulators into at task/poll boundaries. [`SiteTable::publish`]
//!   exposes the result through the metrics [`Registry`] as labeled
//!   gauges (`sword_site_pairs{site="file.rs:10"}`), which the registry
//!   snapshot then carries into the journal — `sword report` and the
//!   HTML dashboard read hot sites back from there.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::registry::Registry;

/// Raw site id: the analyzer keys by its interned PC id.
pub type SiteId = u32;

/// Compare-stage counters of one source site.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SiteStats {
    /// Accesses covered by the summarized nodes this site contributed to
    /// candidate pairs (revisits across pairs counted each time).
    pub scanned: u64,
    /// Candidate node pairs (coarse range overlap) involving this site.
    pub pairs: u64,
    /// Exact constraint solves involving this site.
    pub solver_calls: u64,
    /// Racy node pairs (pre-dedup) involving this site.
    pub races: u64,
}

impl SiteStats {
    fn add(&mut self, other: &SiteStats) {
        self.scanned += other.scanned;
        self.pairs += other.pairs;
        self.solver_calls += other.solver_calls;
        self.races += other.races;
    }
}

/// Lock-free per-worker accumulator, absorbed into a [`SiteTable`] at
/// task boundaries. Dense: slot `i` holds site id `i`'s stats (untouched
/// slots stay at the all-zero default and are skipped on absorb).
#[derive(Clone, Debug, Default)]
pub struct SiteCounters {
    slots: Vec<SiteStats>,
}

impl SiteCounters {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// The (grown-on-demand) slot for `site`.
    #[inline]
    fn slot(&mut self, site: SiteId) -> &mut SiteStats {
        let i = site as usize;
        if i >= self.slots.len() {
            self.slots.resize(i + 1, SiteStats::default());
        }
        &mut self.slots[i]
    }

    /// Credits one candidate pair between the two sites, whose summarized
    /// nodes cover `n_a`/`n_b` accesses.
    #[inline]
    pub fn candidate(&mut self, a: SiteId, n_a: u64, b: SiteId, n_b: u64) {
        let sa = self.slot(a);
        sa.scanned += n_a;
        sa.pairs += 1;
        let sb = self.slot(b);
        sb.scanned += n_b;
        sb.pairs += 1;
    }

    /// Credits `n` scanned accesses to `site`.
    #[inline]
    pub fn scanned(&mut self, site: SiteId, n: u64) {
        self.slot(site).scanned += n;
    }

    /// Counts one candidate pair between the two sites.
    #[inline]
    pub fn pair(&mut self, a: SiteId, b: SiteId) {
        self.slot(a).pairs += 1;
        self.slot(b).pairs += 1;
    }

    /// Counts one exact solve between the two sites.
    #[inline]
    pub fn solve(&mut self, a: SiteId, b: SiteId) {
        self.slot(a).solver_calls += 1;
        self.slot(b).solver_calls += 1;
    }

    /// Counts one racy node pair between the two sites.
    #[inline]
    pub fn race(&mut self, a: SiteId, b: SiteId) {
        self.slot(a).races += 1;
        self.slot(b).races += 1;
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// Shared per-site attribution table (clone = same table).
#[derive(Clone, Debug, Default)]
pub struct SiteTable {
    inner: Arc<Mutex<HashMap<SiteId, SiteStats>>>,
}

impl SiteTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds a worker's accumulator into the table.
    pub fn absorb(&self, counters: SiteCounters) {
        if counters.is_empty() {
            return;
        }
        let mut inner = self.inner.lock().expect("site table poisoned");
        for (site, stats) in counters.slots.into_iter().enumerate() {
            if stats != SiteStats::default() {
                inner.entry(site as SiteId).or_default().add(&stats);
            }
        }
    }

    /// The accumulated per-site stats, sorted by site id.
    pub fn snapshot(&self) -> Vec<(SiteId, SiteStats)> {
        let inner = self.inner.lock().expect("site table poisoned");
        let mut v: Vec<(SiteId, SiteStats)> = inner.iter().map(|(k, v)| (*k, *v)).collect();
        v.sort_by_key(|(site, _)| *site);
        v
    }

    /// Registers whole-table totals as registry sources (idempotent —
    /// re-registering replaces the closure over the same table).
    pub fn register_totals(&self, registry: &Registry) {
        type StatPick = fn(&SiteStats) -> u64;
        let specs: [(&str, &str, StatPick); 5] = [
            ("sword_sites_tracked", "Distinct source sites with compare-stage attribution", |_| 1),
            ("sword_site_scanned_total", "Accesses scanned during compare, all sites", |s| {
                s.scanned
            }),
            ("sword_site_pairs_total", "Candidate pairs checked during compare, all sites", |s| {
                s.pairs
            }),
            ("sword_site_solver_calls_total", "Exact solves during compare, all sites", |s| {
                s.solver_calls
            }),
            ("sword_site_races_total", "Racy node pairs (pre-dedup), all sites", |s| s.races),
        ];
        for (name, help, pick) in specs {
            let table = self.clone();
            registry.source(name, help, move || {
                let inner = table.inner.lock().expect("site table poisoned");
                inner.values().map(pick).sum::<u64>() as f64
            });
        }
    }

    /// Publishes every site's counters into the registry as labeled
    /// gauges — `sword_site_pairs{site="file.rs:10"}` and friends —
    /// resolving site ids to locations through `resolve`. Gauges are
    /// idempotent (set, not add), so publishing twice is safe.
    pub fn publish(&self, registry: &Registry, resolve: impl Fn(SiteId) -> String) {
        for (site, stats) in self.snapshot() {
            let loc = escape_label(&resolve(site));
            let rows = [
                ("sword_site_scanned", "Accesses scanned during compare", stats.scanned),
                ("sword_site_pairs", "Candidate pairs checked during compare", stats.pairs),
                ("sword_site_solver_calls", "Exact solves during compare", stats.solver_calls),
                ("sword_site_races", "Racy node pairs (pre-dedup)", stats.races),
            ];
            for (metric, help, value) in rows {
                registry.gauge(&format!("{metric}{{site=\"{loc}\"}}"), help).set(value);
            }
        }
    }
}

/// Escapes a source location for use inside a `site="…"` label value.
fn escape_label(loc: &str) -> String {
    loc.replace('\\', "\\\\").replace('"', "\\\"")
}

/// One site's row parsed back out of a metrics snapshot — the reporting
/// half of [`SiteTable::publish`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HotSite {
    /// Resolved source location (`file.rs:10`).
    pub site: String,
    /// See [`SiteStats`].
    pub stats: SiteStats,
}

/// Reconstructs per-site attribution from metrics-snapshot key/value
/// pairs (the inverse of [`SiteTable::publish`]), sorted hottest first:
/// by races, then solver calls, then pairs.
pub fn hot_sites_from_metrics(metrics: &[(String, f64)]) -> Vec<HotSite> {
    let mut by_site: Vec<HotSite> = Vec::new();
    for (key, value) in metrics {
        let Some((metric, site)) = parse_site_key(key) else { continue };
        let entry = match by_site.iter_mut().find(|h| h.site == site) {
            Some(h) => h,
            None => {
                by_site.push(HotSite { site, ..HotSite::default() });
                by_site.last_mut().expect("just pushed")
            }
        };
        let v = *value as u64;
        match metric {
            "sword_site_scanned" => entry.stats.scanned = v,
            "sword_site_pairs" => entry.stats.pairs = v,
            "sword_site_solver_calls" => entry.stats.solver_calls = v,
            "sword_site_races" => entry.stats.races = v,
            _ => {}
        }
    }
    by_site.sort_by(|a, b| {
        (b.stats.races, b.stats.solver_calls, b.stats.pairs, &a.site).cmp(&(
            a.stats.races,
            a.stats.solver_calls,
            a.stats.pairs,
            &b.site,
        ))
    });
    by_site
}

/// Splits `sword_site_pairs{site="file.rs:10"}` into the metric name and
/// the unescaped site label. `None` for non-site keys.
fn parse_site_key(key: &str) -> Option<(&str, String)> {
    let (metric, rest) = key.split_once("{site=\"")?;
    if !metric.starts_with("sword_site_") {
        return None;
    }
    let label = rest.strip_suffix("\"}")?;
    Some((metric, label.replace("\\\"", "\"").replace("\\\\", "\\")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_absorb_and_snapshot() {
        let mut c = SiteCounters::new();
        c.scanned(1, 10);
        c.pair(1, 2);
        c.solve(1, 2);
        c.race(1, 2);
        c.pair(1, 1); // self-pair credits the site twice
        let table = SiteTable::new();
        table.absorb(c);
        let mut c2 = SiteCounters::new();
        c2.scanned(2, 5);
        table.absorb(c2);
        let snap = table.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].0, 1);
        assert_eq!(snap[0].1, SiteStats { scanned: 10, pairs: 3, solver_calls: 1, races: 1 });
        assert_eq!(snap[1].1, SiteStats { scanned: 5, pairs: 1, solver_calls: 1, races: 1 });
    }

    #[test]
    fn totals_are_registry_sources() {
        let table = SiteTable::new();
        let registry = Registry::new();
        table.register_totals(&registry);
        let mut c = SiteCounters::new();
        c.pair(1, 2);
        c.pair(1, 3);
        table.absorb(c);
        let snap = registry.snapshot();
        let get = |k: &str| snap.iter().find(|(n, _)| n == k).map(|(_, v)| *v);
        assert_eq!(get("sword_sites_tracked"), Some(3.0));
        assert_eq!(get("sword_site_pairs_total"), Some(4.0));
        assert_eq!(get("sword_site_races_total"), Some(0.0));
    }

    #[test]
    fn publish_roundtrips_through_metrics() {
        let table = SiteTable::new();
        let mut c = SiteCounters::new();
        c.scanned(0, 100);
        c.pair(0, 7);
        c.solve(0, 7);
        c.race(0, 7);
        table.absorb(c);
        let registry = Registry::new();
        table.publish(&registry, |id| format!("src/k\"ernel.rs:{id}"));
        let hot = hot_sites_from_metrics(&registry.snapshot());
        assert_eq!(hot.len(), 2);
        // Equal counters: ordered by site name.
        assert_eq!(hot[0].site, "src/k\"ernel.rs:0");
        assert_eq!(hot[0].stats, SiteStats { scanned: 100, pairs: 1, solver_calls: 1, races: 1 });
        assert_eq!(hot[1].site, "src/k\"ernel.rs:7");
        assert_eq!(hot[1].stats.scanned, 0);
    }

    #[test]
    fn hottest_first_ordering() {
        let metrics = vec![
            ("sword_site_races{site=\"a.rs:1\"}".to_string(), 0.0),
            ("sword_site_pairs{site=\"a.rs:1\"}".to_string(), 99.0),
            ("sword_site_races{site=\"b.rs:2\"}".to_string(), 3.0),
            ("sword_site_pairs{site=\"b.rs:2\"}".to_string(), 1.0),
            ("unrelated_metric".to_string(), 7.0),
        ];
        let hot = hot_sites_from_metrics(&metrics);
        assert_eq!(hot.len(), 2);
        assert_eq!(hot[0].site, "b.rs:2", "races dominate pairs");
    }
}
