//! `sword report --html`: a single self-contained HTML session
//! dashboard.
//!
//! Everything is emitted by hand into one file — inline CSS, no
//! JavaScript, no external assets — following the same zero-dependency
//! discipline as [`crate::json`]. Expandable race cards use plain
//! `<details>` elements; the stage timeline draws proportional bars with
//! inline-styled `<div>` widths.

use std::fmt::Write as _;

use crate::journal::Layer;
use crate::report::PAPER_PER_THREAD_BOUND_BYTES;
use crate::report::{format_bytes, last_metrics_snapshot, span_rows, ReportInput};
use crate::sites::hot_sites_from_metrics;

/// One race, pre-rendered by the analyzer for its dashboard card.
#[derive(Clone, Debug)]
pub struct HtmlRace {
    /// Stable race id (index in the sorted race list).
    pub id: usize,
    /// One-line headline: locations, kinds, witness address.
    pub title: String,
    /// Deduplicated occurrence count.
    pub occurrences: u64,
    /// Full evidence-chain text (the `sword explain` rendering).
    pub detail: String,
}

/// Inputs to [`render_html`].
#[derive(Clone, Debug, Default)]
pub struct HtmlInput {
    /// Dashboard title (usually the session path).
    pub title: String,
    /// The journal/info view also used by the text report.
    pub report: ReportInput,
    /// Races with pre-rendered evidence.
    pub races: Vec<HtmlRace>,
}

/// Escapes text for HTML element content and attribute values.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            c => out.push(c),
        }
    }
    out
}

const STYLE: &str = "\
body{font:14px/1.45 system-ui,sans-serif;margin:2rem auto;max-width:60rem;\
padding:0 1rem;color:#1a1a24;background:#fafafa}\
h1{font-size:1.4rem}h2{font-size:1.05rem;margin-top:2rem;\
border-bottom:1px solid #ddd;padding-bottom:.2rem}\
table{border-collapse:collapse;width:100%}\
td,th{text-align:left;padding:.2rem .6rem .2rem 0;font-variant-numeric:tabular-nums}\
th{color:#666;font-weight:600}\
.bar{background:#4a7bd0;height:.7rem;border-radius:2px;min-width:2px}\
.ok{color:#1a7a3a;font-weight:600}.bad{color:#b02020;font-weight:600}\
details.race{border:1px solid #ddd;border-radius:4px;margin:.5rem 0;\
background:#fff;padding:.3rem .8rem}\
details.race summary{cursor:pointer;font-weight:600}\
details.race pre{font:12px/1.4 ui-monospace,monospace;overflow-x:auto;\
background:#f4f4f8;padding:.6rem;border-radius:3px}\
.muted{color:#666}";

/// Renders the dashboard. The output is a complete UTF-8 HTML document;
/// every reported race appears as one `<details class="race">` card.
pub fn render_html(input: &HtmlInput) -> String {
    let mut out = String::new();
    out.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    let _ = writeln!(out, "<title>SWORD session report — {}</title>", esc(&input.title));
    let _ = writeln!(out, "<style>{STYLE}</style>\n</head>\n<body>");
    let _ = writeln!(
        out,
        "<h1>SWORD session report <span class=\"muted\">{}</span></h1>",
        esc(&input.title)
    );

    // --- Session info ------------------------------------------------------
    if !input.report.info.is_empty() {
        out.push_str("<h2>Session</h2>\n<table>\n");
        for (k, v) in &input.report.info {
            let _ = writeln!(out, "<tr><th>{}</th><td>{}</td></tr>", esc(k), esc(v));
        }
        out.push_str("</table>\n");
    }

    // --- Stage timeline ----------------------------------------------------
    let stages = span_rows(&input.report.events, Some(Layer::Offline));
    if !stages.is_empty() {
        let widest = stages.iter().map(|s| s.total_us).max().unwrap_or(1).max(1);
        out.push_str("<h2>Offline pipeline stages</h2>\n<table>\n");
        out.push_str("<tr><th>stage</th><th>calls</th><th>total</th><th>max</th><th></th></tr>\n");
        for s in &stages {
            let pct = (s.total_us as f64 / widest as f64 * 100.0).max(1.0);
            let _ = writeln!(
                out,
                "<tr><td>{}</td><td>{}</td><td>{:.2} ms</td><td>{:.2} ms</td>\
                 <td style=\"width:40%\"><div class=\"bar\" style=\"width:{pct:.0}%\"></div></td></tr>",
                esc(&s.name),
                s.count,
                s.total_us as f64 / 1e3,
                s.max_us as f64 / 1e3,
            );
        }
        out.push_str("</table>\n");
    }

    // --- Memory vs the paper bound ------------------------------------------
    let snapshot = last_metrics_snapshot(&input.report.events);
    let mem_keys: Vec<(String, f64)> = snapshot
        .iter()
        .filter(|(k, _)| k.contains("bytes") && !k.starts_with("flush_"))
        .cloned()
        .collect();
    if !mem_keys.is_empty() {
        let threads =
            input.report.info.get("threads").and_then(|v| v.parse::<u64>().ok()).unwrap_or(0);
        let bound = threads * PAPER_PER_THREAD_BOUND_BYTES;
        out.push_str("<h2>Memory vs the paper's 3.3&nbsp;MB/thread bound</h2>\n<table>\n");
        for (name, value) in &mem_keys {
            let bytes = *value as u64;
            let verdict = if bound > 0 && name.contains("mem") {
                if bytes <= bound {
                    format!(
                        "<span class=\"ok\">within</span> the {threads}&times;{} = {} bound",
                        esc(&format_bytes(PAPER_PER_THREAD_BOUND_BYTES)),
                        esc(&format_bytes(bound)),
                    )
                } else {
                    format!(
                        "<span class=\"bad\">EXCEEDS</span> the {threads}&times;{} = {} bound",
                        esc(&format_bytes(PAPER_PER_THREAD_BOUND_BYTES)),
                        esc(&format_bytes(bound)),
                    )
                }
            } else {
                String::new()
            };
            let _ = writeln!(
                out,
                "<tr><th>{}</th><td>{}</td><td>{verdict}</td></tr>",
                esc(name),
                esc(&format_bytes(bytes)),
            );
        }
        out.push_str("</table>\n");
    }

    // --- Hot sites -----------------------------------------------------------
    let hot = hot_sites_from_metrics(&snapshot);
    if !hot.is_empty() {
        let top_n = if input.report.top_n == 0 { 10 } else { input.report.top_n };
        out.push_str("<h2>Hot sites (compare-stage attribution)</h2>\n<table>\n");
        out.push_str(
            "<tr><th>site</th><th>scanned</th><th>pairs</th><th>solves</th>\
             <th>racy pairs</th></tr>\n",
        );
        for h in hot.iter().take(top_n) {
            let _ = writeln!(
                out,
                "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
                esc(&h.site),
                h.stats.scanned,
                h.stats.pairs,
                h.stats.solver_calls,
                h.stats.races,
            );
        }
        out.push_str("</table>\n");
    }

    // --- Race cards ----------------------------------------------------------
    let _ = writeln!(out, "<h2>Races ({})</h2>", input.races.len());
    if input.races.is_empty() {
        out.push_str("<p class=\"muted\">No data races detected.</p>\n");
    }
    for race in &input.races {
        let _ = writeln!(
            out,
            "<details class=\"race\" id=\"race-{}\">\n<summary>#{} {} \
             <span class=\"muted\">(seen {}x)</span></summary>\n<pre>{}</pre>\n</details>",
            race.id,
            race.id,
            esc(&race.title),
            race.occurrences,
            esc(&race.detail),
        );
    }
    out.push_str("</body>\n</html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::JournalEvent;

    #[test]
    fn dashboard_is_self_contained_with_one_card_per_race() {
        let events = vec![
            JournalEvent {
                layer: Layer::Offline,
                thread: "analyzer".to_string(),
                name: "compare".to_string(),
                t_us: 0,
                dur_us: Some(1500),
                args: vec![],
                flow: None,
            },
            JournalEvent {
                layer: Layer::Cli,
                thread: "metrics".to_string(),
                name: "metrics".to_string(),
                t_us: 10,
                dur_us: None,
                args: vec![
                    ("sword_collector_tool_mem_bytes".to_string(), 1_000_000.0),
                    ("sword_site_pairs{site=\"a.rs:1\"}".to_string(), 4.0),
                ],
                flow: None,
            },
        ];
        let mut info = std::collections::BTreeMap::new();
        info.insert("threads".to_string(), "2".to_string());
        let input = HtmlInput {
            title: "/tmp/session".to_string(),
            report: ReportInput { events, info, truncated_tail: false, top_n: 10 },
            races: vec![
                HtmlRace {
                    id: 0,
                    title: "a.rs:1 (Write) <-> a.rs:2 (Read)".to_string(),
                    occurrences: 3,
                    detail: "evidence & <chain>".to_string(),
                },
                HtmlRace {
                    id: 1,
                    title: "b.rs:7 (Write) <-> b.rs:7 (Write)".to_string(),
                    occurrences: 1,
                    detail: "more".to_string(),
                },
            ],
        };
        let html = render_html(&input);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.ends_with("</html>\n"));
        assert_eq!(html.matches("<details class=\"race\"").count(), 2);
        assert_eq!(html.matches("</details>").count(), 2);
        assert!(html.contains("id=\"race-0\""));
        assert!(html.contains("id=\"race-1\""));
        // Markup-significant characters in race text are escaped.
        assert!(html.contains("a.rs:1 (Write) &lt;-&gt; a.rs:2 (Read)"));
        assert!(html.contains("evidence &amp; &lt;chain&gt;"));
        // All sections present.
        assert!(html.contains("Offline pipeline stages"));
        assert!(html.contains("class=\"bar\""));
        assert!(html.contains("3.3&nbsp;MB/thread"));
        assert!(html.contains("within"));
        assert!(html.contains("Hot sites"));
        assert!(html.contains("a.rs:1"));
        // No external references: a self-contained file.
        assert!(!html.contains("http://") && !html.contains("https://"));
        assert!(!html.contains("<script"));
    }

    #[test]
    fn empty_input_still_renders_a_valid_shell() {
        let html = render_html(&HtmlInput::default());
        assert!(html.contains("<h2>Races (0)</h2>"));
        assert!(html.contains("No data races detected"));
        assert_eq!(html.matches("<details").count(), 0);
    }
}
