//! Minimal JSON value, parser, and serializer.
//!
//! The journal is a JSONL file and `trace export` must read it back, so
//! the crate carries its own small JSON implementation rather than an
//! external dependency. Objects preserve insertion order (Chrome's
//! `trace_event` viewers render args in file order).

use std::fmt::Write as _;

/// A JSON value. Numbers are `f64`; every quantity the journal records
/// (microsecond timestamps, byte counts) fits exactly below 2^53.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion-ordered, not deduplicated.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer (rejects negatives and
    /// non-numbers; fractional parts truncate).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serializes to a compact (single-line) JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => render_num(*n, out),
            Value::Str(s) => render_str(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Num(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Num(n as f64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

fn render_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{}", n);
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document, rejecting trailing garbage.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => parse_str(bytes, pos).map(Value::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at offset {pos}"))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("invalid number {text:?} at offset {start}"))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // consume '{'
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at offset {pos}"));
        }
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at offset {pos}"));
        }
        *pos += 1;
        pairs.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = Value::Obj(vec![
            ("t".to_string(), Value::Num(1234.0)),
            ("name".to_string(), Value::Str("flush \"x\"\n".to_string())),
            ("args".to_string(), Value::Obj(vec![("bytes".to_string(), Value::Num(4096.0))])),
            ("tags".to_string(), Value::Arr(vec![Value::Bool(true), Value::Null])),
        ]);
        let text = v.render();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Value::Num(25000.0).render(), "25000");
        assert_eq!(Value::Num(1.5).render(), "1.5");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{\"a\":").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn parse_escapes_and_unicode() {
        let v = parse(r#"{"s":"a\tbA\n"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "a\tbA\n");
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"n":7,"s":"x","a":[1,2]}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::Num(-1.0).as_u64(), None);
    }
}
