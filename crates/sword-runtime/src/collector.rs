//! The collector tool: callback handling, pooled double-buffered flushing,
//! parallel compression workers feeding one ordered file writer, and
//! session persistence.
//!
//! Flush-path architecture (async mode):
//!
//! ```text
//! app threads ──full buffer──▶ flush channel ──▶ compression workers
//!      ▲                                          │ (encode frame,
//!      └──── drained buffer ◀── BufferPool ◀──────┘  release buffer)
//!                                                  │ (seq, frame)
//!                                                  ▼
//!                                         ordered file writer
//!                                      (global-seq order ⇒ per-thread
//!                                       order; owns the live watermark)
//! ```
//!
//! Every flush carries a global sequence number taken at handoff. Workers
//! compress out of order; the writer buffers out-of-order arrivals and
//! writes strictly by sequence, so each thread's log file receives its
//! blocks in exactly the order that thread produced them — the invariant
//! the per-thread meta byte ranges and the live watermark protocol from
//! PR 1 depend on.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use sword_compress::{encode_frame_into, Compressor};
use sword_metrics::{FlushCounters, FlushSnapshot};
use sword_obs::{FlowPhase, Gauge, Histogram, Journal, JournalSink, Layer, Obs, ThreadJournal};
use sword_ompsim::{
    OmpSim, ParallelBeginInfo, SimConfig, TaskCreateInfo, TaskUid, ThreadContext, Tool,
};
use sword_trace::{
    meta, Event, LiveStatus, LogWriter, MemAccess, MutexId, PcTable, RegionId, RegionRecord,
    SessionDir, ThreadId,
};

use crate::pool::BufferPool;
use crate::thread_log::{ThreadLog, MAX_EVENT_BYTES, PAPER_BUFFER_EVENTS};

/// Collector configuration.
#[derive(Clone, Debug)]
pub struct SwordConfig {
    /// Session directory for logs and meta-data.
    pub session_dir: PathBuf,
    /// Bounded buffer capacity in events (paper default: 25,000).
    pub buffer_events: usize,
    /// Compress and write buffers on a background thread (paper behaviour)
    /// or inline (ablation).
    pub async_flush: bool,
    /// Publish watermarked metadata snapshots while the run is still
    /// executing, so a live analyzer can follow along (see
    /// [`SwordCollector::publish_progress`]).
    pub live_publish: bool,
    /// Compression workers between the app threads and the ordered file
    /// writer (async mode only; at least 1).
    pub compress_workers: usize,
    /// Observability context. When set, the collector journals spans
    /// (flush handoffs, compression, writes) to `<session>/obs.jsonl`,
    /// registers its flush/pool/memory metrics as registry sources, and
    /// writes `<session>/metrics.prom` at finalize. `None` (default)
    /// records nothing beyond the always-on [`FlushCounters`].
    pub obs: Option<Obs>,
}

/// Default compression-worker count: a small slice of the machine, since
/// compression is far cheaper than event production.
fn default_compress_workers() -> usize {
    std::thread::available_parallelism().map(|n| (n.get() / 4).clamp(1, 4)).unwrap_or(1)
}

impl SwordConfig {
    /// Paper defaults writing into `session_dir`.
    pub fn new(session_dir: impl Into<PathBuf>) -> Self {
        SwordConfig {
            session_dir: session_dir.into(),
            buffer_events: PAPER_BUFFER_EVENTS,
            async_flush: true,
            live_publish: false,
            compress_workers: default_compress_workers(),
            obs: None,
        }
    }

    /// Attaches an observability context (shared with the caller, who can
    /// snapshot its registry or append more layers to its journal).
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Overrides the compression-worker count (clamped to at least one).
    pub fn compress_workers(mut self, workers: usize) -> Self {
        self.compress_workers = workers.max(1);
        self
    }

    /// Overrides the buffer capacity (the §III-A buffer-size ablation).
    /// Clamped to at least one event.
    pub fn buffer_events(mut self, events: usize) -> Self {
        self.buffer_events = events.max(1);
        self
    }

    /// Chooses synchronous flushing.
    pub fn sync_flush(mut self) -> Self {
        self.async_flush = false;
        self
    }

    /// Enables live metadata publishing during the run.
    pub fn live(mut self) -> Self {
        self.live_publish = true;
        self
    }
}

/// Summary of one collection run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SwordStats {
    /// Events logged across all threads.
    pub events: u64,
    /// Buffer flushes across all threads.
    pub flushes: u64,
    /// Uncompressed bytes produced.
    pub raw_bytes: u64,
    /// Compressed bytes written to log files (frame headers included).
    pub compressed_bytes: u64,
    /// Distinct worker threads (= log files).
    pub threads: u64,
    /// Parallel region instances observed.
    pub regions: u64,
    /// Barrier intervals recorded (meta rows).
    pub barrier_intervals: u64,
    /// Measured bounded collector memory: the buffer pool's full created
    /// capacity (buffers being filled, in flight, and spare) plus
    /// per-thread bookkeeping — independent of the application footprint.
    pub tool_memory_bytes: u64,
    /// Flush-path counters: handoffs, app-thread stall time, compression
    /// busy time, achieved ratio.
    pub flush: FlushSnapshot,
}

impl SwordStats {
    /// Achieved compression ratio.
    pub fn compression_ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            1.0
        } else {
            self.raw_bytes as f64 / self.compressed_bytes as f64
        }
    }
}

/// Causal-trace stamp riding a queued job: the flow id minted at the
/// producing side and the enqueue timestamp, so the consumer can record
/// the queue wait and continue the flow chain.
#[derive(Clone, Copy)]
struct FlowTag {
    flow: u64,
    enqueued_us: u64,
}

/// A filled buffer on its way to a compression worker. `seq` is the
/// global handoff order; the writer restores it after parallel
/// compression.
struct FlushJob {
    seq: u64,
    tid: ThreadId,
    block: Vec<u8>,
    trace: Option<FlowTag>,
}

/// An encoded frame on its way to the ordered writer.
struct WriteJob {
    seq: u64,
    tid: ThreadId,
    raw_len: u64,
    frame: Vec<u8>,
    trace: Option<FlowTag>,
}

/// Per-stage causal-tracing handles shared along the flush pipeline:
/// queue-wait histograms, the flush-channel depth, and the journal that
/// mints flow ids. Present exactly when the collector has an [`Obs`].
#[derive(Clone)]
struct StageObs {
    journal: Journal,
    flush_wait_us: Histogram,
    write_wait_us: Histogram,
    flush_depth: Arc<AtomicU64>,
}

impl StageObs {
    fn new(obs: &Obs) -> StageObs {
        let flush_depth = Arc::new(AtomicU64::new(0));
        let d = Arc::clone(&flush_depth);
        obs.registry.source(
            "sword_flush_queue_depth",
            "filled buffers waiting for a compression worker",
            move || d.load(Ordering::Relaxed) as f64,
        );
        StageObs {
            journal: obs.journal.clone(),
            flush_wait_us: obs.registry.histogram(
                "sword_flush_queue_wait_us",
                "enqueue-to-dequeue wait on the flush channel",
            ),
            write_wait_us: obs.registry.histogram(
                "sword_write_queue_wait_us",
                "enqueue-to-dequeue wait on the writer channel",
            ),
            flush_depth,
        }
    }

    /// Stamps a job entering a queue (bumping the flush-queue depth when
    /// `depth` is set); reuses the producer's flow id when given.
    fn enqueue(&self, flow: Option<u64>, count_depth: bool) -> FlowTag {
        if count_depth {
            self.flush_depth.fetch_add(1, Ordering::Relaxed);
        }
        FlowTag {
            flow: flow.unwrap_or_else(|| self.journal.next_flow_id()),
            enqueued_us: self.journal.now_us(),
        }
    }
}

/// Writer-thread result: (raw bytes, compressed bytes).
type WriterTotals = (u64, u64);

enum FlushPath {
    /// Compression worker pool feeding one ordered writer thread.
    Async {
        tx: Mutex<Option<Sender<FlushJob>>>,
        workers: Mutex<Vec<JoinHandle<()>>>,
        writer: Mutex<Option<JoinHandle<io::Result<WriterTotals>>>>,
    },
    /// Inline writes under a lock (ablation mode).
    Sync { writers: Mutex<HashMap<ThreadId, LogWriter<BufWriter<File>>>> },
}

/// Unique collector instance ids for the thread-local slot cache.
static COLLECTOR_IDS: AtomicU64 = AtomicU64::new(1);

/// (collector id, tid, slot) — the hot access path's per-OS-thread cache.
type SlotCacheEntry = (u64, ThreadId, Arc<Mutex<ThreadLog>>);

thread_local! {
    /// Each worker OS thread serves exactly one tid for its lifetime, so
    /// the hot access path skips the slot map.
    static SLOT_CACHE: RefCell<Option<SlotCacheEntry>> = const { RefCell::new(None) };
}

/// How often the async writer republishes live metadata at most.
const LIVE_PUBLISH_INTERVAL: Duration = Duration::from_millis(25);

/// How often the async writer drains the journal rings to disk and
/// appends a registry snapshot — the crash-durability cadence: a killed
/// run's journal is at most this stale.
const OBS_FLUSH_INTERVAL: Duration = Duration::from_millis(250);

/// The collector's observability context: the shared [`Obs`] handle plus
/// the journal sink writing `<session>/obs.jsonl`.
struct CollectorObs {
    obs: Obs,
    sink: Mutex<(JournalSink, u64)>,
}

impl CollectorObs {
    /// Drains journal rings to the sink (tolerating I/O failure: telemetry
    /// must never fail the run).
    fn flush_journal(&self) {
        let mut guard = self.sink.lock();
        let (sink, last_dropped) = &mut *guard;
        let _ = sink.drain_from(&self.obs.journal, last_dropped);
    }

    /// Appends a registry snapshot to the journal, then drains to disk.
    fn snapshot_and_flush(&self) {
        self.obs.snapshot_to_journal();
        self.flush_journal();
    }
}

/// Observability state owned by the writer thread: per-write spans, the
/// queue-depth gauge, and the periodic journal drain.
struct WriterObs {
    ctx: Arc<CollectorObs>,
    journal: ThreadJournal,
    queue_depth: Gauge,
    stage: StageObs,
    last_flush: Instant,
}

impl WriterObs {
    /// Called once per received job with the reorder-buffer depth.
    fn note_queue(&mut self, depth: usize) {
        self.queue_depth.set(depth as u64);
        if self.last_flush.elapsed() >= OBS_FLUSH_INTERVAL {
            self.ctx.snapshot_and_flush();
            self.last_flush = Instant::now();
        }
    }
}

/// State shared between the collector facade and the background writer
/// thread, so either side can take a watermarked metadata snapshot.
struct Inner {
    session: SessionDir,
    slots: Mutex<HashMap<ThreadId, Arc<Mutex<ThreadLog>>>>,
    regions: Mutex<Vec<RegionRecord>>,
    /// Durably flushed *uncompressed* log bytes per thread — the live
    /// watermark. Only rows whose byte range lies entirely below this are
    /// published mid-run.
    confirmed: Mutex<HashMap<ThreadId, u64>>,
    /// Live publish counter (mirrors `live.meta`).
    generation: AtomicU64,
    error: Mutex<Option<io::Error>>,
}

impl Inner {
    /// Publishes a consistent metadata snapshot covering only durably
    /// flushed log bytes.
    ///
    /// Ordering matters twice over. The *meta rows* are snapshotted before
    /// the *region table*, so every region id a published row references is
    /// present in the (equal or newer) region snapshot. On disk the region
    /// table is then written before the per-thread metas, the mirror image
    /// of the reader's meta-then-regions order, preserving that guarantee
    /// across the atomic file replacements.
    fn publish(&self, finished: bool) -> io::Result<()> {
        let confirmed: HashMap<ThreadId, u64> = self.confirmed.lock().clone();
        let slots: Vec<(ThreadId, Arc<Mutex<ThreadLog>>)> = {
            let map = self.slots.lock();
            map.iter().map(|(tid, s)| (*tid, Arc::clone(s))).collect()
        };
        let mut metas = Vec::with_capacity(slots.len());
        for (tid, slot) in slots {
            let limit = confirmed.get(&tid).copied().unwrap_or(0);
            let log = slot.lock();
            let rows: Vec<_> =
                log.meta.iter().take_while(|r| r.data_begin + r.size <= limit).cloned().collect();
            metas.push((tid, rows));
        }
        let regions = self.regions.lock().clone();
        let mut buf = Vec::new();
        meta::write_regions(&mut buf, &regions)?;
        self.session.write_file_atomic(&self.session.regions_path(), &buf)?;
        for (tid, rows) in &metas {
            let mut buf = Vec::new();
            meta::write_meta(&mut buf, rows)?;
            self.session.write_file_atomic(&self.session.thread_meta(*tid), &buf)?;
        }
        let generation = self.generation.fetch_add(1, Ordering::Relaxed) + 1;
        self.session.write_live(LiveStatus { generation, finished })
    }
}

/// One compression worker: pulls filled buffers off the shared flush
/// channel, encodes each as a complete frame with a worker-owned
/// [`Compressor`] (hash table allocated once, recycled across blocks),
/// returns the drained buffer to the pool, and hands the frame to the
/// ordered writer. Compression itself is infallible; only the writer does
/// I/O. A failed send to the writer means the writer died on an I/O error
/// — the worker keeps draining so app threads never deadlock on the pool.
fn compression_worker(
    rx: Receiver<FlushJob>,
    writer_tx: Sender<WriteJob>,
    pool: Arc<BufferPool>,
    counters: Arc<FlushCounters>,
    obs: Option<(ThreadJournal, StageObs)>,
) {
    let mut compressor = Compressor::new();
    for job in rx {
        let t0 = obs.as_ref().map(|(j, _)| j.now_us());
        // Dequeue side of the flush channel: settle the depth gauge and
        // record the enqueue-to-dequeue wait the producer stamped.
        if let (Some((_, stage)), Some(tag), Some(t0)) = (&obs, job.trace, t0) {
            stage.flush_depth.fetch_sub(1, Ordering::Relaxed);
            stage.flush_wait_us.record(t0.saturating_sub(tag.enqueued_us));
        }
        let start = Instant::now();
        let mut frame = Vec::new();
        encode_frame_into(&mut compressor, &job.block, &mut frame);
        let raw_len = job.block.len() as u64;
        counters.add_compress(elapsed_nanos(start), raw_len, frame.len() as u64);
        if let (Some((journal, _)), Some(t0)) = (&obs, t0) {
            journal.span_closed_flow(
                "compress",
                t0,
                journal.now_us().saturating_sub(t0),
                vec![
                    ("raw_bytes".to_string(), raw_len as f64),
                    ("frame_bytes".to_string(), frame.len() as f64),
                ],
                job.trace.map(|tag| (tag.flow, FlowPhase::Step)),
            );
        }
        pool.release(job.block);
        // Re-stamp the tag for the writer-channel hop, keeping the flow id.
        let trace = obs
            .as_ref()
            .zip(job.trace)
            .map(|((_, stage), tag)| stage.enqueue(Some(tag.flow), false));
        let _ = writer_tx.send(WriteJob { seq: job.seq, tid: job.tid, raw_len, frame, trace });
    }
}

/// Writes one frame on the ordered writer thread, maintaining the live
/// watermark exactly as PR 1's single writer did: bytes enter `confirmed`
/// only after the file write (and, in live mode, a flush) completes.
fn write_one(
    shared: &Inner,
    counters: &FlushCounters,
    live: bool,
    writers: &mut HashMap<ThreadId, LogWriter<BufWriter<File>>>,
    last_publish: &mut Instant,
    obs: Option<&WriterObs>,
    job: WriteJob,
) -> io::Result<()> {
    let t0 = obs.map(|o| o.journal.now_us());
    let start = Instant::now();
    let w = match writers.entry(job.tid) {
        std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
        std::collections::hash_map::Entry::Vacant(e) => {
            let f = File::create(shared.session.thread_log(job.tid))?;
            e.insert(LogWriter::new(BufWriter::new(f)))
        }
    };
    w.write_encoded_block(&job.frame, job.raw_len)?;
    counters.add_write(elapsed_nanos(start));
    if let (Some(o), Some(t0)) = (obs, t0) {
        if let Some(tag) = job.trace {
            o.stage.write_wait_us.record(t0.saturating_sub(tag.enqueued_us));
        }
        o.journal.span_closed_flow(
            "write",
            t0,
            o.journal.now_us().saturating_sub(t0),
            vec![("frame_bytes".to_string(), job.frame.len() as f64)],
            job.trace.map(|tag| (tag.flow, FlowPhase::End)),
        );
    }
    if live {
        // Flush so the bytes are readable by a concurrent analyzer, then
        // raise the watermark and (throttled) republish.
        w.flush()?;
        shared.confirmed.lock().insert(job.tid, w.offset());
        if last_publish.elapsed() >= LIVE_PUBLISH_INTERVAL {
            shared.publish(false)?;
            *last_publish = Instant::now();
        }
    }
    Ok(())
}

/// Registers the collector's always-on metrics as registry sources:
/// flush-path counters, pool occupancy, and the bounded tool-memory
/// figure. Sources are read-on-demand closures over the existing atomics,
/// so registration adds zero hot-path work — the registry is a naming and
/// export layer, not a second accounting mechanism.
fn register_collector_sources(
    obs: &Obs,
    counters: &Arc<FlushCounters>,
    pool: &Arc<BufferPool>,
    inner: &Arc<Inner>,
) {
    let reg = &obs.registry;
    let c = Arc::clone(counters);
    reg.source("sword_flushes_total", "buffer flush handoffs", move || c.snapshot().flushes as f64);
    let c = Arc::clone(counters);
    reg.source("sword_flush_stall_nanos", "app-thread backpressure stall time", move || {
        c.snapshot().stall_nanos as f64
    });
    let c = Arc::clone(counters);
    reg.source("sword_flush_compress_nanos", "compression busy time", move || {
        c.snapshot().compress_nanos as f64
    });
    let c = Arc::clone(counters);
    reg.source("sword_flush_write_nanos", "file-writer busy time", move || {
        c.snapshot().write_nanos as f64
    });
    let c = Arc::clone(counters);
    reg.source("sword_flush_raw_bytes", "uncompressed bytes flushed", move || {
        c.snapshot().raw_bytes as f64
    });
    let c = Arc::clone(counters);
    reg.source("sword_flush_compressed_bytes", "compressed bytes written", move || {
        c.snapshot().compressed_bytes as f64
    });
    let p = Arc::clone(pool);
    reg.source("sword_pool_buffers_free", "drained spare buffers in the pool", move || {
        p.occupancy().0 as f64
    });
    let p = Arc::clone(pool);
    reg.source("sword_pool_buffers_created", "buffers created (in use + spare)", move || {
        p.occupancy().1 as f64
    });
    let p = Arc::clone(pool);
    reg.source("sword_pool_buffer_budget", "pool budget (2*threads + workers)", move || {
        p.occupancy().2 as f64
    });
    let p = Arc::clone(pool);
    reg.source("sword_pool_stall_total", "acquires that blocked at the pool budget", move || {
        p.stalls() as f64
    });
    let p = Arc::clone(pool);
    let i = Arc::clone(inner);
    reg.source(
        "sword_collector_tool_mem_bytes",
        "bounded collector footprint: pool capacity + per-thread bookkeeping",
        move || {
            let slots = i.slots.lock().len() as u64;
            (p.created_bytes() + slots * std::mem::size_of::<ThreadLog>() as u64) as f64
        },
    );
}

#[inline]
fn elapsed_nanos(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// The SWORD online collector. Attach to an [`OmpSim`] as its tool; after
/// the run, call [`SwordCollector::write_pcs`] and read
/// [`SwordCollector::stats`].
pub struct SwordCollector {
    id: u64,
    config: SwordConfig,
    inner: Arc<Inner>,
    region_count: AtomicU64,
    flush: FlushPath,
    pool: Arc<BufferPool>,
    counters: Arc<FlushCounters>,
    /// Global flush handoff order; the ordered writer restores it.
    flush_seq: AtomicU64,
    writer_totals: Mutex<Option<(u64, u64)>>,
    finished: Mutex<bool>,
    obs: Option<Arc<CollectorObs>>,
    /// Causal-tracing handles for the flush pipeline (set iff `obs` is).
    stage: Option<StageObs>,
}

impl SwordCollector {
    /// Creates the collector and its session directory (cleaning any
    /// previous session's files).
    pub fn new(config: SwordConfig) -> io::Result<Self> {
        let session = SessionDir::new(&config.session_dir);
        session.create()?;
        session.clean()?;
        let inner = Arc::new(Inner {
            session,
            slots: Mutex::new(HashMap::new()),
            regions: Mutex::new(Vec::new()),
            confirmed: Mutex::new(HashMap::new()),
            generation: AtomicU64::new(0),
            error: Mutex::new(None),
        });
        let counters = Arc::new(FlushCounters::new());
        let worker_count = if config.async_flush { config.compress_workers.max(1) } else { 0 };
        // Budget: one in-flight slot per worker now; two more per thread
        // as each registers (double buffering) — see `slot`.
        let pool =
            Arc::new(BufferPool::new(config.buffer_events.max(1) * MAX_EVENT_BYTES, worker_count));
        let obs_ctx = match &config.obs {
            Some(obs) => {
                let sink = JournalSink::create(inner.session.obs_path())?;
                let ctx = Arc::new(CollectorObs { obs: obs.clone(), sink: Mutex::new((sink, 0)) });
                register_collector_sources(obs, &counters, &pool, &inner);
                Some(ctx)
            }
            None => None,
        };
        let stage = config.obs.as_ref().map(StageObs::new);
        let flush = if config.async_flush {
            let (tx, rx) = unbounded::<FlushJob>();
            let (writer_tx, writer_rx) = unbounded::<WriteJob>();
            let mut workers = Vec::with_capacity(worker_count);
            for i in 0..worker_count {
                let rx = rx.clone();
                let writer_tx = writer_tx.clone();
                let pool = Arc::clone(&pool);
                let counters = Arc::clone(&counters);
                let worker_obs = obs_ctx.as_ref().zip(stage.as_ref()).map(|(ctx, stage)| {
                    (
                        ctx.obs.journal.for_thread(Layer::Runtime, format!("compress-{i}")),
                        stage.clone(),
                    )
                });
                workers.push(
                    std::thread::Builder::new().name(format!("sword-compress-{i}")).spawn(
                        move || compression_worker(rx, writer_tx, pool, counters, worker_obs),
                    )?,
                );
            }
            // Workers hold the only remaining writer_tx clones: the writer
            // channel closes exactly when the last worker exits.
            drop(writer_tx);
            drop(rx);
            let shared = Arc::clone(&inner);
            let writer_counters = Arc::clone(&counters);
            let live = config.live_publish;
            let mut writer_obs =
                obs_ctx.as_ref().zip(stage.as_ref()).map(|(ctx, stage)| WriterObs {
                    ctx: Arc::clone(ctx),
                    journal: ctx.obs.journal.for_thread(Layer::Runtime, "writer"),
                    queue_depth: ctx
                        .obs
                        .registry
                        .gauge("sword_writer_queue_depth", "frames waiting in the reorder buffer"),
                    stage: stage.clone(),
                    last_flush: Instant::now(),
                });
            let writer = std::thread::Builder::new().name("sword-writer".into()).spawn(
                move || -> io::Result<WriterTotals> {
                    let mut writers: HashMap<ThreadId, LogWriter<BufWriter<File>>> = HashMap::new();
                    let mut pending: BTreeMap<u64, WriteJob> = BTreeMap::new();
                    let mut next_seq = 0u64;
                    let mut last_publish = Instant::now();
                    for job in writer_rx {
                        pending.insert(job.seq, job);
                        if let Some(o) = writer_obs.as_mut() {
                            o.note_queue(pending.len());
                        }
                        // Write every contiguous frame; later sequence
                        // numbers wait here until the gap fills, keeping
                        // each thread's log in production order.
                        while let Some(job) = pending.remove(&next_seq) {
                            next_seq += 1;
                            write_one(
                                &shared,
                                &writer_counters,
                                live,
                                &mut writers,
                                &mut last_publish,
                                writer_obs.as_ref(),
                                job,
                            )?;
                        }
                    }
                    // Channel closed. A sequence gap can remain only if a
                    // handoff was lost to a dead worker (error already
                    // recorded); persist what arrived, still in order.
                    for (_, job) in std::mem::take(&mut pending) {
                        write_one(
                            &shared,
                            &writer_counters,
                            live,
                            &mut writers,
                            &mut last_publish,
                            writer_obs.as_ref(),
                            job,
                        )?;
                    }
                    let mut raw = 0;
                    let mut compressed = 0;
                    for (_, mut w) in writers {
                        w.flush()?;
                        raw += w.raw_bytes();
                        compressed += w.written_bytes();
                    }
                    Ok((raw, compressed))
                },
            )?;
            FlushPath::Async {
                tx: Mutex::new(Some(tx)),
                workers: Mutex::new(workers),
                writer: Mutex::new(Some(writer)),
            }
        } else {
            FlushPath::Sync { writers: Mutex::new(HashMap::new()) }
        };
        Ok(SwordCollector {
            id: COLLECTOR_IDS.fetch_add(1, Ordering::Relaxed),
            config,
            inner,
            region_count: AtomicU64::new(0),
            flush,
            pool,
            counters,
            flush_seq: AtomicU64::new(0),
            writer_totals: Mutex::new(None),
            finished: Mutex::new(false),
            obs: obs_ctx,
            stage,
        })
    }

    /// The attached observability context, if any.
    pub fn obs(&self) -> Option<&Obs> {
        self.obs.as_deref().map(|ctx| &ctx.obs)
    }

    /// The session directory being written.
    pub fn session(&self) -> &SessionDir {
        &self.inner.session
    }

    /// Publishes a watermarked metadata snapshot right now, covering every
    /// barrier interval whose log bytes are durably flushed.
    ///
    /// With synchronous flushing this first flushes all writers inline, so
    /// the snapshot covers everything logged so far; with the async writer
    /// it publishes whatever the writer thread has confirmed (which may
    /// trail the most recent buffers still in flight). The writer thread
    /// also auto-publishes on a short throttle in live mode, so calling
    /// this is optional — it exists to force a deterministic publish point.
    pub fn publish_progress(&self) -> io::Result<()> {
        if let FlushPath::Sync { writers } = &self.flush {
            let mut writers = writers.lock();
            let mut confirmed = self.inner.confirmed.lock();
            for (tid, w) in writers.iter_mut() {
                w.flush()?;
                confirmed.insert(*tid, w.offset());
            }
        }
        self.inner.publish(false)
    }

    /// Persists the program-counter table (call after the run, with
    /// [`OmpSim::export_pcs`]).
    pub fn write_pcs(&self, table: &PcTable) -> io::Result<()> {
        let mut f = BufWriter::new(File::create(self.inner.session.pcs_path())?);
        table.write_to(&mut f)?;
        f.flush()
    }

    /// First I/O error encountered, if any (the collector drops data after
    /// an error rather than corrupting the session).
    pub fn take_error(&self) -> Option<io::Error> {
        self.inner.error.lock().take()
    }

    /// Run summary. Meaningful after `program_end`.
    pub fn stats(&self) -> SwordStats {
        let mut stats = SwordStats {
            regions: self.region_count.load(Ordering::Relaxed),
            ..SwordStats::default()
        };
        let slots = self.inner.slots.lock();
        stats.threads = slots.len() as u64;
        for slot in slots.values() {
            let log = slot.lock();
            stats.events += log.events_total;
            stats.flushes += log.flushes;
            stats.barrier_intervals += log.meta.len() as u64;
            // Fixed per-thread bookkeeping; the event buffers themselves
            // are pool-owned and counted once below. Meta rows are
            // excluded by design — they are O(regions), spilled with the
            // logs in a production setting; the paper's bound covers the
            // event path.
            stats.tool_memory_bytes += std::mem::size_of::<ThreadLog>() as u64;
        }
        // Every event buffer in existence — being filled, in flight to a
        // worker, or spare — came from the pool, so its created capacity
        // IS the bounded event-path footprint: 2·threads + workers
        // buffers, regardless of run length or application size.
        stats.tool_memory_bytes += self.pool.created_bytes();
        if let Some((raw, compressed)) = *self.writer_totals.lock() {
            stats.raw_bytes = raw;
            stats.compressed_bytes = compressed;
        }
        stats.flush = self.counters.snapshot();
        stats
    }

    /// Measured bounded memory (buffers + bookkeeping).
    pub fn tool_memory_bytes(&self) -> u64 {
        self.stats().tool_memory_bytes
    }

    fn record_error(&self, e: io::Error) {
        self.inner.error.lock().get_or_insert(e);
    }

    fn slot(&self, tid: ThreadId) -> Arc<Mutex<ThreadLog>> {
        SLOT_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((cid, ctid, slot)) = cache.as_ref() {
                if *cid == self.id && *ctid == tid {
                    return Arc::clone(slot);
                }
            }
            let slot = {
                let mut slots = self.inner.slots.lock();
                Arc::clone(slots.entry(tid).or_insert_with(|| {
                    // Double buffering: each thread funds two pool slots —
                    // the buffer it fills and the drained one it swaps in
                    // at flush time. The budget grows before the acquire,
                    // so this initial acquire never blocks.
                    self.pool.grow_budget(2);
                    let initial = self.pool.acquire();
                    let mut log = ThreadLog::with_buffer(self.config.buffer_events, initial);
                    log.obs = self.obs.as_ref().map(|ctx| {
                        ctx.obs.journal.for_thread(Layer::Runtime, format!("app-{tid}"))
                    });
                    Arc::new(Mutex::new(log))
                }))
            };
            *cache = Some((self.id, tid, Arc::clone(&slot)));
            slot
        })
    }

    fn ship(&self, tid: ThreadId, block: Vec<u8>, flow: Option<u64>) {
        self.counters.record_flush();
        match &self.flush {
            FlushPath::Async { tx, .. } => {
                if let Some(tx) = tx.lock().as_ref() {
                    // Take the sequence number only for a live channel so
                    // the ordered writer never waits on a gap that was
                    // never sent.
                    let seq = self.flush_seq.fetch_add(1, Ordering::Relaxed);
                    // Stamp the flush-channel hop (finalize-path ships,
                    // which had no handoff span, mint a fresh flow here).
                    let trace = self.stage.as_ref().map(|s| s.enqueue(flow, true));
                    // Workers only exit on finish; a send failure is
                    // recorded once.
                    if tx.send(FlushJob { seq, tid, block, trace }).is_err() {
                        self.record_error(io::Error::other("sword compression workers gone"));
                    }
                }
            }
            FlushPath::Sync { writers } => {
                let start = Instant::now();
                let mut writers = writers.lock();
                let result = (|| -> io::Result<()> {
                    let w = match writers.entry(tid) {
                        std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                        std::collections::hash_map::Entry::Vacant(e) => {
                            let f = File::create(self.inner.session.thread_log(tid))?;
                            e.insert(LogWriter::new(BufWriter::new(f)))
                        }
                    };
                    let before = w.written_bytes();
                    w.write_block(&block)?;
                    self.counters.add_compress(
                        elapsed_nanos(start),
                        block.len() as u64,
                        w.written_bytes() - before,
                    );
                    Ok(())
                })();
                drop(writers);
                self.pool.release(block);
                if let Err(e) = result {
                    self.record_error(e);
                }
            }
        }
    }

    fn push_event(&self, tid: ThreadId, event: &Event) {
        let slot = self.slot(tid);
        let shipment = {
            let mut log = slot.lock();
            if log.push(event) {
                // Double-buffer handoff: trade the full buffer for a
                // drained one. `acquire` only blocks when the whole pool
                // budget is in flight (I/O slower than event production);
                // that backpressure stall is what `stall_nanos` measures.
                // The journal records only here, at flush boundaries —
                // once per ~buffer_events events, never per event.
                let t0 = log.obs.as_ref().map(ThreadJournal::now_us);
                let start = Instant::now();
                let fresh = self.pool.acquire();
                let stall = elapsed_nanos(start);
                self.counters.add_stall(stall);
                let block = log.swap_buffer(fresh);
                // The handoff span starts this block's causal flow; the
                // compress and write spans downstream continue it.
                let flow = self.stage.as_ref().map(|s| s.journal.next_flow_id());
                if let (Some(tj), Some(t0)) = (&log.obs, t0) {
                    tj.span_closed_flow(
                        "flush-handoff",
                        t0,
                        tj.now_us().saturating_sub(t0),
                        vec![
                            ("bytes".to_string(), block.len() as f64),
                            ("stall_ns".to_string(), stall as f64),
                        ],
                        flow.map(|f| (f, FlowPhase::Start)),
                    );
                }
                Some((block, flow))
            } else {
                None
            }
        };
        if let Some((block, flow)) = shipment {
            self.ship(tid, block, flow);
        }
    }

    fn finalize(&self) -> io::Result<()> {
        // Drain every thread's remaining buffer.
        let slots: Vec<(ThreadId, Arc<Mutex<ThreadLog>>)> = {
            let map = self.inner.slots.lock();
            map.iter().map(|(tid, s)| (*tid, Arc::clone(s))).collect()
        };
        for (tid, slot) in &slots {
            if let Some(block) = slot.lock().drain() {
                self.ship(*tid, block, None);
            }
        }
        // Stop the flush pipeline and collect byte totals: close the
        // flush channel, join the compression workers (their exit drops
        // the last writer senders), then join the ordered writer.
        let totals = match &self.flush {
            FlushPath::Async { tx, workers, writer } => {
                tx.lock().take(); // close the flush channel
                for handle in workers.lock().drain(..) {
                    if handle.join().is_err() {
                        self.record_error(io::Error::other("sword compression worker panicked"));
                    }
                }
                match writer.lock().take() {
                    Some(handle) => handle
                        .join()
                        .map_err(|_| io::Error::other("sword writer thread panicked"))??,
                    None => (0, 0),
                }
            }
            FlushPath::Sync { writers } => {
                let mut raw = 0;
                let mut compressed = 0;
                let mut writers = writers.lock();
                for (_, w) in writers.iter_mut() {
                    w.flush()?;
                    raw += w.raw_bytes();
                    compressed += w.written_bytes();
                }
                (raw, compressed)
            }
        };
        *self.writer_totals.lock() = Some(totals);
        // Every log byte is on disk now, so lift the watermark past all
        // rows and publish the complete metadata as the final generation.
        // Regions land before metas and each file is replaced atomically:
        // a live watcher mid-finalize still sees only consistent states.
        {
            let mut confirmed = self.inner.confirmed.lock();
            for (tid, _) in &slots {
                confirmed.insert(*tid, u64::MAX);
            }
        }
        self.inner.publish(true)?;
        // Run info.
        let mut info = std::collections::BTreeMap::new();
        info.insert("buffer_events".to_string(), self.config.buffer_events.to_string());
        info.insert("threads".to_string(), slots.len().to_string());
        info.insert("regions".to_string(), self.region_count.load(Ordering::Relaxed).to_string());
        // Flush-path counters are complete here (workers and writer have
        // joined), so the offline analyzer can report them post-hoc.
        self.counters.snapshot().to_info(&mut info);
        self.inner.session.write_info(&info)?;
        // Close out the observability side: a finalize marker, one last
        // registry snapshot, the remaining journal rings, and the
        // Prometheus exposition file.
        if let Some(ctx) = &self.obs {
            let journal = ctx.obs.journal.for_thread(Layer::Runtime, "collector");
            journal.instant("finalize", vec![("threads".to_string(), slots.len() as f64)]);
            ctx.snapshot_and_flush();
            self.inner.session.write_file_atomic(
                &self.inner.session.metrics_path(),
                ctx.obs.registry.render_prometheus().as_bytes(),
            )?;
        }
        Ok(())
    }
}

impl Tool for SwordCollector {
    fn program_end(&self) {
        let mut finished = self.finished.lock();
        if *finished {
            return;
        }
        *finished = true;
        if let Err(e) = self.finalize() {
            self.record_error(e);
        }
    }

    fn parallel_begin(&self, info: &ParallelBeginInfo<'_>) {
        self.region_count.fetch_add(1, Ordering::Relaxed);
        self.inner.regions.lock().push(RegionRecord {
            pid: info.region,
            ppid: info.parent_region,
            level: info.level,
            span: info.span,
            fork_label: info.fork_label.to_flat(),
            deps: Vec::new(),
        });
    }

    fn thread_begin(&self, ctx: &ThreadContext<'_>) {
        let slot = self.slot(ctx.tid);
        slot.lock().open_interval(ctx);
    }

    fn thread_end(&self, ctx: &ThreadContext<'_>) {
        let slot = self.slot(ctx.tid);
        let mut log = slot.lock();
        if log.interval_open() {
            log.close_interval();
        }
    }

    fn barrier_begin(&self, ctx: &ThreadContext<'_>) {
        let slot = self.slot(ctx.tid);
        let mut log = slot.lock();
        if log.interval_open() {
            log.close_interval();
        }
    }

    fn barrier_end(&self, ctx: &ThreadContext<'_>) {
        let slot = self.slot(ctx.tid);
        slot.lock().open_interval(ctx);
    }

    fn task_create(&self, outer: &ThreadContext<'_>, info: &TaskCreateInfo<'_>) {
        // The task pseudo-region enters the region table like a nested
        // region, with its `depend` predecessors attached — the offline
        // analyzers layer the dependence partial order above the labels.
        self.inner.regions.lock().push(RegionRecord {
            pid: info.region,
            ppid: Some(info.parent_region),
            level: info.level,
            span: sword_osl::TASK_SPAN,
            fork_label: info.fork_label.to_flat(),
            deps: info.preds.to_vec(),
        });
        // The creator's current row ends at the creation point; the
        // continuation reopens under the pseudo-region at `task_end`.
        let slot = self.slot(outer.tid);
        let mut log = slot.lock();
        if log.interval_open() {
            log.close_interval();
        }
    }

    fn task_begin(&self, _outer: &ThreadContext<'_>, task: &ThreadContext<'_>, _uid: TaskUid) {
        let slot = self.slot(task.tid);
        slot.lock().open_interval(task);
    }

    fn task_end(&self, task: &ThreadContext<'_>, outer: &ThreadContext<'_>, _uid: TaskUid) {
        {
            let slot = self.slot(task.tid);
            let mut log = slot.lock();
            if log.interval_open() {
                log.close_interval();
            }
        }
        let slot = self.slot(outer.tid);
        slot.lock().open_interval(outer);
    }

    fn task_sync(&self, restored: &ThreadContext<'_>, _synced: &[TaskUid]) {
        // Close the chain fragment and reopen under the restored identity
        // (the real region row, or the group-entry row).
        let slot = self.slot(restored.tid);
        let mut log = slot.lock();
        if log.interval_open() {
            log.close_interval();
        }
        log.open_interval(restored);
    }

    fn mutex_acquired(&self, ctx: &ThreadContext<'_>, mutex: MutexId) {
        self.push_event(ctx.tid, &Event::MutexAcquire(mutex));
    }

    fn mutex_released(&self, ctx: &ThreadContext<'_>, mutex: MutexId) {
        self.push_event(ctx.tid, &Event::MutexRelease(mutex));
    }

    fn access(&self, ctx: &ThreadContext<'_>, access: MemAccess) {
        self.push_event(ctx.tid, &Event::Access(access));
    }

    fn parallel_end(&self, _region: RegionId, _fork_tid: ThreadId) {}
}

/// Convenience harness: build a collector, run `program` against a tooled
/// runtime, persist PCs, and return the program result with collection
/// stats. `program` receives the runtime and is responsible for invoking
/// [`OmpSim::run`].
pub fn run_collected<R>(
    sword: SwordConfig,
    sim_config: SimConfig,
    program: impl FnOnce(&OmpSim) -> R,
) -> io::Result<(R, SwordStats)> {
    let collector = Arc::new(SwordCollector::new(sword)?);
    let sim = OmpSim::with_tool_and_config(collector.clone(), sim_config);
    let result = program(&sim);
    collector.write_pcs(&sim.export_pcs())?;
    if let Some(e) = collector.take_error() {
        return Err(e);
    }
    Ok((result, collector.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::io::BufReader;
    use sword_trace::{read_meta, read_regions, EventDecoder, LogReader};

    fn tmp_session(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sword-collector-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn collect_simple(
        tag: &str,
        async_flush: bool,
        buffer_events: usize,
    ) -> (SessionDir, SwordStats) {
        let dir = tmp_session(tag);
        let mut config = SwordConfig::new(&dir).buffer_events(buffer_events);
        if !async_flush {
            config = config.sync_flush();
        }
        let (_, stats) = run_collected(config, SimConfig::default(), |sim| {
            let a = sim.alloc::<f64>(256, 0.0);
            sim.run(|ctx| {
                ctx.parallel(4, |w| {
                    w.for_static(0..256, |i| {
                        let v = w.read(&a, i);
                        w.write(&a, i, v + 1.0);
                    });
                    w.critical("sum", || {
                        let v = w.read(&a, 0);
                        w.write(&a, 0, v);
                    });
                });
            });
        })
        .expect("collection succeeds");
        (SessionDir::new(&dir), stats)
    }

    #[test]
    fn session_files_written() {
        let (session, stats) = collect_simple("files", true, 1000);
        assert_eq!(session.thread_ids().unwrap().len(), 4);
        assert!(session.regions_path().exists());
        assert!(session.pcs_path().exists());
        assert_eq!(stats.threads, 4);
        assert_eq!(stats.regions, 1);
        // 256 reads + 256 writes + 4·(2 critical accesses) = 520, plus
        // 4·2 mutex events.
        assert_eq!(stats.events, 520 + 8);
        assert!(stats.raw_bytes > 0);
        assert!(stats.compressed_bytes > 0);
        fs::remove_dir_all(session.path()).unwrap();
    }

    #[test]
    fn meta_rows_cover_log_exactly() {
        let (session, _) = collect_simple("meta", true, 64);
        for tid in session.thread_ids().unwrap() {
            let rows =
                read_meta(BufReader::new(File::open(session.thread_meta(tid)).unwrap())).unwrap();
            // for_static barrier splits the region into 2 intervals.
            assert_eq!(rows.len(), 2, "tid {tid}");
            assert_eq!(rows[0].bid, 0);
            assert_eq!(rows[1].bid, 1);
            assert_eq!(rows[0].data_begin, 0);
            assert_eq!(rows[1].data_begin, rows[0].size);
            assert_eq!(rows[0].span, 4);
            assert_eq!(rows[0].offset % rows[0].span, rows[1].offset % rows[1].span);
            assert_eq!(rows[1].offset, rows[0].offset + rows[0].span);
            // The log decompresses to exactly the covered bytes.
            let mut r = LogReader::new(File::open(session.thread_log(tid)).unwrap());
            let mut all = Vec::new();
            let total = r.read_to_end(&mut all).unwrap();
            assert_eq!(total, rows[1].data_begin + rows[1].size);
        }
        fs::remove_dir_all(session.path()).unwrap();
    }

    #[test]
    fn intervals_decode_standalone() {
        let (session, _) = collect_simple("decode", true, 32);
        let tid = session.thread_ids().unwrap()[0];
        let rows =
            read_meta(BufReader::new(File::open(session.thread_meta(tid)).unwrap())).unwrap();
        let mut reader = LogReader::new(File::open(session.thread_log(tid)).unwrap());
        for row in &rows {
            let mut bytes = Vec::new();
            reader.read_range(row.data_begin, row.size, &mut bytes).unwrap();
            let events = EventDecoder::new().decode_all(&bytes).unwrap();
            if row.bid == 0 {
                // 64 reads + 64 writes for this thread's quarter.
                assert_eq!(events.len(), 128);
                assert!(events.iter().all(|e| e.as_access().is_some()));
            } else {
                // Critical section: acquire, read, write, release.
                assert_eq!(events.len(), 4);
                assert!(matches!(events[0], Event::MutexAcquire(_)));
                assert!(matches!(events[3], Event::MutexRelease(_)));
            }
        }
        fs::remove_dir_all(session.path()).unwrap();
    }

    #[test]
    fn sync_and_async_flush_produce_identical_streams() {
        let (s_async, st_async) = collect_simple("async", true, 16);
        let (s_sync, st_sync) = collect_simple("sync", false, 16);
        assert_eq!(st_async.events, st_sync.events);
        assert_eq!(st_async.raw_bytes, st_sync.raw_bytes);
        for tid in s_async.thread_ids().unwrap() {
            let read_all = |s: &SessionDir| {
                let mut r = LogReader::new(File::open(s.thread_log(tid)).unwrap());
                let mut v = Vec::new();
                r.read_to_end(&mut v).unwrap();
                v
            };
            // Note: per-tid streams may differ across runs only if thread
            // scheduling differed; the loop is static so they match.
            let a = read_all(&s_async);
            let b = read_all(&s_sync);
            assert_eq!(a.len(), b.len(), "tid {tid}");
        }
        fs::remove_dir_all(s_async.path()).unwrap();
        fs::remove_dir_all(s_sync.path()).unwrap();
    }

    #[test]
    fn pool_stress_no_flush_lost_or_reordered() {
        // 8 threads × 2-event buffers × several regions: thousands of
        // buffer handoffs racing through 3 compression workers. Each
        // thread's static chunk writes strictly increasing addresses, so
        // any lost or reordered flush shows up as a hole or a backwards
        // jump in that thread's decoded stream.
        let dir = tmp_session("pool-stress");
        let config = SwordConfig::new(&dir).buffer_events(2).compress_workers(3);
        let rounds = 6u64;
        let n = 512u64;
        let (_, stats) = run_collected(config, SimConfig::default(), |sim| {
            let a = sim.alloc::<u64>(n, 0);
            sim.run(|ctx| {
                for _ in 0..rounds {
                    ctx.parallel(8, |w| {
                        w.for_static(0..n, |i| {
                            w.write(&a, i, i);
                        });
                    });
                }
            });
        })
        .expect("stress collection succeeds");
        assert_eq!(stats.events, rounds * n);
        assert!(stats.flushes >= stats.events / 2, "2-event buffers flush constantly");
        // The flush counters see every handoff and every byte the writer
        // accounts for — nothing bypassed the pool pipeline.
        assert_eq!(stats.flush.flushes, stats.flushes);
        assert_eq!(stats.flush.raw_bytes, stats.raw_bytes);
        assert!(stats.flush.compress_nanos > 0);

        let session = SessionDir::new(&dir);
        let mut decoded_total = 0u64;
        let mut covered_total = 0u64;
        for tid in session.thread_ids().unwrap() {
            let rows =
                read_meta(BufReader::new(File::open(session.thread_meta(tid)).unwrap())).unwrap();
            // for_static's implicit barrier splits each region in two
            // (the post-barrier interval is empty).
            assert_eq!(rows.len(), 2 * rounds as usize, "two intervals per region, tid {tid}");
            let mut reader = LogReader::new(File::open(session.thread_log(tid)).unwrap());
            let mut stream = Vec::new();
            let total = reader.read_to_end(&mut stream).unwrap();
            let last = rows.last().unwrap();
            assert_eq!(
                total,
                last.data_begin + last.size,
                "log covers exactly the meta, tid {tid}"
            );
            covered_total += total;
            for row in &rows {
                let range = &stream[row.data_begin as usize..(row.data_begin + row.size) as usize];
                let events = EventDecoder::new().decode_all(range).unwrap();
                let addrs: Vec<u64> =
                    events.iter().map(|e| e.as_access().expect("writes only").addr).collect();
                assert!(
                    addrs.windows(2).all(|w| w[0] < w[1]),
                    "reordered flush: addresses regress within tid {tid} bid {}",
                    row.bid
                );
                decoded_total += events.len() as u64;
            }
        }
        assert_eq!(decoded_total, stats.events, "every event survived the pipeline");
        assert_eq!(covered_total, stats.raw_bytes);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn region_table_links_nesting() {
        let dir = tmp_session("regions");
        let (_, stats) = run_collected(SwordConfig::new(&dir), SimConfig::default(), |sim| {
            let a = sim.alloc::<u64>(16, 0);
            sim.run(|ctx| {
                ctx.parallel(2, |w| {
                    w.write(&a, w.team_index(), 1);
                    w.parallel(2, |inner| {
                        inner.write(&a, 4 + inner.team_index(), 1);
                    });
                });
            });
        })
        .unwrap();
        assert_eq!(stats.regions, 3, "one outer + two inner");
        let session = SessionDir::new(&dir);
        let regions =
            read_regions(BufReader::new(File::open(session.regions_path()).unwrap())).unwrap();
        assert_eq!(regions.len(), 3);
        let outer = regions.iter().find(|r| r.ppid.is_none()).unwrap();
        assert_eq!(outer.level, 1);
        let inner: Vec<_> = regions.iter().filter(|r| r.ppid == Some(outer.pid)).collect();
        assert_eq!(inner.len(), 2);
        for r in inner {
            assert_eq!(r.level, 2);
            // Fork label extends the outer fork label by two pairs: the
            // forking member's own pair and its span-1 fork-point pair.
            assert_eq!(r.fork_label.len(), outer.fork_label.len() + 4);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tasking_session_rows_and_regions() {
        let dir = tmp_session("tasks");
        let (_, stats) =
            run_collected(SwordConfig::new(&dir).sync_flush(), SimConfig::default(), |sim| {
                let a = sim.alloc::<u64>(8, 0);
                sim.run(|ctx| {
                    ctx.parallel(1, |w| {
                        w.write(&a, 0, 1); // pre-chain
                        w.task_depend(&[(0, sword_ompsim::DepMode::Out)], |t| t.write(&a, 1, 2));
                        w.task_depend(&[(0, sword_ompsim::DepMode::In)], |t| t.write(&a, 2, 3));
                        w.write(&a, 3, 4); // continuation
                        w.taskwait();
                        w.write(&a, 4, 5); // post-sync
                    });
                });
            })
            .unwrap();
        // Master + worker + two task tids, each with its own log file.
        assert_eq!(stats.threads, 3, "worker and both tasks logged");
        let session = SessionDir::new(&dir);
        let regions =
            read_regions(BufReader::new(File::open(session.regions_path()).unwrap())).unwrap();
        assert_eq!(regions.len(), 3, "one parallel region + two task pseudo-regions");
        let tasks: Vec<_> = regions.iter().filter(|r| r.span == sword_osl::TASK_SPAN).collect();
        assert_eq!(tasks.len(), 2);
        assert!(tasks.iter().all(|r| r.ppid == Some(0) && r.level == 2));
        // The second task's depend(in) conflicts with the first's
        // depend(out): the region table carries the edge.
        assert_eq!(tasks[0].deps, Vec::<u64>::new());
        assert_eq!(tasks[1].deps, vec![tasks[0].pid]);
        // The worker's log fragments: real-region row, two continuation
        // rows under the pseudo-regions, then the restored real-region row.
        let worker_rows =
            read_meta(BufReader::new(File::open(session.thread_meta(1)).unwrap())).unwrap();
        let ids: Vec<(u64, u64, u64)> =
            worker_rows.iter().map(|r| (r.pid, r.offset, r.span)).collect();
        assert_eq!(ids.len(), 4, "{ids:?}");
        assert_eq!(ids[0].0, 0);
        assert_eq!(ids[1], (tasks[0].pid, 0, sword_osl::TASK_SPAN), "continuation row");
        assert_eq!(ids[2], (tasks[1].pid, 0, sword_osl::TASK_SPAN), "continuation row");
        assert_eq!(ids[3].0, 0, "restored after taskwait");
        // Each task body logged one row under its own tid.
        for (tid, task) in [(2u32, tasks[0]), (3u32, tasks[1])] {
            let rows =
                read_meta(BufReader::new(File::open(session.thread_meta(tid)).unwrap())).unwrap();
            assert_eq!(rows.len(), 1, "tid {tid}");
            assert_eq!(
                (rows[0].pid, rows[0].offset, rows[0].span),
                (task.pid, 1, sword_osl::TASK_SPAN)
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn buffer_bound_is_respected() {
        let (session, stats) = collect_simple("bound", true, 8);
        // 8-event buffers: tiny bounded memory, many flushes.
        assert!(stats.flushes >= stats.events / 8);
        assert!(stats.tool_memory_bytes < 64 * 1024, "{}", stats.tool_memory_bytes);
        fs::remove_dir_all(session.path()).unwrap();
    }

    #[test]
    fn unwritable_session_path_fails_fast() {
        // A regular file where the session directory should go: creation
        // must fail up front, not mid-run.
        let path =
            std::env::temp_dir().join(format!("sword-collector-blocked-{}", std::process::id()));
        fs::write(&path, "not a directory").unwrap();
        let err = SwordCollector::new(SwordConfig::new(&path));
        assert!(err.is_err(), "creating a session inside a file must fail");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn log_write_failure_surfaces_as_error() {
        // Sabotage one thread's log path by pre-creating a *directory*
        // there: File::create fails, the collector records the error, and
        // run_collected reports it instead of silently dropping data.
        let dir = tmp_session("sabotage");
        let session = SessionDir::new(&dir);
        session.create().unwrap();
        // Worker tids start after the master's tid 0: block tid 1.
        fs::create_dir_all(session.thread_log(1)).unwrap();
        let result = run_collected(
            SwordConfig::new(&dir).sync_flush().buffer_events(1),
            SimConfig::default(),
            |sim| {
                let a = sim.alloc::<u64>(64, 0);
                sim.run(|ctx| {
                    ctx.parallel(2, |w| {
                        w.for_static(0..64, |i| {
                            w.write(&a, i, i);
                        });
                    });
                });
            },
        );
        assert!(result.is_err(), "sabotaged log file must surface an I/O error");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn async_writer_failure_surfaces_at_finalize() {
        let dir = tmp_session("sabotage-async");
        let session = SessionDir::new(&dir);
        session.create().unwrap();
        fs::create_dir_all(session.thread_log(1)).unwrap();
        let result =
            run_collected(SwordConfig::new(&dir).buffer_events(1), SimConfig::default(), |sim| {
                let a = sim.alloc::<u64>(64, 0);
                sim.run(|ctx| {
                    ctx.parallel(2, |w| {
                        w.for_static(0..64, |i| {
                            w.write(&a, i, i);
                        });
                    });
                });
            });
        assert!(result.is_err(), "async writer errors must reach the caller");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn live_publish_exposes_progress_mid_run() {
        let dir = tmp_session("live");
        let collector = Arc::new(
            SwordCollector::new(SwordConfig::new(&dir).sync_flush().buffer_events(1).live())
                .unwrap(),
        );
        let session = collector.session().clone();
        let sim = OmpSim::with_tool_and_config(collector.clone(), SimConfig::default());
        let a = sim.alloc::<u64>(64, 0);
        let mut mid = None;
        sim.run(|ctx| {
            ctx.parallel(2, |w| {
                w.for_static(0..64, |i| {
                    w.write(&a, i, i);
                });
            });
            collector.publish_progress().unwrap();
            let status = session.read_live().unwrap().unwrap();
            let rows: usize = session
                .thread_ids()
                .unwrap()
                .iter()
                .map(|&tid| {
                    read_meta(BufReader::new(File::open(session.thread_meta(tid)).unwrap()))
                        .unwrap()
                        .len()
                })
                .sum();
            mid = Some((status, rows));
            ctx.parallel(2, |w| {
                w.for_static(0..64, |i| {
                    w.write(&a, i, i + 1);
                });
            });
        });
        collector.write_pcs(&sim.export_pcs()).unwrap();
        assert!(collector.take_error().is_none());
        let (mid_status, mid_rows) = mid.unwrap();
        assert!(!mid_status.finished);
        assert!(mid_status.generation >= 1);
        assert!(mid_rows >= 2, "first region's intervals visible mid-run, got {mid_rows}");
        let final_status = session.read_live().unwrap().unwrap();
        assert!(final_status.finished, "finalize marks the session finished");
        assert!(final_status.generation > mid_status.generation);
        let final_rows: usize = session
            .thread_ids()
            .unwrap()
            .iter()
            .map(|&tid| {
                read_meta(BufReader::new(File::open(session.thread_meta(tid)).unwrap()))
                    .unwrap()
                    .len()
            })
            .sum();
        assert!(final_rows > mid_rows, "final metadata extends the mid-run prefix");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn async_live_watermark_never_overruns_flushed_bytes() {
        let dir = tmp_session("live-async");
        let mut config = SwordConfig::new(&dir).buffer_events(4);
        config = config.live();
        let (_, stats) = run_collected(config, SimConfig::default(), |sim| {
            let a = sim.alloc::<u64>(128, 0);
            sim.run(|ctx| {
                ctx.parallel(4, |w| {
                    w.for_static(0..128, |i| {
                        w.write(&a, i, i);
                    });
                });
            });
        })
        .unwrap();
        assert!(stats.events > 0);
        let session = SessionDir::new(&dir);
        // After finalize, live.meta says finished and the metadata is the
        // complete, batch-identical view.
        let status = session.read_live().unwrap().unwrap();
        assert!(status.finished);
        for tid in session.thread_ids().unwrap() {
            let rows =
                read_meta(BufReader::new(File::open(session.thread_meta(tid)).unwrap())).unwrap();
            let mut r = LogReader::new(File::open(session.thread_log(tid)).unwrap());
            let mut all = Vec::new();
            let total = r.read_to_end(&mut all).unwrap();
            let covered = rows.last().map_or(0, |r| r.data_begin + r.size);
            assert_eq!(total, covered, "tid {tid}");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn obs_run_journals_all_flush_roles_and_writes_prom() {
        let dir = tmp_session("obs");
        let obs = Obs::new();
        let config = SwordConfig::new(&dir).buffer_events(16).with_obs(obs.clone());
        let (_, stats) = run_collected(config, SimConfig::default(), |sim| {
            let a = sim.alloc::<u64>(512, 0);
            sim.run(|ctx| {
                ctx.parallel(4, |w| {
                    w.for_static(0..512, |i| {
                        w.write(&a, i, i);
                    });
                });
            });
        })
        .unwrap();
        let session = SessionDir::new(&dir);

        // The journal is on disk, complete, and carries spans from every
        // flush-path role: app threads, compression workers, the writer.
        let read = sword_obs::read_journal(&session.obs_path()).unwrap();
        assert!(!read.truncated_tail);
        let span_names: Vec<&str> =
            read.events.iter().filter(|e| e.dur_us.is_some()).map(|e| e.name.as_str()).collect();
        for expected in ["flush-handoff", "compress", "write"] {
            assert!(span_names.contains(&expected), "missing {expected} span");
        }
        assert!(read
            .events
            .iter()
            .filter(|e| e.dur_us.is_some())
            .all(|e| e.layer == Layer::Runtime));
        assert!(read.events.iter().any(|e| e.name == "finalize"));

        // Causal tracing: every handoff-born flow id threads through all
        // three stages — Start on the handoff, Step on the compress, End
        // on the write — so the Chrome trace draws one arrow chain per
        // shipped buffer.
        let phase_of = |name: &str, want: FlowPhase| -> Vec<u64> {
            read.events
                .iter()
                .filter(|e| e.name == name)
                .filter_map(|e| e.flow)
                .filter(|(_, p)| *p == want)
                .map(|(id, _)| id)
                .collect()
        };
        let starts = phase_of("flush-handoff", FlowPhase::Start);
        let steps = phase_of("compress", FlowPhase::Step);
        let ends = phase_of("write", FlowPhase::End);
        assert!(!starts.is_empty(), "handoff spans carry flow starts");
        for id in &starts {
            assert!(steps.contains(id), "flow {id} missing its compress step");
            assert!(ends.contains(id), "flow {id} missing its write end");
        }

        // Queue-wait histograms saw one sample per hop.
        let metrics_snap = obs.registry.snapshot();
        let get = |name: &str| {
            metrics_snap.iter().find(|(k, _)| k == name).map(|(_, v)| *v).unwrap_or(f64::NAN)
        };
        assert!(get("sword_flush_queue_wait_us_count") >= starts.len() as f64);
        assert!(get("sword_write_queue_wait_us_count") >= starts.len() as f64);
        assert_eq!(get("sword_flush_queue_depth"), 0.0, "queue drained at finalize");
        assert!(get("sword_pool_stall_total") >= 0.0);

        // The final registry snapshot agrees with the run's stats.
        let snap = read.events.iter().rev().find(|e| e.name == "metrics").expect("snapshot");
        let lookup = |name: &str| {
            snap.args.iter().find(|(k, _)| k == name).map(|(_, v)| *v).unwrap_or(f64::NAN)
        };
        assert_eq!(lookup("sword_flushes_total") as u64, stats.flushes);
        assert_eq!(lookup("sword_flush_raw_bytes") as u64, stats.raw_bytes);
        assert_eq!(lookup("sword_collector_tool_mem_bytes") as u64, stats.tool_memory_bytes);
        assert!(lookup("sword_pool_buffers_created") >= 1.0);

        // Prometheus exposition written at finalize.
        let prom = fs::read_to_string(session.metrics_path()).unwrap();
        assert!(prom.contains("# TYPE sword_collector_tool_mem_bytes gauge"));
        assert!(prom.contains("sword_flushes_total"));
        assert!(prom.contains("sword_writer_queue_depth"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_compression_ratio() {
        let (session, stats) = collect_simple("ratio", true, 25_000);
        assert!(stats.compression_ratio() > 1.5, "{}", stats.compression_ratio());
        fs::remove_dir_all(session.path()).unwrap();
    }
}
