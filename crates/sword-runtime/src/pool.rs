//! Recycling buffer pool behind the collector's double-buffered flushing.
//!
//! Every event buffer in the system — the one each app thread is filling,
//! the ones in flight to the compression workers, and the drained spares —
//! is owned by one [`BufferPool`]. When a thread's buffer fills it hands
//! the full buffer off and immediately acquires a drained one, so the hot
//! path never allocates; compression workers return buffers after encoding
//! them. The pool's buffer budget grows only when a new thread registers
//! (double buffering: two per thread) or a worker joins (one in-flight
//! slot each), so `created_bytes` is the collector's bounded event-path
//! footprint: `2·threads + workers` buffers, independent of how much the
//! application allocates or how long it runs.
//!
//! When the budget is exhausted — I/O persistently slower than event
//! production — [`BufferPool::acquire`] blocks until a worker returns a
//! buffer. That stall is the system's backpressure (and is measured by the
//! caller via [`sword_metrics::FlushCounters::add_stall`]); the
//! alternative, allocating past the budget, would break the paper's
//! bounded-memory claim exactly when the run can least afford it.

use parking_lot::{Condvar, Mutex};

/// A bounded pool of equally-sized byte buffers.
#[derive(Debug)]
pub(crate) struct BufferPool {
    buffer_bytes: usize,
    state: Mutex<PoolState>,
    available: Condvar,
}

#[derive(Debug)]
struct PoolState {
    free: Vec<Vec<u8>>,
    /// Buffers handed out over the pool's lifetime (free + in use).
    created: usize,
    /// Budget: `acquire` blocks rather than allocate past this.
    budget: usize,
    /// Acquires that had to block at the budget — the backpressure
    /// *event* count (stall *time* is measured by the caller).
    stalls: u64,
}

impl BufferPool {
    /// A pool of `buffer_bytes`-capacity buffers with an initial budget of
    /// `budget` buffers (raise it with [`BufferPool::grow_budget`]).
    pub fn new(buffer_bytes: usize, budget: usize) -> Self {
        BufferPool {
            buffer_bytes: buffer_bytes.max(1),
            state: Mutex::new(PoolState { free: Vec::new(), created: 0, budget, stalls: 0 }),
            available: Condvar::new(),
        }
    }

    /// Raises the buffer budget by `extra` (a new thread or worker
    /// registering its share).
    pub fn grow_budget(&self, extra: usize) {
        self.state.lock().budget += extra;
        self.available.notify_all();
    }

    /// Takes a drained buffer, allocating only while under budget;
    /// otherwise blocks until [`BufferPool::release`] returns one.
    pub fn acquire(&self) -> Vec<u8> {
        let mut state = self.state.lock();
        let mut stalled = false;
        loop {
            if let Some(buf) = state.free.pop() {
                return buf;
            }
            if state.created < state.budget {
                state.created += 1;
                return Vec::with_capacity(self.buffer_bytes);
            }
            if !stalled {
                stalled = true;
                state.stalls += 1;
            }
            self.available.wait(&mut state);
        }
    }

    /// Returns a buffer to the pool (cleared, capacity kept).
    pub fn release(&self, mut buf: Vec<u8>) {
        buf.clear();
        let mut state = self.state.lock();
        state.free.push(buf);
        drop(state);
        self.available.notify_one();
    }

    /// Total bytes of buffer capacity ever handed out — the pool's
    /// contribution to the collector's bounded-memory accounting. Counts
    /// buffers currently held by threads and in flight, not just spares.
    pub fn created_bytes(&self) -> u64 {
        (self.state.lock().created * self.buffer_bytes) as u64
    }

    /// Buffers handed out over the pool's lifetime.
    #[cfg(test)]
    pub fn created(&self) -> usize {
        self.state.lock().created
    }

    /// Pool occupancy for the metrics registry: (drained spares waiting,
    /// buffers created, budget).
    pub fn occupancy(&self) -> (usize, usize, usize) {
        let state = self.state.lock();
        (state.free.len(), state.created, state.budget)
    }

    /// Acquires that blocked at the budget (backpressure stall events).
    pub fn stalls(&self) -> u64 {
        self.state.lock().stalls
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn acquire_allocates_under_budget_then_recycles() {
        let pool = BufferPool::new(64, 2);
        let a = pool.acquire();
        let b = pool.acquire();
        assert_eq!(pool.created(), 2);
        assert_eq!(a.capacity(), 64);
        pool.release(a);
        let c = pool.acquire();
        assert_eq!(pool.created(), 2, "recycled, not allocated");
        assert_eq!(c.capacity(), 64);
        pool.release(b);
        pool.release(c);
        assert_eq!(pool.created_bytes(), 128);
    }

    #[test]
    fn release_clears_contents_but_keeps_capacity() {
        let pool = BufferPool::new(128, 1);
        let mut buf = pool.acquire();
        buf.extend_from_slice(&[1, 2, 3]);
        pool.release(buf);
        let buf = pool.acquire();
        assert!(buf.is_empty());
        assert_eq!(buf.capacity(), 128);
    }

    #[test]
    fn acquire_blocks_at_budget_until_release() {
        let pool = Arc::new(BufferPool::new(32, 1));
        let held = pool.acquire();
        let p = Arc::clone(&pool);
        let waiter = std::thread::spawn(move || p.acquire());
        // The waiter must be blocked, not allocating past the budget.
        std::thread::sleep(Duration::from_millis(30));
        assert!(!waiter.is_finished(), "acquire must block at the budget");
        pool.release(held);
        waiter.join().unwrap();
        assert_eq!(pool.created(), 1);
    }

    #[test]
    fn grow_budget_unblocks_waiters() {
        let pool = Arc::new(BufferPool::new(32, 1));
        let _held = pool.acquire();
        let p = Arc::clone(&pool);
        let waiter = std::thread::spawn(move || p.acquire());
        std::thread::sleep(Duration::from_millis(30));
        assert!(!waiter.is_finished());
        pool.grow_budget(1);
        waiter.join().unwrap();
        assert_eq!(pool.created(), 2);
    }

    #[test]
    fn blocked_acquire_stall_accounting_is_monotone_and_nonzero() {
        // Mirrors the collector's push_event pattern: time each acquire
        // that hits the budget and feed it to FlushCounters::add_stall.
        // The counter must be non-zero after the first real stall and
        // strictly monotone across rounds — a regression to zero or a
        // plateau means backpressure is no longer being measured.
        let pool = Arc::new(BufferPool::new(32, 2));
        let counters = sword_metrics::FlushCounters::default();
        let mut last_stall = 0u64;
        for round in 0..3 {
            let held = (pool.acquire(), pool.acquire());
            let p = Arc::clone(&pool);
            let waiter = std::thread::spawn(move || {
                let start = std::time::Instant::now();
                let buf = p.acquire();
                (buf, start.elapsed().as_nanos() as u64)
            });
            // Give the waiter time to actually block at the budget.
            std::thread::sleep(Duration::from_millis(20));
            pool.release(held.0);
            let (buf, nanos) = waiter.join().unwrap();
            counters.add_stall(nanos);
            let snap = counters.snapshot();
            assert!(snap.stall_nanos > 0, "round {round}: stall not recorded");
            assert!(
                snap.stall_nanos > last_stall,
                "round {round}: stall time must grow ({} -> {})",
                last_stall,
                snap.stall_nanos
            );
            last_stall = snap.stall_nanos;
            pool.release(held.1);
            pool.release(buf);
            assert_eq!(pool.created(), 2, "round {round}: blocked, never over budget");
            assert_eq!(
                pool.stalls(),
                round as u64 + 1,
                "each blocked acquire counts one stall event"
            );
        }
        // Each blocked round waited ~20ms; the accumulated stall must be
        // in that order of magnitude, not a timer artifact.
        assert!(last_stall >= 3 * 10_000_000, "total stall {last_stall}ns implausibly small");
    }

    #[test]
    fn concurrent_acquire_release_stays_within_budget() {
        let pool = Arc::new(BufferPool::new(16, 8));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let pool = Arc::clone(&pool);
                s.spawn(move || {
                    for i in 0..200u32 {
                        let mut buf = pool.acquire();
                        buf.extend_from_slice(&i.to_le_bytes());
                        pool.release(buf);
                    }
                });
            }
        });
        assert!(pool.created() <= 8, "created {} > budget", pool.created());
    }
}
