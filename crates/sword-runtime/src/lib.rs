//! The SWORD online collector (§III-A of the paper).
//!
//! Implements [`sword_ompsim::Tool`]: every instrumented access and mutex
//! event is appended to a *bounded*, per-thread event buffer. When the
//! buffer reaches its event capacity (25,000 in the paper), its encoded
//! bytes are handed to a background writer thread, which compresses them
//! into framed blocks and appends to the thread's log file —
//! asynchronously, so worker threads never block on the file system and,
//! in particular, never wait for each other.
//!
//! Alongside the log, each thread accumulates its barrier-interval table
//! (Table I): a row is closed at every barrier crossing and at region
//! exit, carrying the byte range of the interval's events in the
//! uncompressed log stream. At `program_end` the collector drains the
//! writer, then writes the per-thread meta files and the session-wide
//! region table.
//!
//! Total collector memory is **bounded and independent of the application
//! footprint**: `N × (buffer + auxiliary)` for `N` threads — the paper's
//! `N × (B + C)` formula with `B + C ≈ 3.3 MB`. The measured equivalent is
//! exposed via [`SwordCollector::tool_memory_bytes`], and
//! [`paper_model_bytes`] evaluates the paper's formula for node-scale
//! placement experiments.

#![forbid(unsafe_code)]

mod collector;
mod pool;
mod thread_log;

pub use collector::{run_collected, SwordCollector, SwordConfig, SwordStats};
pub use thread_log::PAPER_BUFFER_EVENTS;

/// The paper's per-thread memory constant: 2 MB buffer + 1.3 MB auxiliary
/// (OMPT and thread-local storage) ≈ 3.3 MB.
pub const PAPER_BYTES_PER_THREAD: u64 = (33 << 20) / 10;

/// The paper's total-memory formula `N × (B + C)` at paper scale.
pub fn paper_model_bytes(threads: u64) -> u64 {
    threads * PAPER_BYTES_PER_THREAD
}

#[cfg(test)]
mod model_tests {
    use super::*;

    #[test]
    fn paper_formula() {
        // 24 threads ≈ 79 MB — matches §III-A's "3.3 MB per thread".
        let b = paper_model_bytes(24);
        assert!(b > 79_000_000 && b < 84_000_000, "{b}");
    }
}
