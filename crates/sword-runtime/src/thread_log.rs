//! Per-thread collection state: the bounded event buffer and the
//! barrier-interval bookkeeping behind each thread's meta-data file.

use sword_ompsim::ThreadContext;
use sword_trace::{Event, EventEncoder, MetaRecord};

/// The paper's tuned buffer capacity: 25,000 events (§III-A, chosen to
/// keep the buffer within L3).
pub const PAPER_BUFFER_EVENTS: usize = 25_000;

/// Upper bound on one encoded event (tag + size varint + two full
/// varints), used to size the byte buffer once up front so the hot path
/// never reallocates.
const MAX_EVENT_BYTES: usize = 24;

/// A barrier interval currently being collected.
#[derive(Clone, Debug)]
pub(crate) struct OpenInterval {
    pub pid: u64,
    pub ppid: Option<u64>,
    pub bid: u32,
    pub offset: u64,
    pub span: u64,
    pub level: u32,
    pub data_begin: u64,
}

/// One thread's collection state. Owned by the collector, driven by
/// callbacks arriving on that thread.
pub(crate) struct ThreadLog {
    buffer: Vec<u8>,
    buffer_events: usize,
    capacity_events: usize,
    encoder: EventEncoder,
    /// Uncompressed log bytes already handed to the writer.
    flushed: u64,
    open: Option<OpenInterval>,
    pub meta: Vec<MetaRecord>,
    pub events_total: u64,
    pub flushes: u64,
}

impl ThreadLog {
    pub fn new(capacity_events: usize) -> Self {
        assert!(capacity_events > 0);
        ThreadLog {
            buffer: Vec::with_capacity(capacity_events * MAX_EVENT_BYTES),
            buffer_events: 0,
            capacity_events,
            encoder: EventEncoder::new(),
            flushed: 0,
            open: None,
            meta: Vec::new(),
            events_total: 0,
            flushes: 0,
        }
    }

    /// Uncompressed log offset of the next byte to be written.
    pub fn offset(&self) -> u64 {
        self.flushed + self.buffer.len() as u64
    }

    /// Capacity of the byte buffer (bounded-memory accounting).
    pub fn buffer_capacity_bytes(&self) -> usize {
        self.buffer.capacity()
    }

    /// Opens a new barrier interval described by the thread context.
    /// Resets the encoder so the interval's byte range decodes standalone.
    pub fn open_interval(&mut self, ctx: &ThreadContext<'_>) {
        debug_assert!(self.open.is_none(), "interval already open");
        let pair = ctx.label.last().expect("worker label has a pair");
        self.open = Some(OpenInterval {
            pid: ctx.region,
            ppid: ctx.parent_region,
            bid: ctx.bid,
            offset: pair.offset,
            span: pair.span,
            level: ctx.level,
            data_begin: self.offset(),
        });
        self.encoder.reset();
    }

    /// Closes the open interval, emitting its Table-I row.
    pub fn close_interval(&mut self) {
        let open = self.open.take().expect("no interval open");
        let end = self.offset();
        self.meta.push(MetaRecord {
            pid: open.pid,
            ppid: open.ppid,
            bid: open.bid,
            offset: open.offset,
            span: open.span,
            level: open.level,
            data_begin: open.data_begin,
            size: end - open.data_begin,
        });
    }

    /// `true` when an interval is being collected.
    pub fn interval_open(&self) -> bool {
        self.open.is_some()
    }

    /// Appends one event; returns the filled buffer when it reached
    /// capacity (the caller ships it to the writer).
    pub fn push(&mut self, event: &Event) -> Option<Vec<u8>> {
        self.encoder.encode(event, &mut self.buffer);
        self.buffer_events += 1;
        self.events_total += 1;
        if self.buffer_events >= self.capacity_events {
            Some(self.take_buffer())
        } else {
            None
        }
    }

    /// Takes the current buffer contents for flushing (empty → `None`).
    pub fn drain(&mut self) -> Option<Vec<u8>> {
        if self.buffer.is_empty() {
            None
        } else {
            Some(self.take_buffer())
        }
    }

    fn take_buffer(&mut self) -> Vec<u8> {
        self.flushed += self.buffer.len() as u64;
        self.buffer_events = 0;
        self.flushes += 1;
        // Replace with an equally-sized buffer so capacity (and thus the
        // memory bound) is stable across flushes.
        std::mem::replace(
            &mut self.buffer,
            Vec::with_capacity(self.capacity_events * MAX_EVENT_BYTES),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sword_trace::{AccessKind, MemAccess};

    fn access(addr: u64) -> Event {
        Event::Access(MemAccess::new(addr, 8, AccessKind::Write, 1))
    }

    #[test]
    fn buffer_flushes_at_capacity() {
        let mut log = ThreadLog::new(10);
        for i in 0..9 {
            assert!(log.push(&access(i * 8)).is_none());
        }
        let flushed = log.push(&access(72)).expect("10th event flushes");
        assert!(!flushed.is_empty());
        assert_eq!(log.flushes, 1);
        assert_eq!(log.events_total, 10);
        assert_eq!(log.offset(), flushed.len() as u64);
        // Buffer restarts empty but with the same capacity bound.
        assert!(log.drain().is_none());
    }

    #[test]
    fn drain_returns_partial_buffer() {
        let mut log = ThreadLog::new(100);
        log.push(&access(0));
        log.push(&access(8));
        let bytes = log.drain().unwrap();
        assert!(!bytes.is_empty());
        assert!(log.drain().is_none());
        assert_eq!(log.offset(), bytes.len() as u64);
    }

    #[test]
    fn offsets_continue_across_flushes() {
        let mut log = ThreadLog::new(4);
        let mut total = 0u64;
        for i in 0..10 {
            if let Some(b) = log.push(&access(i)) {
                total += b.len() as u64;
                assert_eq!(log.offset(), total);
            }
        }
        if let Some(b) = log.drain() {
            total += b.len() as u64;
        }
        assert_eq!(log.offset(), total);
    }

    #[test]
    fn capacity_is_stable_after_flush() {
        let mut log = ThreadLog::new(5);
        let before = log.buffer_capacity_bytes();
        for i in 0..25 {
            log.push(&access(i));
        }
        assert_eq!(log.buffer_capacity_bytes(), before, "bounded memory");
        assert_eq!(log.flushes, 5);
    }
}
