//! Per-thread collection state: the bounded event buffer and the
//! barrier-interval bookkeeping behind each thread's meta-data file.

use sword_obs::ThreadJournal;
use sword_ompsim::ThreadContext;
use sword_trace::{Event, EventEncoder, MetaRecord};

/// The paper's tuned buffer capacity: 25,000 events (§III-A, chosen to
/// keep the buffer within L3).
pub const PAPER_BUFFER_EVENTS: usize = 25_000;

/// Upper bound on one encoded event (tag + size varint + two full
/// varints), used to size the byte buffer once up front so the hot path
/// never reallocates.
pub(crate) const MAX_EVENT_BYTES: usize = 24;

/// A barrier interval currently being collected.
#[derive(Clone, Debug)]
pub(crate) struct OpenInterval {
    pub pid: u64,
    pub ppid: Option<u64>,
    pub bid: u32,
    pub offset: u64,
    pub span: u64,
    pub level: u32,
    pub data_begin: u64,
}

/// One thread's collection state. Owned by the collector, driven by
/// callbacks arriving on that thread.
pub(crate) struct ThreadLog {
    buffer: Vec<u8>,
    buffer_events: usize,
    capacity_events: usize,
    encoder: EventEncoder,
    /// Uncompressed log bytes already handed to the writer.
    flushed: u64,
    open: Option<OpenInterval>,
    pub meta: Vec<MetaRecord>,
    pub events_total: u64,
    pub flushes: u64,
    /// Observability recorder for this app thread (`--obs` runs only).
    /// Records only at flush boundaries, never per event.
    pub obs: Option<ThreadJournal>,
}

impl ThreadLog {
    /// A log that owns its own buffer (tests and pool-less callers).
    #[cfg(test)]
    pub fn new(capacity_events: usize) -> Self {
        assert!(capacity_events > 0);
        Self::with_buffer(capacity_events, Vec::with_capacity(capacity_events * MAX_EVENT_BYTES))
    }

    /// A log filling `initial` (a pool buffer); subsequent buffers arrive
    /// via [`ThreadLog::swap_buffer`].
    pub fn with_buffer(capacity_events: usize, initial: Vec<u8>) -> Self {
        assert!(capacity_events > 0);
        ThreadLog {
            buffer: initial,
            buffer_events: 0,
            capacity_events,
            encoder: EventEncoder::new(),
            flushed: 0,
            open: None,
            meta: Vec::new(),
            events_total: 0,
            flushes: 0,
            obs: None,
        }
    }

    /// Uncompressed log offset of the next byte to be written.
    pub fn offset(&self) -> u64 {
        self.flushed + self.buffer.len() as u64
    }

    /// Capacity of the byte buffer (the pool owns bounded-memory
    /// accounting now; this remains for tests).
    #[cfg(test)]
    pub fn buffer_capacity_bytes(&self) -> usize {
        self.buffer.capacity()
    }

    /// Opens a new barrier interval described by the thread context.
    /// Resets the encoder so the interval's byte range decodes standalone.
    pub fn open_interval(&mut self, ctx: &ThreadContext<'_>) {
        debug_assert!(self.open.is_none(), "interval already open");
        let pair = ctx.label.last().expect("worker label has a pair");
        self.open = Some(OpenInterval {
            pid: ctx.region,
            ppid: ctx.parent_region,
            bid: ctx.bid,
            offset: pair.offset,
            span: pair.span,
            level: ctx.level,
            data_begin: self.offset(),
        });
        self.encoder.reset();
    }

    /// Closes the open interval, emitting its Table-I row.
    pub fn close_interval(&mut self) {
        let open = self.open.take().expect("no interval open");
        let end = self.offset();
        self.meta.push(MetaRecord {
            pid: open.pid,
            ppid: open.ppid,
            bid: open.bid,
            offset: open.offset,
            span: open.span,
            level: open.level,
            data_begin: open.data_begin,
            size: end - open.data_begin,
        });
    }

    /// `true` when an interval is being collected.
    pub fn interval_open(&self) -> bool {
        self.open.is_some()
    }

    /// Appends one event; returns `true` when the buffer reached capacity
    /// (the caller acquires a drained pool buffer and calls
    /// [`ThreadLog::swap_buffer`]).
    #[must_use = "a full buffer must be swapped out and shipped"]
    pub fn push(&mut self, event: &Event) -> bool {
        self.encoder.encode(event, &mut self.buffer);
        self.buffer_events += 1;
        self.events_total += 1;
        self.buffer_events >= self.capacity_events
    }

    /// Double-buffer handoff: installs the drained `fresh` buffer and
    /// returns the filled one for shipping.
    pub fn swap_buffer(&mut self, fresh: Vec<u8>) -> Vec<u8> {
        debug_assert!(fresh.is_empty(), "swap target must be drained");
        self.flushed += self.buffer.len() as u64;
        self.buffer_events = 0;
        self.flushes += 1;
        std::mem::replace(&mut self.buffer, fresh)
    }

    /// Takes the current buffer contents for the final flush (empty →
    /// `None`). The replacement is an empty non-allocating `Vec`: drains
    /// happen once, at end of run, after which the log only serves
    /// metadata reads.
    pub fn drain(&mut self) -> Option<Vec<u8>> {
        if self.buffer.is_empty() {
            None
        } else {
            Some(self.swap_buffer(Vec::new()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sword_trace::{AccessKind, MemAccess};

    fn access(addr: u64) -> Event {
        Event::Access(MemAccess::new(addr, 8, AccessKind::Write, 1))
    }

    #[test]
    fn buffer_flushes_at_capacity() {
        let mut log = ThreadLog::new(10);
        for i in 0..9 {
            assert!(!log.push(&access(i * 8)));
        }
        assert!(log.push(&access(72)), "10th event fills the buffer");
        let fresh = Vec::with_capacity(log.buffer_capacity_bytes());
        let flushed = log.swap_buffer(fresh);
        assert!(!flushed.is_empty());
        assert_eq!(log.flushes, 1);
        assert_eq!(log.events_total, 10);
        assert_eq!(log.offset(), flushed.len() as u64);
        // Buffer restarts empty after the swap.
        assert!(log.drain().is_none());
    }

    #[test]
    fn drain_returns_partial_buffer() {
        let mut log = ThreadLog::new(100);
        assert!(!log.push(&access(0)));
        assert!(!log.push(&access(8)));
        let bytes = log.drain().unwrap();
        assert!(!bytes.is_empty());
        assert!(log.drain().is_none());
        assert_eq!(log.offset(), bytes.len() as u64);
    }

    #[test]
    fn offsets_continue_across_flushes() {
        let mut log = ThreadLog::new(4);
        let cap = log.buffer_capacity_bytes();
        let mut total = 0u64;
        for i in 0..10 {
            if log.push(&access(i)) {
                let b = log.swap_buffer(Vec::with_capacity(cap));
                total += b.len() as u64;
                assert_eq!(log.offset(), total);
            }
        }
        if let Some(b) = log.drain() {
            total += b.len() as u64;
        }
        assert_eq!(log.offset(), total);
    }

    #[test]
    fn capacity_is_stable_across_swaps() {
        let mut log = ThreadLog::new(5);
        let before = log.buffer_capacity_bytes();
        // Two buffers rotating, exactly as the pool drives double
        // buffering: swap in the spare, drain the filled one, repeat.
        let mut spare = Vec::with_capacity(before);
        for i in 0..25 {
            if log.push(&access(i)) {
                let mut filled = log.swap_buffer(std::mem::take(&mut spare));
                filled.clear();
                spare = filled;
            }
        }
        assert_eq!(log.buffer_capacity_bytes(), before, "bounded memory");
        assert_eq!(log.flushes, 5);
    }
}
