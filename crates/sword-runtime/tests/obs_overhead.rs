//! Observability must not break the bounded-overhead claim: a collector
//! run with full instrumentation (journal + registry sources + periodic
//! snapshots) must stay within 5% of the uninstrumented run's event
//! throughput on the bench workload.
//!
//! The margin holds by construction — the journal records only at flush
//! boundaries (once per `buffer_events` events) and registry sources are
//! read-on-demand closures — so this test pins the design, comparing
//! best-of-N throughputs to shrug off scheduler noise.

use std::time::Instant;

use sword_obs::Obs;
use sword_ompsim::SimConfig;
use sword_runtime::{run_collected, SwordConfig};

const THREADS: usize = 4;
const EVENTS_PER_THREAD: u64 = 25_000;
const ROUNDS: usize = 5;

fn throughput(instrumented: bool, tag: &str) -> f64 {
    let dir = std::env::temp_dir().join(format!("sword-obs-overhead-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = SwordConfig::new(&dir).buffer_events(2048);
    if instrumented {
        config = config.with_obs(Obs::new());
    }
    let total = EVENTS_PER_THREAD * THREADS as u64;
    let start = Instant::now();
    let (_, stats) = run_collected(config, SimConfig::default(), |sim| {
        let a = sim.alloc::<u64>(total, 0);
        sim.run(|ctx| {
            ctx.parallel(THREADS, |w| {
                w.for_static(0..total, |i| {
                    w.write(&a, i, i);
                });
            });
        });
    })
    .expect("collection succeeds");
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(stats.events, total);
    std::fs::remove_dir_all(&dir).ok();
    stats.events as f64 / secs
}

#[test]
fn obs_overhead_within_five_percent() {
    // Warm up allocators, code paths, and the filesystem cache.
    throughput(false, "warm");
    throughput(true, "warm-obs");
    let mut best_plain = 0.0f64;
    let mut best_obs = 0.0f64;
    // Interleave rounds so drift (thermal, background load) hits both
    // sides equally; compare bests, the standard noise-robust estimator.
    for i in 0..ROUNDS {
        best_plain = best_plain.max(throughput(false, &format!("plain{i}")));
        best_obs = best_obs.max(throughput(true, &format!("obs{i}")));
    }
    assert!(
        best_obs >= 0.95 * best_plain,
        "instrumented throughput {best_obs:.0} ev/s fell more than 5% below \
         uninstrumented {best_plain:.0} ev/s"
    );
}
