//! Observability must not break the bounded-overhead claim: a collector
//! run with full instrumentation (journal + registry sources + periodic
//! snapshots) must stay within 5% of the uninstrumented run's event
//! throughput on the bench workload — and so must a run that additionally
//! serves the embedded telemetry exporter to a live scraper.
//!
//! The margin holds by construction — the journal records only at flush
//! boundaries (once per `buffer_events` events), registry sources are
//! read-on-demand closures, and the exporter reads snapshots outside the
//! recording hot path — so this test pins the design, comparing
//! best-of-N throughputs to shrug off scheduler noise.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sword_obs::Obs;
use sword_obs_http::{http_get, ServerConfig, TelemetryHandles, TelemetryServer};
use sword_ompsim::SimConfig;
use sword_runtime::{run_collected, SwordConfig};

const THREADS: usize = 4;
const EVENTS_PER_THREAD: u64 = 25_000;
const ROUNDS: usize = 5;

/// Pause between scrapes. Aggressive next to a stock Prometheus
/// interval (seconds), yet periodic: on a single-core runner one scrape
/// round costs ~600µs of stolen collector time (client and server share
/// the core with the run), so the cadence — not the exporter's own work
/// — sets the floor the 5% bound is checked against.
const SCRAPE_INTERVAL: Duration = Duration::from_millis(25);

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// No observability attached.
    Plain,
    /// Journal + registry wired in.
    Obs,
    /// Observability plus the HTTP exporter, scraped during the run.
    ObsScraped,
}

fn throughput(mode: Mode, tag: &str) -> f64 {
    let dir = std::env::temp_dir().join(format!("sword-obs-overhead-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = SwordConfig::new(&dir).buffer_events(2048);
    let obs = (mode != Mode::Plain).then(Obs::new);
    if let Some(obs) = &obs {
        config = config.with_obs(obs.clone());
    }
    let server = (mode == Mode::ObsScraped).then(|| {
        TelemetryServer::start(
            ServerConfig::bind("127.0.0.1:0"),
            TelemetryHandles::new(obs.clone().expect("scraped implies obs")),
        )
        .expect("exporter")
    });
    let stop = Arc::new(AtomicBool::new(false));
    let scraper = server.as_ref().map(|srv| {
        let addr = srv.local_addr().to_string();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut hits = 0u64;
            while !stop.load(Ordering::Relaxed) {
                if http_get(&addr, "/metrics", Duration::from_millis(500)).is_ok() {
                    hits += 1;
                }
                // Periodic, like a real scrape loop; a busy loop would
                // measure core stealing on small CI runners instead.
                std::thread::sleep(SCRAPE_INTERVAL);
            }
            hits
        })
    });
    let total = EVENTS_PER_THREAD * THREADS as u64;
    let start = Instant::now();
    let (_, stats) = run_collected(config, SimConfig::default(), |sim| {
        let a = sim.alloc::<u64>(total, 0);
        sim.run(|ctx| {
            ctx.parallel(THREADS, |w| {
                w.for_static(0..total, |i| {
                    w.write(&a, i, i);
                });
            });
        });
    })
    .expect("collection succeeds");
    let secs = start.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    if let Some(h) = scraper {
        assert!(h.join().expect("scraper thread") > 0, "scraper never reached the exporter");
    }
    if let Some(srv) = server {
        srv.shutdown();
    }
    assert_eq!(stats.events, total);
    std::fs::remove_dir_all(&dir).ok();
    stats.events as f64 / secs
}

#[test]
fn obs_overhead_within_five_percent() {
    // Warm up allocators, code paths, and the filesystem cache.
    throughput(Mode::Plain, "warm");
    throughput(Mode::Obs, "warm-obs");
    throughput(Mode::ObsScraped, "warm-scraped");
    let mut best_plain = 0.0f64;
    let mut best_obs = 0.0f64;
    let mut best_scraped = 0.0f64;
    // Interleave rounds so drift (thermal, background load) hits all
    // sides equally; compare bests, the standard noise-robust estimator.
    for i in 0..ROUNDS {
        best_plain = best_plain.max(throughput(Mode::Plain, &format!("plain{i}")));
        best_obs = best_obs.max(throughput(Mode::Obs, &format!("obs{i}")));
        best_scraped = best_scraped.max(throughput(Mode::ObsScraped, &format!("scraped{i}")));
    }
    assert!(
        best_obs >= 0.95 * best_plain,
        "instrumented throughput {best_obs:.0} ev/s fell more than 5% below \
         uninstrumented {best_plain:.0} ev/s"
    );
    assert!(
        best_scraped >= 0.95 * best_plain,
        "scraped-exporter throughput {best_scraped:.0} ev/s fell more than 5% below \
         uninstrumented {best_plain:.0} ev/s"
    );
}
