//! Trace substrate for SWORD: what the dynamic phase writes and the offline
//! phase reads.
//!
//! Per §III-A of the paper, each thread maintains two files:
//!
//! * a **log file** — compressed frames of binary-encoded events (memory
//!   accesses and mutex operations), written whenever the thread's bounded
//!   buffer fills;
//! * a **meta-data file** — one record per *barrier interval* (Table I):
//!   parallel-region id, parent region id, barrier id, the thread's
//!   offset-span pair, nesting level, and the byte range of the interval's
//!   events within the (uncompressed) log stream.
//!
//! A session directory additionally holds a **region table** mapping each
//! parallel region to its parent and to the forking thread's offset-span
//! label (so full labels can be reconstructed by chaining), and a
//! **program-counter table** mapping interned PC ids back to `file:line`
//! for race reports.

#![forbid(unsafe_code)]

pub mod encode;
pub mod event;
pub mod log;
pub mod meta;
pub mod pc;
pub mod poll;
pub mod session;
pub mod source;

pub use encode::CodecError;
pub use encode::{EventDecoder, EventEncoder};
pub use event::{AccessKind, Event, MemAccess, MutexId, PcId, RegionId, ThreadId};
pub use log::{LogReader, LogWriter};
pub use meta::{read_meta, read_regions, write_meta, write_regions, MetaParseError};
pub use meta::{MetaRecord, RegionRecord};
pub use pc::{PcTable, SourceLoc};
pub use poll::{SessionDelta, SessionPoller};
pub use session::{LiveStatus, SessionDir};
pub use source::{ImageCache, LogSource, MappedLog, ReadMode, SourceStats, StreamSource};
