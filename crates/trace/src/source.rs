//! Log sources: how the offline phase gets at a thread's uncompressed
//! event bytes.
//!
//! Two implementations sit behind one [`LogSource`] trait:
//!
//! * [`MappedLog`] — the whole compressed log file held as one immutable
//!   in-memory image with a frame index built from a header-only scan.
//!   Range reads hand out *borrowed* slices: stored frames are served
//!   straight from the image with no copy at all, compressed frames are
//!   decompressed into one recycled per-source arena
//!   ([`sword_compress::FrameView::decode_into`]) and served from there.
//!   Random access is free, so a reader pool never reopens a mapped log.
//!   The trait boundary is exactly where a real `mmap(2)` image would
//!   slot in; this crate forbids `unsafe`, so the image is one
//!   `fs::read` — same single allocation, same zero-copy reads off it.
//! * [`StreamSource`] — the buffered-read fallback wrapping
//!   [`LogReader`]: forward-only streaming that holds just the frames
//!   covering the current range, for logs too large to hold (or when
//!   `--read-mode buffered` is forced). Slices borrow the streaming
//!   window.
//!
//! Both implementations yield byte-identical range contents and degrade
//! to clean errors on torn or truncated logs; the fuzz fault campaign
//! holds them to identical verdicts-or-error behavior.

use std::collections::HashMap;
use std::fs;
use std::io::{self, Read};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use sword_compress::parse_frame;

use crate::log::LogReader;

/// How the offline analyzer reads per-thread logs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReadMode {
    /// Whole-file immutable image, zero-copy reads ([`MappedLog`]).
    #[default]
    Mapped,
    /// Forward-streaming buffered reads ([`StreamSource`]).
    Buffered,
}

impl ReadMode {
    /// Parses the CLI spelling (`mapped` / `buffered`).
    pub fn parse(s: &str) -> Option<ReadMode> {
        match s {
            "mapped" => Some(ReadMode::Mapped),
            "buffered" => Some(ReadMode::Buffered),
            _ => None,
        }
    }
}

/// Shared counters of log-source activity, updated by every source that
/// was opened with a clone of the same stats handle. The offline layer
/// surfaces these as registry rows (bytes mapped, arena reuse).
#[derive(Clone, Debug, Default)]
pub struct SourceStats(Arc<SourceStatsInner>);

#[derive(Debug, Default)]
struct SourceStatsInner {
    bytes_mapped: AtomicU64,
    arena_reuses: AtomicU64,
    arena_allocs: AtomicU64,
}

impl SourceStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total log bytes held as in-memory images across all opens.
    pub fn bytes_mapped(&self) -> u64 {
        self.0.bytes_mapped.load(Ordering::Relaxed)
    }

    /// Frame decompressions that landed in an already-sized arena
    /// (no allocation).
    pub fn arena_reuses(&self) -> u64 {
        self.0.arena_reuses.load(Ordering::Relaxed)
    }

    /// Frame decompressions that had to grow their arena.
    pub fn arena_allocs(&self) -> u64 {
        self.0.arena_allocs.load(Ordering::Relaxed)
    }

    fn add_mapped(&self, bytes: u64) {
        self.0.bytes_mapped.fetch_add(bytes, Ordering::Relaxed);
    }

    fn count_decode(&self, reused: bool) {
        let cell = if reused { &self.0.arena_reuses } else { &self.0.arena_allocs };
        cell.fetch_add(1, Ordering::Relaxed);
    }
}

/// A source of uncompressed log bytes, addressed like the meta-data file
/// addresses them: by offset into the uncompressed stream.
pub trait LogSource {
    /// Streams the uncompressed range `[begin, begin + len)` to `sink` as
    /// one or more in-order borrowed slices. `chunk_bytes` caps the slice
    /// size where the implementation buffers (the streaming fallback);
    /// zero-copy implementations may hand out frame-sized slices.
    fn read_range_with(
        &mut self,
        begin: u64,
        len: u64,
        chunk_bytes: usize,
        sink: &mut dyn FnMut(&[u8]) -> io::Result<()>,
    ) -> io::Result<()>;

    /// Oldest offset still readable. Forward-only sources advance this as
    /// they stream (a request before it needs a reopen); random-access
    /// sources always return 0.
    fn position(&self) -> u64;
}

/// One frame of a [`MappedLog`] image.
#[derive(Clone, Copy, Debug)]
struct FrameEntry {
    /// Uncompressed offset of the frame's first byte.
    raw_begin: u64,
    /// Uncompressed length.
    raw_len: u32,
    /// Payload byte range within the image.
    payload_begin: usize,
    payload_len: u32,
    /// Payload is the block itself (stored frame): serve it zero-copy.
    stored: bool,
}

/// Shared store of loaded log images, keyed by path. Each analysis
/// worker opens its own [`MappedLog`] per thread log (sources are
/// stateful: they hold a private decode arena), but the underlying file
/// image is immutable — sharing it here means a session's logs are read
/// and held once per analysis instead of once per worker, the way a real
/// `mmap(2)` would share pages between readers of one file.
#[derive(Clone, Debug, Default)]
pub struct ImageCache(Arc<Mutex<HashMap<std::path::PathBuf, Arc<Vec<u8>>>>>);

impl ImageCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The image for `path`, loading it on first request. `stats`
    /// charges `bytes_mapped` only on an actual load.
    fn load(&self, path: &Path, stats: &SourceStats) -> io::Result<Arc<Vec<u8>>> {
        let mut map = self.0.lock().expect("image cache lock");
        if let Some(image) = map.get(path) {
            return Ok(Arc::clone(image));
        }
        let image = Arc::new(fs::read(path)?);
        stats.add_mapped(image.len() as u64);
        map.insert(path.to_path_buf(), Arc::clone(&image));
        Ok(image)
    }
}

/// Whole-file immutable log image with zero-copy range reads.
#[derive(Debug)]
pub struct MappedLog {
    /// Backing file, when there is one: lets a live (still-growing) log
    /// remap its appended tail on demand. `None` for fixed images.
    path: Option<std::path::PathBuf>,
    image: Arc<Vec<u8>>,
    index: Vec<FrameEntry>,
    /// Uncompressed length covered by `index` (the valid prefix).
    raw_len: u64,
    /// Image offset where the frame scan stopped (resumes here after a
    /// remap appends more bytes).
    scan_pos: usize,
    /// Why the index scan stopped early, if it did; reads past `raw_len`
    /// reproduce this error — exactly when a streaming reader would first
    /// hit the torn region — instead of failing eagerly at open.
    tail_error: Option<(io::ErrorKind, String)>,
    /// Recycled decompression arena and the frame it currently holds.
    arena: Vec<u8>,
    arena_frame: Option<usize>,
    stats: SourceStats,
}

impl MappedLog {
    /// Maps the log file at `path` into memory and indexes its frames.
    /// The mapping refreshes itself if the file grows (live sessions).
    pub fn open(path: &Path, stats: SourceStats) -> io::Result<MappedLog> {
        let mut log = Self::from_bytes(fs::read(path)?, stats);
        log.path = Some(path.to_path_buf());
        Ok(log)
    }

    /// Like [`MappedLog::open`], but the file image comes from (and is
    /// left in) `cache`: sources opened through the same cache share one
    /// image per file. Only the frame index and decode arena are
    /// per-source.
    pub fn open_cached(
        path: &Path,
        stats: SourceStats,
        cache: &ImageCache,
    ) -> io::Result<MappedLog> {
        let image = cache.load(path, &stats)?;
        let mut log = Self::from_image(image, stats);
        log.path = Some(path.to_path_buf());
        Ok(log)
    }

    /// Builds a mapped log over an already-materialized fixed image.
    pub fn from_bytes(image: Vec<u8>, stats: SourceStats) -> MappedLog {
        stats.add_mapped(image.len() as u64);
        Self::from_image(Arc::new(image), stats)
    }

    fn from_image(image: Arc<Vec<u8>>, stats: SourceStats) -> MappedLog {
        let mut log = MappedLog {
            path: None,
            image,
            index: Vec::new(),
            raw_len: 0,
            scan_pos: 0,
            tail_error: None,
            arena: Vec::new(),
            arena_frame: None,
            stats,
        };
        log.scan();
        log
    }

    /// Extends the frame index over image bytes not yet scanned.
    fn scan(&mut self) {
        self.tail_error = None;
        loop {
            match parse_frame(&self.image[self.scan_pos..]) {
                Ok(None) => break,
                Ok(Some((view, consumed))) => {
                    self.index.push(FrameEntry {
                        raw_begin: self.raw_len,
                        raw_len: view.raw_len as u32,
                        payload_begin: self.scan_pos + consumed - view.payload.len(),
                        payload_len: view.payload.len() as u32,
                        stored: view.stored,
                    });
                    self.raw_len += view.raw_len as u64;
                    self.scan_pos += consumed;
                }
                Err(e) => {
                    self.tail_error = Some((e.kind(), e.to_string()));
                    break;
                }
            }
        }
    }

    /// Appends any bytes the backing file has grown by since the last
    /// (re)map and continues the frame scan over them. A frame that was
    /// torn only because the writer was mid-append completes here.
    fn remap_tail(&mut self) -> io::Result<()> {
        use std::io::{Read as _, Seek, SeekFrom};
        let Some(path) = &self.path else { return Ok(()) };
        let mut f = fs::File::open(path)?;
        // A shared (cached) image stays fixed for its other holders:
        // growing detaches this source onto a private copy.
        let image = Arc::make_mut(&mut self.image);
        let before = image.len();
        f.seek(SeekFrom::Start(before as u64))?;
        f.read_to_end(image)?;
        let grown = image.len() - before;
        if grown == 0 {
            return Ok(());
        }
        self.stats.add_mapped(grown as u64);
        self.scan();
        Ok(())
    }

    /// Total uncompressed bytes addressable through the valid prefix.
    pub fn raw_len(&self) -> u64 {
        self.raw_len
    }

    /// The error a read past the valid prefix reproduces: the indexing
    /// error for a torn image, EOF for a plain short range.
    fn past_end_error(&self, begin: u64, len: u64) -> io::Error {
        match &self.tail_error {
            Some((kind, msg)) => io::Error::new(*kind, msg.clone()),
            None => io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("log ended before range {}..{}", begin, begin + len),
            ),
        }
    }
}

impl LogSource for MappedLog {
    fn read_range_with(
        &mut self,
        begin: u64,
        len: u64,
        _chunk_bytes: usize,
        sink: &mut dyn FnMut(&[u8]) -> io::Result<()>,
    ) -> io::Result<()> {
        if len == 0 {
            return Ok(());
        }
        let end = begin + len;
        if end > self.raw_len {
            self.remap_tail()?;
            if end > self.raw_len {
                return Err(self.past_end_error(begin, len));
            }
        }
        // First frame whose range reaches past `begin`.
        let mut fi = self.index.partition_point(|f| f.raw_begin + f.raw_len as u64 <= begin);
        let mut pos = begin;
        while pos < end {
            let f = self.index[fi];
            let frame_end = f.raw_begin + f.raw_len as u64;
            let lo = (pos - f.raw_begin) as usize;
            let hi = (end.min(frame_end) - f.raw_begin) as usize;
            if f.stored {
                let payload =
                    &self.image[f.payload_begin..f.payload_begin + f.payload_len as usize];
                sink(&payload[lo..hi])?;
            } else {
                if self.arena_frame != Some(fi) {
                    let payload =
                        &self.image[f.payload_begin..f.payload_begin + f.payload_len as usize];
                    let view = sword_compress::FrameView {
                        raw_len: f.raw_len as usize,
                        payload,
                        stored: false,
                    };
                    let cap = self.arena.capacity();
                    view.decode_into(&mut self.arena)?;
                    self.stats.count_decode(cap > 0 && self.arena.capacity() == cap);
                    self.arena_frame = Some(fi);
                }
                sink(&self.arena[lo..hi])?;
            }
            pos = f.raw_begin + hi as u64;
            fi += 1;
        }
        Ok(())
    }

    fn position(&self) -> u64 {
        0 // random access: nothing is ever discarded
    }
}

/// The buffered streaming fallback: a [`LogReader`] behind the
/// [`LogSource`] trait, serving borrowed slices of its forward-moving
/// window in `chunk_bytes` steps.
#[derive(Debug)]
pub struct StreamSource<R: Read> {
    reader: LogReader<R>,
}

impl<R: Read> StreamSource<R> {
    /// Wraps a streaming reader.
    pub fn new(inner: R) -> Self {
        StreamSource { reader: LogReader::new(inner) }
    }
}

impl<R: Read> LogSource for StreamSource<R> {
    fn read_range_with(
        &mut self,
        begin: u64,
        len: u64,
        chunk_bytes: usize,
        sink: &mut dyn FnMut(&[u8]) -> io::Result<()>,
    ) -> io::Result<()> {
        let chunk = chunk_bytes.max(1) as u64;
        let end = begin + len;
        let mut pos = begin;
        while pos < end {
            let take = chunk.min(end - pos);
            sink(self.reader.range_ref(pos, take)?)?;
            pos += take;
        }
        Ok(())
    }

    fn position(&self) -> u64 {
        self.reader.position()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogWriter;

    fn build_log(blocks: &[Vec<u8>]) -> Vec<u8> {
        let mut w = LogWriter::new(Vec::new());
        for b in blocks {
            w.write_block(b).unwrap();
        }
        w.into_inner()
    }

    fn collect(source: &mut dyn LogSource, begin: u64, len: u64, chunk: usize) -> Vec<u8> {
        let mut out = Vec::new();
        source
            .read_range_with(begin, len, chunk, &mut |s| {
                out.extend_from_slice(s);
                Ok(())
            })
            .unwrap();
        out
    }

    /// Repetitive + incompressible blocks: the log mixes compressed and
    /// stored frames, exercising both mapped read paths.
    fn mixed_blocks() -> Vec<Vec<u8>> {
        let mut x = 0xdeadbeefcafef00du64;
        (0..6)
            .map(|i| {
                if i % 2 == 0 {
                    vec![i as u8; 700 + i * 13]
                } else {
                    (0..500 + i * 7)
                        .map(|_| {
                            x = x
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add(1442695040888963407);
                            (x >> 33) as u8
                        })
                        .collect()
                }
            })
            .collect()
    }

    #[test]
    fn mapped_and_streamed_read_identically() {
        let blocks = mixed_blocks();
        let data: Vec<u8> = blocks.concat();
        let log = build_log(&blocks);
        let mut mapped = MappedLog::from_bytes(log.clone(), SourceStats::new());
        let mut streamed = StreamSource::new(&log[..]);
        assert_eq!(mapped.raw_len(), data.len() as u64);
        // Forward ranges crossing frame boundaries, then spot ranges on
        // the mapped source only (it is random-access).
        let total = data.len() as u64;
        for (begin, len) in
            [(0u64, 100u64), (100, 900), (1000, total - 1000), (0, total), (total, 0)]
        {
            let m = collect(&mut mapped, begin, len, 64);
            assert_eq!(m, data[begin as usize..(begin + len) as usize], "mapped {begin}+{len}");
        }
        for (begin, len) in [(0u64, 100u64), (100, 900), (1000, total - 1000)] {
            let s = collect(&mut streamed, begin, len, 64);
            assert_eq!(s, data[begin as usize..(begin + len) as usize], "streamed {begin}+{len}");
        }
        // Backwards is fine for the map, a position() signal for the stream.
        assert_eq!(collect(&mut mapped, 5, 20, 64), data[5..25]);
        assert_eq!(mapped.position(), 0);
        assert!(streamed.position() > 0);
    }

    #[test]
    fn mapped_stored_frames_borrow_the_image() {
        // A single incompressible block: its frame is stored, so a read
        // must not touch the arena at all.
        let mut x = 7u64;
        let noisy: Vec<u8> = (0..2000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x >> 33) as u8
            })
            .collect();
        let log = build_log(std::slice::from_ref(&noisy));
        let stats = SourceStats::new();
        let mut mapped = MappedLog::from_bytes(log, stats.clone());
        assert_eq!(collect(&mut mapped, 10, 500, 64), noisy[10..510]);
        assert_eq!(stats.arena_reuses() + stats.arena_allocs(), 0, "no decompression happened");
        assert!(stats.bytes_mapped() > 0);
    }

    #[test]
    fn arena_recycles_across_frames() {
        let blocks: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 3000]).collect();
        let data: Vec<u8> = blocks.concat();
        let log = build_log(&blocks);
        let stats = SourceStats::new();
        let mut mapped = MappedLog::from_bytes(log, stats.clone());
        assert_eq!(collect(&mut mapped, 0, data.len() as u64, 64), data);
        assert_eq!(stats.arena_reuses() + stats.arena_allocs(), 4, "one decode per frame");
        assert!(stats.arena_reuses() >= 3, "equal-sized frames reuse the arena");
        // Re-reading the last frame costs nothing: it is still decoded.
        let last = data.len() as u64 - 100;
        assert_eq!(collect(&mut mapped, last, 100, 64), data[last as usize..]);
        assert_eq!(stats.arena_reuses() + stats.arena_allocs(), 4);
    }

    #[test]
    fn torn_log_errors_only_when_reached() {
        // Last block is incompressible noise: its frame is stored with a
        // 1000-byte payload, so truncating tears the payload, not a header.
        let mut x = 3u64;
        let noisy: Vec<u8> = (0..1000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x >> 33) as u8
            })
            .collect();
        let blocks = vec![vec![0u8; 1000], vec![1u8; 1000], noisy];
        let mut log = build_log(&blocks);
        let torn = log.len() - 10;
        log.truncate(torn); // tear the last frame's payload
        let mut mapped = MappedLog::from_bytes(log, SourceStats::new());
        // The valid prefix (first two frames) reads fine.
        assert_eq!(mapped.raw_len(), 2000);
        assert_eq!(collect(&mut mapped, 0, 2000, 64), blocks[..2].concat());
        // Touching the torn frame reproduces the indexing error.
        let err = mapped.read_range_with(1500, 1000, 64, &mut |_| Ok(())).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn range_past_eof_is_clean_eof() {
        let log = build_log(&[vec![1u8; 100]]);
        let mut mapped = MappedLog::from_bytes(log, SourceStats::new());
        let err = mapped.read_range_with(50, 100, 64, &mut |_| Ok(())).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert!(err.to_string().contains("50..150"), "{err}");
    }

    #[test]
    fn stream_source_chunks_by_cap() {
        let data: Vec<u8> = (0..255u8).cycle().take(5000).collect();
        let log = build_log(&data.chunks(700).map(|c| c.to_vec()).collect::<Vec<_>>());
        let mut s = StreamSource::new(&log[..]);
        let mut sizes = Vec::new();
        let mut out = Vec::new();
        s.read_range_with(100, 2000, 256, &mut |sl| {
            sizes.push(sl.len());
            out.extend_from_slice(sl);
            Ok(())
        })
        .unwrap();
        assert_eq!(out, data[100..2100]);
        assert!(sizes.iter().all(|&n| n <= 256));
    }
}
