//! The event model shared by the online collector and the offline analyzer.

/// Dense global id of a runtime worker thread. Every worker spawned over
/// the lifetime of a program gets a unique id; each id owns one log file
/// and one meta-data file, exactly as in the paper.
pub type ThreadId = u32;

/// Unique id of a parallel region instance (the paper's `pid`).
pub type RegionId = u64;

/// Id of a mutex / critical-section name / lock variable.
pub type MutexId = u32;

/// Interned program-counter (source location) id; see [`crate::pc::PcTable`].
pub type PcId = u32;

/// Kind of an instrumented memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Plain load.
    Read,
    /// Plain store.
    Write,
    /// Atomic load (cannot race with other atomics).
    AtomicRead,
    /// Atomic store or read-modify-write.
    AtomicWrite,
}

impl AccessKind {
    /// `true` for `Write` and `AtomicWrite`.
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write | AccessKind::AtomicWrite)
    }

    /// `true` for the atomic kinds.
    #[inline]
    pub fn is_atomic(self) -> bool {
        matches!(self, AccessKind::AtomicRead | AccessKind::AtomicWrite)
    }

    /// Compact 2-bit code used by the wire encoding.
    #[inline]
    pub fn code(self) -> u8 {
        match self {
            AccessKind::Read => 0,
            AccessKind::Write => 1,
            AccessKind::AtomicRead => 2,
            AccessKind::AtomicWrite => 3,
        }
    }

    /// Inverse of [`AccessKind::code`].
    #[inline]
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => AccessKind::Read,
            1 => AccessKind::Write,
            2 => AccessKind::AtomicRead,
            3 => AccessKind::AtomicWrite,
            _ => return None,
        })
    }
}

/// One instrumented memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MemAccess {
    /// First byte address.
    pub addr: u64,
    /// Access size in bytes (1, 2, 4, or 8 for scalar accesses).
    pub size: u8,
    /// Load/store/atomic classification.
    pub kind: AccessKind,
    /// Interned source location.
    pub pc: PcId,
}

impl MemAccess {
    /// Convenience constructor.
    pub fn new(addr: u64, size: u8, kind: AccessKind, pc: PcId) -> Self {
        debug_assert!(size > 0);
        MemAccess { addr, size, kind, pc }
    }
}

/// One event in a thread's log stream.
///
/// Region boundaries and barriers are *not* log events: they delimit
/// barrier intervals, which live in the meta-data file (Table I). Mutex
/// operations are in-stream because the offline analyzer replays them to
/// attach the held-lock set to each access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Event {
    /// An instrumented load/store.
    Access(MemAccess),
    /// The thread acquired a mutex (entered `critical`, `omp_set_lock`, …).
    MutexAcquire(MutexId),
    /// The thread released a mutex.
    MutexRelease(MutexId),
}

impl Event {
    /// The access payload, if this is an access event.
    pub fn as_access(&self) -> Option<&MemAccess> {
        match self {
            Event::Access(a) => Some(a),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_codes_roundtrip() {
        for k in
            [AccessKind::Read, AccessKind::Write, AccessKind::AtomicRead, AccessKind::AtomicWrite]
        {
            assert_eq!(AccessKind::from_code(k.code()), Some(k));
        }
        assert_eq!(AccessKind::from_code(4), None);
    }

    #[test]
    fn kind_predicates() {
        assert!(AccessKind::Write.is_write());
        assert!(AccessKind::AtomicWrite.is_write());
        assert!(!AccessKind::Read.is_write());
        assert!(AccessKind::AtomicRead.is_atomic());
        assert!(!AccessKind::Write.is_atomic());
    }

    #[test]
    fn as_access() {
        let a = MemAccess::new(8, 4, AccessKind::Read, 1);
        assert_eq!(Event::Access(a).as_access(), Some(&a));
        assert_eq!(Event::MutexAcquire(0).as_access(), None);
    }
}
