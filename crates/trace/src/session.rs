//! Session directory layout.
//!
//! A *session* is one instrumented program execution. Its directory holds:
//!
//! ```text
//! <dir>/thread_<tid>.log    per-thread compressed event log
//! <dir>/thread_<tid>.meta   per-thread barrier-interval table (Table I)
//! <dir>/regions.meta        parallel-region table (pid → ppid, fork label)
//! <dir>/pcs.meta            program-counter table (id → file:line)
//! <dir>/session.meta        free-form key=value run info
//! <dir>/obs.jsonl           observability journal (spans/events, JSONL)
//! <dir>/metrics.prom        Prometheus text exposition of the registry
//! ```

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

use crate::event::ThreadId;

/// Handle to a session directory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionDir {
    root: PathBuf,
}

impl SessionDir {
    /// Wraps an existing or to-be-created directory path.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        SessionDir { root: root.into() }
    }

    /// Creates the directory (and parents). Idempotent.
    pub fn create(&self) -> io::Result<()> {
        fs::create_dir_all(&self.root)
    }

    /// Removes every file of a previous session in this directory, so
    /// stale logs never leak into a new run's analysis.
    pub fn clean(&self) -> io::Result<()> {
        if !self.root.exists() {
            return Ok(());
        }
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.ends_with(".log")
                || name.ends_with(".meta")
                || name.ends_with(".jsonl")
                || name.ends_with(".prom")
            {
                fs::remove_file(entry.path())?;
            }
        }
        Ok(())
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.root
    }

    /// Path of thread `tid`'s log file.
    pub fn thread_log(&self, tid: ThreadId) -> PathBuf {
        self.root.join(format!("thread_{tid}.log"))
    }

    /// Path of thread `tid`'s meta-data file.
    pub fn thread_meta(&self, tid: ThreadId) -> PathBuf {
        self.root.join(format!("thread_{tid}.meta"))
    }

    /// Path of the region table.
    pub fn regions_path(&self) -> PathBuf {
        self.root.join("regions.meta")
    }

    /// Path of the program-counter table.
    pub fn pcs_path(&self) -> PathBuf {
        self.root.join("pcs.meta")
    }

    /// Path of the run-info file.
    pub fn info_path(&self) -> PathBuf {
        self.root.join("session.meta")
    }

    /// Path of the live-progress watermark file (see [`LiveStatus`]).
    pub fn live_path(&self) -> PathBuf {
        self.root.join("live.meta")
    }

    /// Path of the observability journal (JSONL spans/events).
    pub fn obs_path(&self) -> PathBuf {
        self.root.join("obs.jsonl")
    }

    /// Path of the Prometheus text-exposition metrics file.
    pub fn metrics_path(&self) -> PathBuf {
        self.root.join("metrics.prom")
    }

    /// Atomically replaces `path` with `bytes` via a temporary file and
    /// rename, so concurrent readers only ever observe complete snapshots
    /// — the write discipline of the live watermark protocol.
    pub fn write_file_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        fs::write(&tmp, bytes)?;
        fs::rename(&tmp, path)
    }

    /// Publishes the live watermark status (atomic).
    pub fn write_live(&self, status: LiveStatus) -> io::Result<()> {
        let body = format!(
            "generation={}\nfinished={}\n",
            status.generation,
            if status.finished { 1 } else { 0 }
        );
        self.write_file_atomic(&self.live_path(), body.as_bytes())
    }

    /// Reads the live watermark status; `None` when the collector never
    /// published one (pre-watermark sessions are treated as finished).
    pub fn read_live(&self) -> io::Result<Option<LiveStatus>> {
        let path = self.live_path();
        if !path.exists() {
            return Ok(None);
        }
        let mut status = LiveStatus::default();
        for line in BufReader::new(fs::File::open(path)?).lines() {
            let line = line?;
            match line.split_once('=') {
                Some(("generation", v)) => {
                    status.generation = v.parse().map_err(|_| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("live.meta: bad generation {v:?}"),
                        )
                    })?;
                }
                Some(("finished", v)) => status.finished = v.trim() == "1",
                _ => {}
            }
        }
        Ok(Some(status))
    }

    /// Thread ids present in the session, ascending, discovered from the
    /// meta files on disk.
    pub fn thread_ids(&self) -> io::Result<Vec<ThreadId>> {
        let mut ids = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(rest) = name.strip_prefix("thread_") {
                if let Some(num) = rest.strip_suffix(".meta") {
                    if let Ok(tid) = num.parse::<ThreadId>() {
                        ids.push(tid);
                    }
                }
            }
        }
        ids.sort_unstable();
        Ok(ids)
    }

    /// Total on-disk bytes of all log files (the paper reports log volume
    /// per benchmark).
    pub fn log_bytes(&self) -> io::Result<u64> {
        let mut total = 0;
        for tid in self.thread_ids()? {
            let p = self.thread_log(tid);
            if p.exists() {
                total += fs::metadata(p)?.len();
            }
        }
        Ok(total)
    }

    /// Writes the run-info key=value map.
    pub fn write_info(&self, info: &BTreeMap<String, String>) -> io::Result<()> {
        let mut f = fs::File::create(self.info_path())?;
        for (k, v) in info {
            writeln!(f, "{k}={v}")?;
        }
        Ok(())
    }

    /// Reads the run-info key=value map (empty if absent).
    pub fn read_info(&self) -> io::Result<BTreeMap<String, String>> {
        let mut map = BTreeMap::new();
        let path = self.info_path();
        if !path.exists() {
            return Ok(map);
        }
        for line in BufReader::new(fs::File::open(path)?).lines() {
            let line = line?;
            if let Some((k, v)) = line.split_once('=') {
                map.insert(k.to_string(), v.to_string());
            }
        }
        Ok(map)
    }
}

/// Progress marker of an in-flight session.
///
/// The collector bumps `generation` on every watermark publish (each one
/// an atomic rewrite of the meta files covering only durably flushed log
/// bytes) and sets `finished` once the final metadata is on disk. Readers
/// poll this file to learn when re-reading the metadata is worthwhile and
/// when the session is complete.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LiveStatus {
    /// Publish counter (monotonically increasing within one run).
    pub generation: u64,
    /// `true` once the session's final metadata has been written.
    pub finished: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sword-trace-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn layout_paths() {
        let s = SessionDir::new("/tmp/s");
        assert_eq!(s.thread_log(3), Path::new("/tmp/s/thread_3.log"));
        assert_eq!(s.thread_meta(0), Path::new("/tmp/s/thread_0.meta"));
        assert_eq!(s.regions_path(), Path::new("/tmp/s/regions.meta"));
        assert_eq!(s.pcs_path(), Path::new("/tmp/s/pcs.meta"));
    }

    #[test]
    fn discover_threads_and_clean() {
        let dir = tmpdir("discover");
        let s = SessionDir::new(&dir);
        s.create().unwrap();
        for tid in [0u32, 2, 7] {
            fs::write(s.thread_meta(tid), "").unwrap();
            fs::write(s.thread_log(tid), "x").unwrap();
        }
        fs::write(dir.join("unrelated.txt"), "keep").unwrap();
        assert_eq!(s.thread_ids().unwrap(), vec![0, 2, 7]);
        assert_eq!(s.log_bytes().unwrap(), 3);
        s.clean().unwrap();
        assert!(s.thread_ids().unwrap().is_empty());
        assert!(dir.join("unrelated.txt").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn info_roundtrip() {
        let dir = tmpdir("info");
        let s = SessionDir::new(&dir);
        s.create().unwrap();
        let mut info = BTreeMap::new();
        info.insert("threads".to_string(), "8".to_string());
        info.insert("buffer_events".to_string(), "25000".to_string());
        s.write_info(&info).unwrap();
        assert_eq!(s.read_info().unwrap(), info);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_info_is_empty() {
        let dir = tmpdir("noinfo");
        let s = SessionDir::new(&dir);
        s.create().unwrap();
        assert!(s.read_info().unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn live_status_roundtrip() {
        let dir = tmpdir("live");
        let s = SessionDir::new(&dir);
        s.create().unwrap();
        assert_eq!(s.read_live().unwrap(), None, "absent before first publish");
        s.write_live(LiveStatus { generation: 3, finished: false }).unwrap();
        assert_eq!(s.read_live().unwrap(), Some(LiveStatus { generation: 3, finished: false }));
        s.write_live(LiveStatus { generation: 4, finished: true }).unwrap();
        assert_eq!(s.read_live().unwrap(), Some(LiveStatus { generation: 4, finished: true }));
        // clean() removes the watermark with the other metadata.
        s.clean().unwrap();
        assert_eq!(s.read_live().unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_live_status_is_an_error() {
        let dir = tmpdir("live-bad");
        let s = SessionDir::new(&dir);
        s.create().unwrap();
        fs::write(s.live_path(), "generation=not-a-number\n").unwrap();
        assert!(s.read_live().is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn atomic_write_replaces_without_partials() {
        let dir = tmpdir("atomic");
        let s = SessionDir::new(&dir);
        s.create().unwrap();
        let p = dir.join("target.meta");
        s.write_file_atomic(&p, b"first").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"first");
        s.write_file_atomic(&p, b"second-longer").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"second-longer");
        assert!(!dir.join("target.meta.tmp").exists(), "tmp file renamed away");
        fs::remove_dir_all(&dir).unwrap();
    }
}
