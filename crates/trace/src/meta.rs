//! Meta-data records: the per-thread barrier-interval table (Table I of the
//! paper) and the session-wide region table used to reconstruct full
//! offset-span labels.
//!
//! Both files are line-oriented text, mirroring Table I's tabular
//! presentation, which keeps them inspectable with standard tools (and via
//! `sword meta` in the CLI). Numeric volume is tiny compared to the logs —
//! one line per barrier interval / region — so a binary format would buy
//! nothing.

use std::io::{self, BufRead, Write};

use sword_osl::Label;

/// One line of a thread's meta-data file — one **barrier interval**
/// (Table I: `pid  ppid  bid  offset  span  level  data_begin  size`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetaRecord {
    /// Parallel region id.
    pub pid: u64,
    /// Parent parallel region id (`None` for top-level regions, printed
    /// as `-` like Table I).
    pub ppid: Option<u64>,
    /// Barrier-interval id within the region: 0 before the first barrier,
    /// incremented at every barrier the thread crosses.
    pub bid: u32,
    /// Offset of this thread's innermost offset-span pair **including
    /// barrier-generation bumps** (`slot + bid·span`).
    pub offset: u64,
    /// Span (team size) of the region.
    pub span: u64,
    /// Nesting level of parallelism (1 for top-level regions).
    pub level: u32,
    /// Byte offset of this interval's events in the *uncompressed* log
    /// stream.
    pub data_begin: u64,
    /// Byte length of this interval's events.
    pub size: u64,
}

impl MetaRecord {
    /// The thread's innermost offset-span pair for this interval.
    pub fn pair(&self) -> (u64, u64) {
        (self.offset, self.span)
    }

    /// Serializes to one Table-I-style line.
    pub fn to_line(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            self.pid,
            self.ppid.map_or_else(|| "-".to_string(), |p| p.to_string()),
            self.bid,
            self.offset,
            self.span,
            self.level,
            self.data_begin,
            self.size
        )
    }

    /// Parses a line produced by [`MetaRecord::to_line`].
    pub fn parse_line(line: &str) -> Result<Self, MetaParseError> {
        let mut it = line.split('\t');
        let mut field = |name: &'static str| {
            it.next().filter(|s| !s.is_empty()).ok_or(MetaParseError::MissingField(name))
        };
        let pid = parse_u64(field("pid")?, "pid")?;
        let ppid_raw = field("ppid")?;
        let ppid = if ppid_raw == "-" { None } else { Some(parse_u64(ppid_raw, "ppid")?) };
        let bid = parse_u64(field("bid")?, "bid")? as u32;
        let offset = parse_u64(field("offset")?, "offset")?;
        let span = parse_u64(field("span")?, "span")?;
        let level = parse_u64(field("level")?, "level")? as u32;
        let data_begin = parse_u64(field("data_begin")?, "data_begin")?;
        let size = parse_u64(field("size")?, "size")?;
        if span == 0 {
            return Err(MetaParseError::BadField("span"));
        }
        Ok(MetaRecord { pid, ppid, bid, offset, span, level, data_begin, size })
    }
}

/// One line of the session-wide region table: a parallel region instance
/// and the forking thread's full offset-span label at the fork point, so
/// the analyzer can reconstruct any thread's label as
/// `fork_label · [offset, span]` from its meta rows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegionRecord {
    /// Region id.
    pub pid: u64,
    /// Parent region id (`None` for top level).
    pub ppid: Option<u64>,
    /// Nesting level (1 = top level).
    pub level: u32,
    /// Team size.
    pub span: u64,
    /// The forking thread's label at the fork point, flattened
    /// (offset, span, offset, span, …).
    pub fork_label: Vec<u64>,
    /// For task pseudo-regions (`span == sword_osl::TASK_SPAN`): pids of
    /// predecessor task pseudo-regions this task `depend`s on. Dependences
    /// are fully known at creation time — predecessors are earlier sibling
    /// tasks with a conflicting `depend` clause — so the record is complete
    /// when first written. Empty for real parallel regions, and omitted
    /// from the serialized line so pre-tasking region tables round-trip
    /// byte-identically.
    pub deps: Vec<u64>,
}

impl RegionRecord {
    /// The forking thread's label as an [`sword_osl::Label`].
    ///
    /// Infallible because [`RegionRecord::parse_line`] rejects flat labels
    /// `from_flat` would reject (odd length, zero spans) — corrupted
    /// region tables surface as parse errors, never here.
    pub fn fork_label(&self) -> Label {
        Label::from_flat(&self.fork_label).expect("region record holds a valid label")
    }

    /// Serializes to one line: `pid ppid level span o,s,o,s,…` with a
    /// trailing `dep,dep,…` column only when dependences are present.
    pub fn to_line(&self) -> String {
        let label: Vec<String> = self.fork_label.iter().map(|v| v.to_string()).collect();
        let mut line = format!(
            "{}\t{}\t{}\t{}\t{}",
            self.pid,
            self.ppid.map_or_else(|| "-".to_string(), |p| p.to_string()),
            self.level,
            self.span,
            label.join(",")
        );
        if !self.deps.is_empty() {
            let deps: Vec<String> = self.deps.iter().map(|v| v.to_string()).collect();
            line.push('\t');
            line.push_str(&deps.join(","));
        }
        line
    }

    /// Parses a line produced by [`RegionRecord::to_line`].
    pub fn parse_line(line: &str) -> Result<Self, MetaParseError> {
        let mut it = line.split('\t');
        let mut field = |name: &'static str| {
            it.next().filter(|s| !s.is_empty()).ok_or(MetaParseError::MissingField(name))
        };
        let pid = parse_u64(field("pid")?, "pid")?;
        let ppid_raw = field("ppid")?;
        let ppid = if ppid_raw == "-" { None } else { Some(parse_u64(ppid_raw, "ppid")?) };
        let level = parse_u64(field("level")?, "level")? as u32;
        let span = parse_u64(field("span")?, "span")?;
        let label_raw = it.next().unwrap_or("");
        let mut fork_label = Vec::new();
        if !label_raw.is_empty() {
            for part in label_raw.split(',') {
                fork_label.push(parse_u64(part, "fork_label")?);
            }
        }
        if fork_label.len() % 2 != 0 {
            return Err(MetaParseError::BadField("fork_label"));
        }
        // A zero span inside the label would make `fork_label()` panic
        // later; corrupted tables must fail here, at the I/O boundary.
        if fork_label.chunks_exact(2).any(|pair| pair[1] == 0) {
            return Err(MetaParseError::BadField("fork_label"));
        }
        if span == 0 {
            return Err(MetaParseError::BadField("span"));
        }
        let mut deps = Vec::new();
        if let Some(deps_raw) = it.next() {
            if !deps_raw.is_empty() {
                for part in deps_raw.split(',') {
                    deps.push(parse_u64(part, "deps")?);
                }
            }
        }
        Ok(RegionRecord { pid, ppid, level, span, fork_label, deps })
    }
}

/// Error parsing a meta-data line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetaParseError {
    /// A column was absent.
    MissingField(&'static str),
    /// A column failed to parse or had an invalid value.
    BadField(&'static str),
}

impl std::fmt::Display for MetaParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetaParseError::MissingField(n) => write!(f, "missing meta field `{n}`"),
            MetaParseError::BadField(n) => write!(f, "invalid meta field `{n}`"),
        }
    }
}

impl std::error::Error for MetaParseError {}

fn parse_u64(s: &str, name: &'static str) -> Result<u64, MetaParseError> {
    s.parse().map_err(|_| MetaParseError::BadField(name))
}

/// Writes meta records line by line.
pub fn write_meta<W: Write>(w: &mut W, records: &[MetaRecord]) -> io::Result<()> {
    for r in records {
        writeln!(w, "{}", r.to_line())?;
    }
    Ok(())
}

/// Reads all meta records from a reader.
pub fn read_meta<R: BufRead>(r: R) -> io::Result<Vec<MetaRecord>> {
    let mut out = Vec::new();
    for line in r.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        out.push(
            MetaRecord::parse_line(&line)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?,
        );
    }
    Ok(out)
}

/// Writes region records line by line.
pub fn write_regions<W: Write>(w: &mut W, records: &[RegionRecord]) -> io::Result<()> {
    for r in records {
        writeln!(w, "{}", r.to_line())?;
    }
    Ok(())
}

/// Reads all region records from a reader.
pub fn read_regions<R: BufRead>(r: R) -> io::Result<Vec<RegionRecord>> {
    let mut out = Vec::new();
    for line in r.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        out.push(
            RegionRecord::parse_line(&line)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?,
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetaRecord {
        MetaRecord {
            pid: 3,
            ppid: Some(1),
            bid: 2,
            offset: 5,
            span: 4,
            level: 2,
            data_begin: 50_000,
            size: 75_000,
        }
    }

    #[test]
    fn meta_line_roundtrip() {
        let r = sample();
        assert_eq!(MetaRecord::parse_line(&r.to_line()).unwrap(), r);
    }

    #[test]
    fn meta_top_level_ppid_dash() {
        let r = MetaRecord { ppid: None, ..sample() };
        let line = r.to_line();
        assert!(line.contains("\t-\t"));
        assert_eq!(MetaRecord::parse_line(&line).unwrap(), r);
    }

    #[test]
    fn meta_table1_example() {
        // First row of Table I: pid 0, ppid -, bid 0, offset 0, span 24,
        // level 1, data_begin 0, size 50000.
        let line = "0\t-\t0\t0\t24\t1\t0\t50000";
        let r = MetaRecord::parse_line(line).unwrap();
        assert_eq!(r.pid, 0);
        assert_eq!(r.ppid, None);
        assert_eq!(r.span, 24);
        assert_eq!(r.size, 50_000);
        assert_eq!(r.pair(), (0, 24));
    }

    #[test]
    fn meta_rejects_garbage() {
        assert!(MetaRecord::parse_line("").is_err());
        assert!(MetaRecord::parse_line("1\t2\t3").is_err());
        assert!(MetaRecord::parse_line("x\t-\t0\t0\t4\t1\t0\t0").is_err());
        // zero span invalid
        assert!(MetaRecord::parse_line("0\t-\t0\t0\t0\t1\t0\t0").is_err());
    }

    #[test]
    fn region_line_roundtrip() {
        let r = RegionRecord {
            pid: 7,
            ppid: Some(2),
            level: 2,
            span: 8,
            fork_label: vec![0, 1, 3, 4],
            deps: vec![],
        };
        assert_eq!(RegionRecord::parse_line(&r.to_line()).unwrap(), r);
        assert_eq!(r.fork_label().pairs().len(), 2);
    }

    #[test]
    fn region_empty_label() {
        let r = RegionRecord {
            pid: 0,
            ppid: None,
            level: 1,
            span: 4,
            fork_label: vec![],
            deps: vec![],
        };
        let parsed = RegionRecord::parse_line(&r.to_line()).unwrap();
        assert_eq!(parsed, r);
        assert!(parsed.fork_label().is_empty());
    }

    #[test]
    fn region_deps_roundtrip_and_v1_compat() {
        let r = RegionRecord {
            pid: 9,
            ppid: Some(3),
            level: 2,
            span: 1 << 32,
            fork_label: vec![0, 1, 5, 1],
            deps: vec![7, 8],
        };
        let line = r.to_line();
        assert!(line.ends_with("\t7,8"), "{line}");
        assert_eq!(RegionRecord::parse_line(&line).unwrap(), r);
        // Pre-tasking 5-column lines parse with no dependences, and a
        // dep-free record serializes without the column.
        let v1 = "0\t-\t1\t4\t0,1";
        let parsed = RegionRecord::parse_line(v1).unwrap();
        assert!(parsed.deps.is_empty());
        assert_eq!(parsed.to_line(), v1);
        assert!(RegionRecord::parse_line("0\t-\t1\t4\t0,1\t7,x").is_err());
    }

    #[test]
    fn region_rejects_odd_label() {
        assert!(RegionRecord::parse_line("0\t-\t1\t4\t1,2,3").is_err());
    }

    #[test]
    fn region_rejects_zero_span_in_label() {
        // Would otherwise panic later in `fork_label()`.
        assert!(RegionRecord::parse_line("0\t-\t1\t4\t1,0").is_err());
        assert!(RegionRecord::parse_line("0\t-\t1\t4\t0,1,2,0").is_err());
    }

    #[test]
    fn file_roundtrip() {
        let records = vec![
            MetaRecord {
                pid: 0,
                ppid: None,
                bid: 0,
                offset: 0,
                span: 24,
                level: 1,
                data_begin: 0,
                size: 50_000,
            },
            MetaRecord {
                pid: 0,
                ppid: None,
                bid: 1,
                offset: 24,
                span: 24,
                level: 1,
                data_begin: 50_000,
                size: 75_000,
            },
            MetaRecord {
                pid: 1,
                ppid: None,
                bid: 0,
                offset: 0,
                span: 24,
                level: 1,
                data_begin: 125_000,
                size: 10_000,
            },
        ];
        let mut buf = Vec::new();
        write_meta(&mut buf, &records).unwrap();
        let got = read_meta(&buf[..]).unwrap();
        assert_eq!(got, records);
    }

    #[test]
    fn regions_file_roundtrip() {
        let records = vec![
            RegionRecord {
                pid: 0,
                ppid: None,
                level: 1,
                span: 2,
                fork_label: vec![0, 1],
                deps: vec![],
            },
            RegionRecord {
                pid: 1,
                ppid: Some(0),
                level: 2,
                span: 2,
                fork_label: vec![0, 1, 0, 2],
                deps: vec![],
            },
        ];
        let mut buf = Vec::new();
        write_regions(&mut buf, &records).unwrap();
        assert_eq!(read_regions(&buf[..]).unwrap(), records);
    }

    #[test]
    fn blank_lines_skipped() {
        let text = "\n0\t-\t0\t0\t4\t1\t0\t10\n\n";
        assert_eq!(read_meta(text.as_bytes()).unwrap().len(), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_meta() -> impl Strategy<Value = MetaRecord> {
        (
            any::<u64>(),
            prop::option::of(any::<u64>()),
            any::<u32>(),
            any::<u64>(),
            1u64..u64::MAX,
            any::<u32>(),
            any::<u64>(),
            any::<u64>(),
        )
            .prop_map(|(pid, ppid, bid, offset, span, level, data_begin, size)| {
                MetaRecord { pid, ppid, bid, offset, span, level, data_begin, size }
            })
    }

    fn arb_region() -> impl Strategy<Value = RegionRecord> {
        (
            any::<u64>(),
            prop::option::of(any::<u64>()),
            any::<u32>(),
            1u64..u64::MAX,
            prop::collection::vec(any::<u64>(), 0..6),
            prop::collection::vec(any::<u64>(), 0..4),
        )
            .prop_map(|(pid, ppid, level, span, mut fork_label, deps)| {
                if fork_label.len() % 2 != 0 {
                    fork_label.pop();
                }
                // Spans within the label must be non-zero for
                // `fork_label()` reconstruction.
                for pair in fork_label.chunks_exact_mut(2) {
                    pair[1] = pair[1].max(1);
                }
                RegionRecord { pid, ppid, level, span, fork_label, deps }
            })
    }

    proptest! {
        #[test]
        fn meta_line_roundtrip_prop(r in arb_meta()) {
            prop_assert_eq!(MetaRecord::parse_line(&r.to_line()).unwrap(), r);
        }

        #[test]
        fn region_line_roundtrip_prop(r in arb_region()) {
            let parsed = RegionRecord::parse_line(&r.to_line()).unwrap();
            prop_assert_eq!(parsed.fork_label(), r.fork_label());
            prop_assert_eq!(parsed, r);
        }

        #[test]
        fn meta_file_roundtrip_prop(rows in prop::collection::vec(arb_meta(), 0..20)) {
            let mut buf = Vec::new();
            write_meta(&mut buf, &rows).unwrap();
            prop_assert_eq!(read_meta(&buf[..]).unwrap(), rows);
        }

        #[test]
        fn parse_garbage_never_panics(line in "\\PC*") {
            let _ = MetaRecord::parse_line(&line);
            let _ = RegionRecord::parse_line(&line);
        }
    }
}
