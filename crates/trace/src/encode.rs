//! Compact binary encoding of event streams.
//!
//! Layout per event (all varints are LEB128):
//!
//! ```text
//! access      := tag(1B) zigzag_varint(addr Δ) varint(pc Δ as zigzag)
//! mutex_op    := tag(1B) varint(mutex_id)
//! tag         := size_log2 << 4 | kind_code << 1 | 0   (access)
//!              | 0x01 | op << 1                        (mutex: op 4=acq, 5=rel)
//! ```
//!
//! Addresses and PCs are delta-encoded against the previous access in the
//! same *barrier interval*: instrumented loops touch consecutive addresses
//! from a handful of PCs, so deltas are tiny and highly repetitive, which
//! is what makes the downstream LZ pass effective. The encoder is reset at
//! every barrier-interval boundary so each interval's byte range decodes
//! independently — a requirement of the offline streaming reader, which
//! extracts `[data_begin, data_begin + size)` slices per Table I records.

use crate::event::{AccessKind, Event, MemAccess};

/// Encoding/decoding error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Stream ended in the middle of an event.
    Truncated,
    /// Unknown tag or invalid field.
    Invalid,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "event stream truncated"),
            CodecError::Invalid => write!(f, "invalid event encoding"),
        }
    }
}

impl std::error::Error for CodecError {}

// Tag layout: bit 0 distinguishes access (0) from mutex op (1).
const TAG_MUTEX_BIT: u8 = 0x01;
const MUTEX_ACQUIRE: u8 = 0;
const MUTEX_RELEASE: u8 = 1;

/// Writes LEB128.
#[inline]
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads LEB128 from `buf[*pos..]`.
#[inline]
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    // Unrolled path for varints up to 5 bytes (35 payload bits — every
    // realistic address or PC delta) when that many bytes are in hand:
    // one bounds check instead of one per byte. Longer varints and
    // buffer tails fall through to the loop below, which re-reads from
    // the untouched `*pos` and accepts exactly the same encodings.
    if let &[b0, b1, b2, b3, b4, ..] = &buf[*pos..] {
        let mut v = (b0 & 0x7F) as u64;
        if b0 & 0x80 == 0 {
            *pos += 1;
            return Ok(v);
        }
        v |= ((b1 & 0x7F) as u64) << 7;
        if b1 & 0x80 == 0 {
            *pos += 2;
            return Ok(v);
        }
        v |= ((b2 & 0x7F) as u64) << 14;
        if b2 & 0x80 == 0 {
            *pos += 3;
            return Ok(v);
        }
        v |= ((b3 & 0x7F) as u64) << 21;
        if b3 & 0x80 == 0 {
            *pos += 4;
            return Ok(v);
        }
        v |= ((b4 & 0x7F) as u64) << 28;
        if b4 & 0x80 == 0 {
            *pos += 5;
            return Ok(v);
        }
    }
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos).ok_or(CodecError::Truncated)?;
        *pos += 1;
        if shift >= 64 {
            return Err(CodecError::Invalid);
        }
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Streaming event encoder with per-interval delta state.
#[derive(Clone, Debug, Default)]
pub struct EventEncoder {
    prev_addr: u64,
    prev_pc: u64,
}

impl EventEncoder {
    /// Fresh encoder (state zeroed).
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets delta state. Must be called at every barrier-interval
    /// boundary so intervals decode independently.
    pub fn reset(&mut self) {
        self.prev_addr = 0;
        self.prev_pc = 0;
    }

    /// Appends the encoding of `event` to `out`, returning the encoded
    /// length in bytes.
    pub fn encode(&mut self, event: &Event, out: &mut Vec<u8>) -> usize {
        let start = out.len();
        match event {
            Event::Access(a) => {
                let size_log2 = match a.size {
                    1 => 0u8,
                    2 => 1,
                    4 => 2,
                    8 => 3,
                    16 => 4,
                    _ => 5, // explicit size follows
                };
                let tag = (size_log2 << 4) | (a.kind.code() << 1);
                let zz_addr = zigzag(a.addr.wrapping_sub(self.prev_addr) as i64);
                let zz_pc = zigzag(a.pc as i64 - self.prev_pc as i64);
                self.prev_addr = a.addr;
                self.prev_pc = a.pc as u64;
                // Fast path for the dominant shape: a power-of-two-sized
                // access whose address and PC deltas both fit one varint
                // byte — a strided loop body re-touching nearby memory
                // from the same few PCs. One branch, one 3-byte append,
                // byte-identical to the general path below.
                if size_log2 != 5 && zz_addr < 0x80 && zz_pc < 0x80 {
                    out.extend_from_slice(&[tag, zz_addr as u8, zz_pc as u8]);
                } else {
                    out.push(tag);
                    if size_log2 == 5 {
                        write_varint(out, a.size as u64);
                    }
                    write_varint(out, zz_addr);
                    write_varint(out, zz_pc);
                }
            }
            Event::MutexAcquire(id) => {
                out.push(TAG_MUTEX_BIT | (MUTEX_ACQUIRE << 1));
                write_varint(out, *id as u64);
            }
            Event::MutexRelease(id) => {
                out.push(TAG_MUTEX_BIT | (MUTEX_RELEASE << 1));
                write_varint(out, *id as u64);
            }
        }
        out.len() - start
    }
}

/// Streaming event decoder mirroring [`EventEncoder`].
#[derive(Clone, Debug, Default)]
pub struct EventDecoder {
    prev_addr: u64,
    prev_pc: u64,
}

impl EventDecoder {
    /// Fresh decoder (state zeroed).
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets delta state; call at barrier-interval boundaries.
    pub fn reset(&mut self) {
        self.prev_addr = 0;
        self.prev_pc = 0;
    }

    /// Decodes one event from `buf[*pos..]`, advancing `pos`.
    pub fn decode(&mut self, buf: &[u8], pos: &mut usize) -> Result<Event, CodecError> {
        // Fast path mirroring the encoder's 3-byte form: a
        // power-of-two-sized access whose address and PC deltas each fit
        // one varint byte. Decodes without the varint loops; any
        // condition miss falls through to the general path below, which
        // re-reads from `*pos` and accepts exactly the same streams.
        if let &[tag, b1, b2, ..] = &buf[*pos..] {
            if tag & TAG_MUTEX_BIT == 0 && (tag >> 4) <= 4 && b1 < 0x80 && b2 < 0x80 {
                if let Some(kind) = AccessKind::from_code((tag >> 1) & 0x3) {
                    let addr = self.prev_addr.wrapping_add(unzigzag(b1 as u64) as u64);
                    let pc_i = self.prev_pc as i64 + unzigzag(b2 as u64);
                    if (0..=u32::MAX as i64).contains(&pc_i) {
                        *pos += 3;
                        self.prev_addr = addr;
                        self.prev_pc = pc_i as u64;
                        return Ok(Event::Access(MemAccess {
                            addr,
                            size: 1 << (tag >> 4),
                            kind,
                            pc: pc_i as u32,
                        }));
                    }
                }
            }
        }
        let tag = *buf.get(*pos).ok_or(CodecError::Truncated)?;
        *pos += 1;
        if tag & TAG_MUTEX_BIT != 0 {
            let op = (tag >> 1) & 0x7;
            let id = read_varint(buf, pos)? as u32;
            return match op {
                MUTEX_ACQUIRE => Ok(Event::MutexAcquire(id)),
                MUTEX_RELEASE => Ok(Event::MutexRelease(id)),
                _ => Err(CodecError::Invalid),
            };
        }
        let kind = AccessKind::from_code((tag >> 1) & 0x3).ok_or(CodecError::Invalid)?;
        let size_log2 = tag >> 4;
        let size = match size_log2 {
            0 => 1u64,
            1 => 2,
            2 => 4,
            3 => 8,
            4 => 16,
            5 => read_varint(buf, pos)?,
            _ => return Err(CodecError::Invalid),
        };
        if size == 0 || size > u8::MAX as u64 {
            return Err(CodecError::Invalid);
        }
        let addr_delta = unzigzag(read_varint(buf, pos)?);
        let pc_delta = unzigzag(read_varint(buf, pos)?);
        let addr = self.prev_addr.wrapping_add(addr_delta as u64);
        let pc_i = self.prev_pc as i64 + pc_delta;
        if pc_i < 0 || pc_i > u32::MAX as i64 {
            return Err(CodecError::Invalid);
        }
        self.prev_addr = addr;
        self.prev_pc = pc_i as u64;
        Ok(Event::Access(MemAccess { addr, size: size as u8, kind, pc: pc_i as u32 }))
    }

    /// Decodes every event in `buf`.
    pub fn decode_all(&mut self, buf: &[u8]) -> Result<Vec<Event>, CodecError> {
        let mut pos = 0;
        let mut out = Vec::new();
        while pos < buf.len() {
            out.push(self.decode(buf, &mut pos)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{AccessKind::*, MemAccess};

    fn roundtrip(events: &[Event]) -> Vec<Event> {
        let mut enc = EventEncoder::new();
        let mut buf = Vec::new();
        for e in events {
            enc.encode(e, &mut buf);
        }
        EventDecoder::new().decode_all(&buf).expect("decode")
    }

    #[test]
    fn empty_stream() {
        assert_eq!(roundtrip(&[]), vec![]);
    }

    #[test]
    fn single_events() {
        let events = vec![
            Event::Access(MemAccess::new(0x1000, 8, Write, 3)),
            Event::Access(MemAccess::new(0x0, 1, Read, 0)),
            Event::Access(MemAccess::new(u64::MAX - 7, 4, AtomicWrite, u32::MAX)),
            Event::MutexAcquire(0),
            Event::MutexRelease(u32::MAX),
        ];
        assert_eq!(roundtrip(&events), events);
    }

    #[test]
    fn sequential_loop_is_tiny() {
        // 1000 consecutive 8-byte writes from one PC: ~3 bytes per event
        // before compression.
        let events: Vec<Event> = (0..1000u64)
            .map(|i| Event::Access(MemAccess::new(0x10000 + i * 8, 8, Write, 42)))
            .collect();
        let mut enc = EventEncoder::new();
        let mut buf = Vec::new();
        for e in &events {
            enc.encode(e, &mut buf);
        }
        assert!(buf.len() <= events.len() * 3 + 8, "encoded {} bytes", buf.len());
        assert_eq!(EventDecoder::new().decode_all(&buf).unwrap(), events);
    }

    #[test]
    fn odd_sizes_roundtrip() {
        let events = vec![
            Event::Access(MemAccess::new(100, 3, Read, 1)),
            Event::Access(MemAccess::new(200, 16, Write, 2)),
            Event::Access(MemAccess::new(300, 255, Read, 3)),
        ];
        assert_eq!(roundtrip(&events), events);
    }

    #[test]
    fn reset_isolates_intervals() {
        let mut enc = EventEncoder::new();
        let mut buf1 = Vec::new();
        enc.encode(&Event::Access(MemAccess::new(0x5000, 8, Write, 9)), &mut buf1);
        enc.reset();
        let mut buf2 = Vec::new();
        enc.encode(&Event::Access(MemAccess::new(0x5008, 8, Write, 9)), &mut buf2);
        // Second interval decodes standalone with a fresh decoder.
        let got = EventDecoder::new().decode_all(&buf2).unwrap();
        assert_eq!(got, vec![Event::Access(MemAccess::new(0x5008, 8, Write, 9))]);
    }

    #[test]
    fn truncation_detected() {
        let mut enc = EventEncoder::new();
        let mut buf = Vec::new();
        enc.encode(&Event::Access(MemAccess::new(0xABCDEF, 8, Read, 77)), &mut buf);
        for cut in 0..buf.len() {
            let mut dec = EventDecoder::new();
            assert!(dec.decode_all(&buf[..cut]).is_err() || cut == 0);
        }
    }

    #[test]
    fn varint_roundtrip_extremes() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    /// The general path only, no fast-path branch: the reference the
    /// fast path must match byte for byte.
    pub(super) fn encode_reference(events: &[Event]) -> Vec<u8> {
        let mut prev_addr = 0u64;
        let mut prev_pc = 0u64;
        let mut out = Vec::new();
        for event in events {
            match event {
                Event::Access(a) => {
                    let size_log2 = match a.size {
                        1 => 0u8,
                        2 => 1,
                        4 => 2,
                        8 => 3,
                        16 => 4,
                        _ => 5,
                    };
                    out.push((size_log2 << 4) | (a.kind.code() << 1));
                    if size_log2 == 5 {
                        write_varint(&mut out, a.size as u64);
                    }
                    write_varint(&mut out, zigzag(a.addr.wrapping_sub(prev_addr) as i64));
                    write_varint(&mut out, zigzag(a.pc as i64 - prev_pc as i64));
                    prev_addr = a.addr;
                    prev_pc = a.pc as u64;
                }
                Event::MutexAcquire(id) => {
                    out.push(TAG_MUTEX_BIT | (MUTEX_ACQUIRE << 1));
                    write_varint(&mut out, *id as u64);
                }
                Event::MutexRelease(id) => {
                    out.push(TAG_MUTEX_BIT | (MUTEX_RELEASE << 1));
                    write_varint(&mut out, *id as u64);
                }
            }
        }
        out
    }

    #[test]
    fn fast_path_matches_general_path() {
        // Mix small deltas (fast path), large deltas, backwards strides
        // (negative deltas near the 1-byte zigzag boundary), odd sizes,
        // and mutex ops.
        let mut events = Vec::new();
        for i in 0..200u64 {
            events.push(Event::Access(MemAccess::new(0x1000 + i * 8, 8, Write, 42)));
        }
        for i in 0..64u64 {
            // zigzag(±63/±64) straddles the single-byte boundary.
            let addr = 0x9000u64.wrapping_add((i as i64 * 63 - 2048) as u64);
            events.push(Event::Access(MemAccess::new(addr, 4, Read, (40 + i % 3) as u32)));
        }
        events.push(Event::Access(MemAccess::new(u64::MAX - 7, 16, AtomicWrite, u32::MAX)));
        events.push(Event::MutexAcquire(7));
        events.push(Event::Access(MemAccess::new(0, 3, Read, 0)));
        events.push(Event::MutexRelease(7));
        events.push(Event::Access(MemAccess::new(0x4, 1, Write, 1)));

        let mut enc = EventEncoder::new();
        let mut got = Vec::new();
        for e in &events {
            enc.encode(e, &mut got);
        }
        assert_eq!(got, encode_reference(&events), "fast path must not change the stream");
        assert_eq!(EventDecoder::new().decode_all(&got).unwrap(), events);
    }

    #[test]
    fn decode_fast_path_rejects_pc_underflow() {
        // A 3-byte access whose PC delta would drive the PC negative must
        // take the general path's error, not wrap: tag for size=8 write,
        // addr delta 0, pc delta zigzag(-1) = 1.
        let buf = [3u8 << 4 | Write.code() << 1, 0, 1];
        let mut dec = EventDecoder::new();
        let mut pos = 0;
        assert!(matches!(dec.decode(&buf, &mut pos), Err(CodecError::Invalid)));
        assert_eq!(dec.prev_pc, 0, "failed decode must not update delta state");
    }

    #[test]
    fn garbage_does_not_panic() {
        let mut dec = EventDecoder::new();
        for seed in 0..64u8 {
            let buf: Vec<u8> =
                (0..50u8).map(|i| seed.wrapping_mul(31).wrapping_add(i.wrapping_mul(17))).collect();
            let _ = dec.decode_all(&buf);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::event::MemAccess;
    use proptest::prelude::*;

    fn arb_event() -> impl Strategy<Value = Event> {
        prop_oneof![
            (any::<u64>(), 1u8..=16, 0u8..4, any::<u32>()).prop_map(|(addr, size, k, pc)| {
                Event::Access(MemAccess::new(addr, size, AccessKind::from_code(k).unwrap(), pc))
            }),
            any::<u32>().prop_map(Event::MutexAcquire),
            any::<u32>().prop_map(Event::MutexRelease),
        ]
    }

    proptest! {
        #[test]
        fn stream_roundtrip(events in prop::collection::vec(arb_event(), 0..300)) {
            let mut enc = EventEncoder::new();
            let mut buf = Vec::new();
            for e in &events {
                enc.encode(e, &mut buf);
            }
            let got = EventDecoder::new().decode_all(&buf).unwrap();
            prop_assert_eq!(got, events);
        }

        #[test]
        fn interval_split_roundtrip(
            a in prop::collection::vec(arb_event(), 0..100),
            b in prop::collection::vec(arb_event(), 0..100),
        ) {
            // Encode two intervals with a reset between; decode each slice
            // independently.
            let mut enc = EventEncoder::new();
            let mut buf = Vec::new();
            for e in &a { enc.encode(e, &mut buf); }
            let split = buf.len();
            enc.reset();
            for e in &b { enc.encode(e, &mut buf); }
            prop_assert_eq!(EventDecoder::new().decode_all(&buf[..split]).unwrap(), a);
            prop_assert_eq!(EventDecoder::new().decode_all(&buf[split..]).unwrap(), b);
        }

        #[test]
        fn decode_garbage_no_panic(buf in prop::collection::vec(any::<u8>(), 0..500)) {
            let _ = EventDecoder::new().decode_all(&buf);
        }

        /// Fast-path encodings are byte-identical to the general path for
        /// arbitrary event streams (the branch may only skip work, never
        /// change the stream).
        #[test]
        fn fast_path_stream_identical(events in prop::collection::vec(arb_event(), 0..300)) {
            let mut enc = EventEncoder::new();
            let mut buf = Vec::new();
            for e in &events {
                enc.encode(e, &mut buf);
            }
            prop_assert_eq!(buf, super::tests::encode_reference(&events));
        }
    }
}
