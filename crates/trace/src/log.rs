//! Per-thread log files: compressed frames of encoded events, addressed by
//! *uncompressed* byte offsets.
//!
//! The meta-data file locates each barrier interval's events by
//! `(data_begin, size)` in the uncompressed stream (Table I). Log files can
//! reach many gigabytes (§III-B), so the reader never materializes a whole
//! file: it streams frames forward, keeping only the window needed for the
//! currently requested range — the paper's streaming algorithm that reads
//! access information from log files in small chunks.

use std::io::{self, Read, Write};

use sword_compress::{FrameReader, FrameWriter};

/// Writes event blocks as compressed frames, tracking the uncompressed
/// offset that meta-data records reference.
#[derive(Debug)]
pub struct LogWriter<W: Write> {
    frames: FrameWriter<W>,
    uncompressed_offset: u64,
}

impl<W: Write> LogWriter<W> {
    /// Wraps `inner`.
    pub fn new(inner: W) -> Self {
        LogWriter { frames: FrameWriter::new(inner), uncompressed_offset: 0 }
    }

    /// Current uncompressed offset — the `data_begin` of the next byte
    /// written.
    pub fn offset(&self) -> u64 {
        self.uncompressed_offset
    }

    /// Compresses and writes one block (one flushed buffer). Empty blocks
    /// are skipped.
    pub fn write_block(&mut self, block: &[u8]) -> io::Result<()> {
        if block.is_empty() {
            return Ok(());
        }
        self.frames.write_frame(block)?;
        self.uncompressed_offset += block.len() as u64;
        Ok(())
    }

    /// Writes a frame already encoded by
    /// [`sword_compress::encode_frame_into`] — the hand-off point for
    /// compression worker pools that encode off the I/O thread. `raw_len`
    /// is the block's uncompressed length; empty blocks are skipped to
    /// match [`LogWriter::write_block`].
    pub fn write_encoded_block(&mut self, frame: &[u8], raw_len: u64) -> io::Result<()> {
        if raw_len == 0 {
            return Ok(());
        }
        self.frames.write_encoded_frame(frame, raw_len)?;
        self.uncompressed_offset += raw_len;
        Ok(())
    }

    /// Flushes the underlying writer.
    pub fn flush(&mut self) -> io::Result<()> {
        self.frames.flush()
    }

    /// Total uncompressed bytes accepted.
    pub fn raw_bytes(&self) -> u64 {
        self.frames.raw_bytes()
    }

    /// Total compressed bytes written downstream (headers included).
    pub fn written_bytes(&self) -> u64 {
        self.frames.written_bytes()
    }

    /// Achieved compression ratio.
    pub fn ratio(&self) -> f64 {
        self.frames.ratio()
    }

    /// Unwraps the underlying writer.
    pub fn into_inner(self) -> W {
        self.frames.into_inner()
    }
}

/// Streams uncompressed byte ranges out of a log file.
///
/// Ranges must be requested in non-decreasing `begin` order (the offline
/// analyzer visits each thread's barrier intervals in file order); the
/// reader holds only the bytes between the oldest still-needed offset and
/// the newest decompressed frame.
#[derive(Debug)]
pub struct LogReader<R: Read> {
    frames: FrameReader<R>,
    window: Vec<u8>,
    /// Uncompressed offset of `window[0]`.
    window_start: u64,
    eof: bool,
}

impl<R: Read> LogReader<R> {
    /// Wraps `inner`.
    pub fn new(inner: R) -> Self {
        LogReader {
            frames: FrameReader::new(inner),
            window: Vec::new(),
            window_start: 0,
            eof: false,
        }
    }

    /// Uncompressed offset of the oldest byte still readable; requests
    /// before it are rejected (the caller reopens the file to seek back).
    pub fn position(&self) -> u64 {
        self.window_start
    }

    /// Reads the uncompressed range `[begin, begin + len)` into `out`
    /// (appending). Requests must not go backwards past data already
    /// discarded.
    pub fn read_range(&mut self, begin: u64, len: u64, out: &mut Vec<u8>) -> io::Result<()> {
        let slice = self.range_ref(begin, len)?;
        out.extend_from_slice(slice);
        Ok(())
    }

    /// Like [`LogReader::read_range`], but hands back the range as a
    /// borrowed slice of the streaming window — the zero-copy read path.
    /// The slice is valid until the next call on this reader.
    pub fn range_ref(&mut self, begin: u64, len: u64) -> io::Result<&[u8]> {
        if len == 0 {
            return Ok(&[]);
        }
        if begin < self.window_start {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "log range {}..{} precedes streaming window at {}",
                    begin,
                    begin + len,
                    self.window_start
                ),
            ));
        }
        // Discard bytes before `begin`.
        let skip = (begin - self.window_start) as usize;
        if skip > 0 && skip <= self.window.len() {
            self.window.drain(..skip);
            self.window_start = begin;
        } else if skip > self.window.len() {
            // Skip whole frames; frames entirely before `begin` are
            // discarded without decompression (header-only reads).
            self.window_start += self.window.len() as u64;
            self.window.clear();
            while self.window_start < begin {
                let Some(raw_len) = self.frames.peek_raw_len()? else {
                    self.eof = true;
                    return Err(unexpected_eof(begin, len));
                };
                if self.window_start + raw_len as u64 <= begin {
                    self.frames.skip_frame()?;
                    self.window_start += raw_len as u64;
                } else {
                    self.frames.read_frame(&mut self.window)?;
                    let inner_skip = (begin - self.window_start) as usize;
                    self.window.drain(..inner_skip);
                    self.window_start = begin;
                }
            }
        }
        // Fill until the window covers the request.
        let end = begin + len;
        while self.window_start + (self.window.len() as u64) < end {
            if self.frames.read_frame(&mut self.window)?.is_none() {
                self.eof = true;
                return Err(unexpected_eof(begin, len));
            }
        }
        let lo = (begin - self.window_start) as usize;
        Ok(&self.window[lo..lo + len as usize])
    }

    /// Decompresses the remainder of the stream into `out`; returns bytes
    /// read.
    pub fn read_to_end(&mut self, out: &mut Vec<u8>) -> io::Result<u64> {
        let mut total = self.window.len() as u64;
        out.append(&mut self.window);
        loop {
            let before = out.len();
            match self.frames.read_frame(out)? {
                None => break,
                Some(_) => total += (out.len() - before) as u64,
            }
        }
        self.eof = true;
        Ok(total)
    }
}

fn unexpected_eof(begin: u64, len: u64) -> io::Error {
    io::Error::new(
        io::ErrorKind::UnexpectedEof,
        format!("log ended before range {}..{}", begin, begin + len),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_log(blocks: &[Vec<u8>]) -> Vec<u8> {
        let mut w = LogWriter::new(Vec::new());
        for b in blocks {
            w.write_block(b).unwrap();
        }
        w.into_inner()
    }

    #[test]
    fn offsets_track_uncompressed_bytes() {
        let mut w = LogWriter::new(Vec::new());
        assert_eq!(w.offset(), 0);
        w.write_block(&[1; 100]).unwrap();
        assert_eq!(w.offset(), 100);
        w.write_block(&[]).unwrap();
        assert_eq!(w.offset(), 100, "empty blocks are no-ops");
        w.write_block(&[2; 50]).unwrap();
        assert_eq!(w.offset(), 150);
        assert_eq!(w.raw_bytes(), 150);
    }

    #[test]
    fn encoded_blocks_interleave_with_plain_blocks() {
        // A stream mixing inline-compressed and pre-encoded frames must be
        // indistinguishable to the reader, with offsets tracking raw bytes.
        let a = vec![1u8; 800];
        let b: Vec<u8> = (0..900u32).map(|i| (i * 13) as u8).collect();
        let c = vec![3u8; 700];
        let mut w = LogWriter::new(Vec::new());
        w.write_block(&a).unwrap();
        let mut comp = sword_compress::Compressor::new();
        let mut frame = Vec::new();
        sword_compress::encode_frame_into(&mut comp, &b, &mut frame);
        w.write_encoded_block(&frame, b.len() as u64).unwrap();
        w.write_encoded_block(&[], 0).unwrap(); // empty: no-op
        w.write_block(&c).unwrap();
        assert_eq!(w.offset(), (a.len() + b.len() + c.len()) as u64);
        assert_eq!(w.raw_bytes(), w.offset());
        let log = w.into_inner();
        let mut r = LogReader::new(&log[..]);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, [a, b, c].concat());
    }

    #[test]
    fn read_exact_ranges() {
        let data: Vec<u8> = (0..255u8).cycle().take(10_000).collect();
        let log = build_log(&data.chunks(700).map(|c| c.to_vec()).collect::<Vec<_>>());
        let mut r = LogReader::new(&log[..]);
        let mut out = Vec::new();
        r.read_range(0, 100, &mut out).unwrap();
        assert_eq!(out, data[..100]);
        out.clear();
        // Skip ahead across frame boundaries.
        r.read_range(5000, 2000, &mut out).unwrap();
        assert_eq!(out, data[5000..7000]);
        out.clear();
        // Contiguous follow-up.
        r.read_range(7000, 3000, &mut out).unwrap();
        assert_eq!(out, data[7000..10_000]);
    }

    #[test]
    fn overlapping_forward_ranges() {
        let data: Vec<u8> = (0..200u8).collect();
        let log = build_log(std::slice::from_ref(&data));
        let mut r = LogReader::new(&log[..]);
        let mut out = Vec::new();
        r.read_range(10, 50, &mut out).unwrap();
        out.clear();
        // Overlaps previous range's tail — allowed as long as begin does
        // not go before the discarded prefix.
        r.read_range(30, 50, &mut out).unwrap();
        assert_eq!(out, data[30..80]);
    }

    #[test]
    fn backwards_range_rejected() {
        let log = build_log(&[vec![0; 1000]]);
        let mut r = LogReader::new(&log[..]);
        let mut out = Vec::new();
        r.read_range(500, 10, &mut out).unwrap();
        assert!(r.read_range(100, 10, &mut out).is_err());
    }

    #[test]
    fn range_past_eof_rejected() {
        let log = build_log(&[vec![0; 100]]);
        let mut r = LogReader::new(&log[..]);
        let mut out = Vec::new();
        let err = r.read_range(50, 100, &mut out).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn read_to_end_collects_everything() {
        let blocks: Vec<Vec<u8>> = (0..5).map(|i| vec![i as u8; 1000]).collect();
        let log = build_log(&blocks);
        let mut r = LogReader::new(&log[..]);
        let mut out = Vec::new();
        assert_eq!(r.read_to_end(&mut out).unwrap(), 5000);
        assert_eq!(out, blocks.concat());
    }

    #[test]
    fn read_to_end_after_partial_reads() {
        let data: Vec<u8> = (0..100u8).collect();
        let log = build_log(std::slice::from_ref(&data));
        let mut r = LogReader::new(&log[..]);
        let mut out = Vec::new();
        r.read_range(0, 10, &mut out).unwrap();
        out.clear();
        let n = r.read_to_end(&mut out).unwrap();
        assert_eq!(n, 100); // window still held the full frame
        assert_eq!(out, data);
    }

    #[test]
    fn zero_length_range_is_noop() {
        let log = build_log(&[vec![9; 10]]);
        let mut r = LogReader::new(&log[..]);
        let mut out = Vec::new();
        r.read_range(3, 0, &mut out).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn compresses_event_like_data() {
        // Delta-encoded event streams are byte-repetitive; expect >2x.
        let block: Vec<u8> = (0..25_000u32).flat_map(|_| [0x31u8, 0x10, 0x02]).collect();
        let mut w = LogWriter::new(Vec::new());
        w.write_block(&block).unwrap();
        assert!(w.ratio() > 10.0, "ratio {}", w.ratio());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn arbitrary_forward_ranges(
            blocks in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..800), 1..10),
            cuts in prop::collection::vec(0.0f64..1.0, 1..12),
        ) {
            let data: Vec<u8> = blocks.concat();
            let mut w = LogWriter::new(Vec::new());
            for b in &blocks {
                w.write_block(b).unwrap();
            }
            let log = w.into_inner();
            let mut r = LogReader::new(&log[..]);
            // Sorted, in-bounds (begin, len) requests.
            let mut begins: Vec<u64> = cuts.iter()
                .map(|f| (f * data.len() as f64) as u64)
                .collect();
            begins.sort_unstable();
            let mut prev_end = 0u64;
            for begin in begins {
                let begin = begin.max(prev_end); // keep strictly forward
                let max_len = data.len() as u64 - begin;
                let len = max_len.min(64);
                let mut out = Vec::new();
                r.read_range(begin, len, &mut out).unwrap();
                prop_assert_eq!(&out[..], &data[begin as usize..(begin + len) as usize]);
                prev_end = begin;
            }
        }
    }
}
