//! Incremental metadata reading for in-progress sessions.
//!
//! The collector publishes watermarked metadata snapshots: each
//! `thread_<tid>.meta` rewrite (atomic, via tmp+rename) covers exactly
//! the barrier intervals whose log bytes are durably flushed, and each
//! publish is a *prefix extension* of the previous one — rows are only
//! ever appended. [`SessionPoller`] exploits that: every [`poll`]
//! re-reads the small metadata files and returns only the rows and
//! regions not seen before, so a live analyzer can ingest new barrier
//! intervals while the run is still executing.
//!
//! [`poll`]: SessionPoller::poll

use std::collections::HashMap;
use std::fs::File;
use std::io::{self, BufReader};

use crate::event::ThreadId;
use crate::meta::{read_meta, read_regions, MetaRecord, RegionRecord};
use crate::session::{LiveStatus, SessionDir};

/// What one poll of an in-progress session produced.
#[derive(Clone, Debug, Default)]
pub struct SessionDelta {
    /// Newly published barrier-interval rows, per thread, in file order.
    /// Threads appear in ascending tid order; a thread with no new rows
    /// is omitted.
    pub new_rows: Vec<(ThreadId, Vec<MetaRecord>)>,
    /// Newly published region records.
    pub new_regions: Vec<RegionRecord>,
    /// The watermark status at poll time (`None` before the first
    /// publish of a live session, and for sessions written without live
    /// publishing).
    pub status: Option<LiveStatus>,
}

impl SessionDelta {
    /// Total new barrier intervals in this delta.
    pub fn interval_count(&self) -> usize {
        self.new_rows.iter().map(|(_, rows)| rows.len()).sum()
    }

    /// `true` when the poll surfaced nothing new.
    pub fn is_empty(&self) -> bool {
        self.new_rows.is_empty() && self.new_regions.is_empty()
    }
}

/// Re-pollable metadata reader over a [`SessionDir`].
///
/// Safe against concurrent publishing because published files are
/// replaced atomically and only ever extended; a poll that interleaves
/// with a publish sees either the old or the new snapshot of each file,
/// both of which are consistent prefixes of the final metadata.
#[derive(Debug)]
pub struct SessionPoller {
    dir: SessionDir,
    /// Meta rows already returned, per thread.
    consumed: HashMap<ThreadId, usize>,
    /// Region records already returned.
    regions_consumed: usize,
    /// Polls performed.
    polls: u64,
}

impl SessionPoller {
    /// Creates a poller that has seen nothing yet.
    pub fn new(dir: &SessionDir) -> Self {
        SessionPoller { dir: dir.clone(), consumed: HashMap::new(), regions_consumed: 0, polls: 0 }
    }

    /// The session being polled.
    pub fn dir(&self) -> &SessionDir {
        &self.dir
    }

    /// Number of polls performed so far.
    pub fn polls(&self) -> u64 {
        self.polls
    }

    /// Threads with at least one returned row.
    pub fn thread_count(&self) -> usize {
        self.consumed.len()
    }

    /// Total rows returned so far.
    pub fn rows_seen(&self) -> usize {
        self.consumed.values().sum()
    }

    /// Reads the current metadata snapshot and returns everything not
    /// returned by earlier polls.
    ///
    /// Errors if a metadata file *shrank* between polls — that means the
    /// directory was rewritten by a different run mid-watch, and any
    /// incremental state derived from it is invalid.
    pub fn poll(&mut self) -> io::Result<SessionDelta> {
        self.polls += 1;
        // Status first: a publish completing after this read only delays
        // rows to the next poll, it never loses them.
        let status = self.dir.read_live()?;
        let mut delta = SessionDelta { status, ..SessionDelta::default() };
        for tid in self.dir.thread_ids()? {
            let rows = read_meta(BufReader::new(File::open(self.dir.thread_meta(tid))?))?;
            let seen = self.consumed.entry(tid).or_insert(0);
            if rows.len() < *seen {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "thread {tid} metadata shrank from {} to {} rows: session was rewritten mid-watch",
                        seen,
                        rows.len()
                    ),
                ));
            }
            if rows.len() > *seen {
                delta.new_rows.push((tid, rows[*seen..].to_vec()));
                *seen = rows.len();
            }
        }
        if self.dir.regions_path().exists() {
            let regions = read_regions(BufReader::new(File::open(self.dir.regions_path())?))?;
            if regions.len() < self.regions_consumed {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "region table shrank: session was rewritten mid-watch",
                ));
            }
            if regions.len() > self.regions_consumed {
                delta.new_regions = regions[self.regions_consumed..].to_vec();
                self.regions_consumed = regions.len();
            }
        }
        Ok(delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> SessionDir {
        let dir: PathBuf =
            std::env::temp_dir().join(format!("sword-trace-poll-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let s = SessionDir::new(dir);
        s.create().unwrap();
        s
    }

    fn row(pid: u64, bid: u32, offset: u64, begin: u64, size: u64) -> String {
        format!("{pid}\t-\t{bid}\t{offset}\t2\t1\t{begin}\t{size}\n")
    }

    #[test]
    fn incremental_rows_surface_once() {
        let s = tmp("inc");
        fs::write(s.thread_meta(0), row(0, 0, 0, 0, 10)).unwrap();
        fs::write(s.thread_meta(1), "").unwrap();
        let mut p = SessionPoller::new(&s);
        let d1 = p.poll().unwrap();
        assert_eq!(d1.interval_count(), 1);
        assert_eq!(d1.new_rows[0].0, 0);
        // Nothing new: empty delta.
        let d2 = p.poll().unwrap();
        assert!(d2.is_empty());
        // Appending extends the prefix; only the new rows come back.
        fs::write(s.thread_meta(0), format!("{}{}", row(0, 0, 0, 0, 10), row(0, 1, 2, 10, 5)))
            .unwrap();
        fs::write(s.thread_meta(1), row(0, 0, 1, 0, 7)).unwrap();
        let d3 = p.poll().unwrap();
        assert_eq!(d3.interval_count(), 2);
        assert_eq!(d3.new_rows.len(), 2);
        assert_eq!(d3.new_rows[0].1[0].bid, 1);
        assert_eq!(p.rows_seen(), 3);
        assert_eq!(p.thread_count(), 2);
        assert_eq!(p.polls(), 3);
        fs::remove_dir_all(s.path()).unwrap();
    }

    #[test]
    fn regions_and_status_flow_through() {
        let s = tmp("regions");
        fs::write(s.thread_meta(0), "").unwrap();
        let mut p = SessionPoller::new(&s);
        assert_eq!(p.poll().unwrap().status, None);
        fs::write(s.regions_path(), "0\t-\t1\t2\t0,1\n").unwrap();
        s.write_live(LiveStatus { generation: 1, finished: false }).unwrap();
        let d = p.poll().unwrap();
        assert_eq!(d.new_regions.len(), 1);
        assert_eq!(d.status, Some(LiveStatus { generation: 1, finished: false }));
        fs::write(s.regions_path(), "0\t-\t1\t2\t0,1\n1\t0\t2\t2\t0,1,0,2\n").unwrap();
        s.write_live(LiveStatus { generation: 2, finished: true }).unwrap();
        let d = p.poll().unwrap();
        assert_eq!(d.new_regions.len(), 1);
        assert_eq!(d.new_regions[0].pid, 1);
        assert!(d.status.unwrap().finished);
        fs::remove_dir_all(s.path()).unwrap();
    }

    #[test]
    fn shrinking_metadata_is_an_error() {
        let s = tmp("shrink");
        fs::write(s.thread_meta(0), format!("{}{}", row(0, 0, 0, 0, 4), row(0, 1, 2, 4, 4)))
            .unwrap();
        let mut p = SessionPoller::new(&s);
        p.poll().unwrap();
        fs::write(s.thread_meta(0), row(0, 0, 0, 0, 4)).unwrap();
        assert!(p.poll().is_err(), "prefix property violated must error");
        fs::remove_dir_all(s.path()).unwrap();
    }

    #[test]
    fn corrupt_rows_error_not_panic() {
        let s = tmp("corrupt");
        fs::write(s.thread_meta(0), "garbage\tnot\ta\trow\n").unwrap();
        let mut p = SessionPoller::new(&s);
        assert!(p.poll().is_err());
        fs::remove_dir_all(s.path()).unwrap();
    }
}
