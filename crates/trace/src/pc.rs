//! Program-counter interning.
//!
//! The paper's instrumentation records a program counter per access and its
//! race reports point at source lines. Our instrumentation substitute
//! interns `file:line` source locations to dense u32 ids; the table is
//! persisted in the session directory so the offline analyzer can map ids
//! in race reports back to locations.

use std::collections::HashMap;
use std::fmt;
use std::io::{self, BufRead, Write};

use crate::event::PcId;

/// A `file:line` source location.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SourceLoc {
    /// Source file path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
}

impl SourceLoc {
    /// Convenience constructor.
    pub fn new(file: impl Into<String>, line: u32) -> Self {
        SourceLoc { file: file.into(), line }
    }
}

impl fmt::Display for SourceLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.file, self.line)
    }
}

/// Bidirectional map between [`SourceLoc`]s and dense [`PcId`]s.
#[derive(Clone, Debug, Default)]
pub struct PcTable {
    locs: Vec<SourceLoc>,
    ids: HashMap<SourceLoc, PcId>,
}

impl PcTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of interned locations.
    pub fn len(&self) -> usize {
        self.locs.len()
    }

    /// `true` when nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.locs.is_empty()
    }

    /// Interns a location, returning its stable id.
    pub fn intern(&mut self, file: &str, line: u32) -> PcId {
        if let Some(&id) = self.ids.get(&SourceLoc { file: file.to_string(), line }) {
            return id;
        }
        let loc = SourceLoc::new(file, line);
        let id = self.locs.len() as PcId;
        self.locs.push(loc.clone());
        self.ids.insert(loc, id);
        id
    }

    /// Resolves an id back to its location.
    pub fn resolve(&self, id: PcId) -> Option<&SourceLoc> {
        self.locs.get(id as usize)
    }

    /// Human-readable form of an id; never fails (unknown ids are shown as
    /// `pc#N`).
    pub fn display(&self, id: PcId) -> String {
        match self.resolve(id) {
            Some(loc) => loc.to_string(),
            None => format!("pc#{id}"),
        }
    }

    /// Serializes the table (`id \t line \t file`).
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        for (id, loc) in self.locs.iter().enumerate() {
            writeln!(w, "{}\t{}\t{}", id, loc.line, loc.file)?;
        }
        Ok(())
    }

    /// Reads a table written by [`PcTable::write_to`]. Ids must be dense
    /// and in order.
    pub fn read_from<R: BufRead>(r: R) -> io::Result<Self> {
        let mut table = PcTable::new();
        for line in r.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let mut it = line.splitn(3, '\t');
            let bad = || io::Error::new(io::ErrorKind::InvalidData, "bad pc table line");
            let id: usize = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
            let line_no: u32 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
            let file = it.next().ok_or_else(bad)?;
            if id != table.locs.len() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("pc table ids not dense at {id}"),
                ));
            }
            table.intern(file, line_no);
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = PcTable::new();
        let a = t.intern("foo.rs", 10);
        let b = t.intern("foo.rs", 10);
        let c = t.intern("foo.rs", 11);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn resolve_and_display() {
        let mut t = PcTable::new();
        let id = t.intern("src/kernel.rs", 42);
        assert_eq!(t.resolve(id).unwrap().to_string(), "src/kernel.rs:42");
        assert_eq!(t.display(id), "src/kernel.rs:42");
        assert_eq!(t.display(999), "pc#999");
    }

    #[test]
    fn serialization_roundtrip() {
        let mut t = PcTable::new();
        t.intern("a.rs", 1);
        t.intern("b/with tab-free path.rs", 200);
        t.intern("a.rs", 3);
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let t2 = PcTable::read_from(&buf[..]).unwrap();
        assert_eq!(t2.len(), 3);
        for id in 0..3 {
            assert_eq!(t.resolve(id), t2.resolve(id));
        }
    }

    #[test]
    fn read_rejects_non_dense() {
        let text = "1\t10\tfoo.rs\n";
        assert!(PcTable::read_from(text.as_bytes()).is_err());
    }

    #[test]
    fn empty_table() {
        let t = PcTable::new();
        assert!(t.is_empty());
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        assert!(PcTable::read_from(&buf[..]).unwrap().is_empty());
    }
}
