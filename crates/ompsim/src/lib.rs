//! An OpenMP-like fork-join runtime with an OMPT-like tool interface.
//!
//! SWORD instruments OpenMP programs through two mechanisms the Rust
//! ecosystem does not have: an LLVM pass over loads/stores in parallel
//! regions, and the OMPT callback interface of the OpenMP runtime. This
//! crate is the substitution (see DESIGN.md): a fork-join runtime whose
//! *observable event structure* — parallel regions (including nested
//! ones), implicit and explicit barriers, worksharing with and without
//! `nowait`, critical sections and locks, atomics — matches what OMPT
//! exposes, plus *tracked memory* whose element accesses invoke the tool
//! callback exactly as instrumented loads/stores would.
//!
//! Key pieces:
//!
//! * [`OmpSim`] — the runtime; owns id allocation, the PC interner, the
//!   virtual address space, and the optional [`Tool`].
//! * [`Ctx`] — the per-thread execution context handed to region bodies;
//!   provides `parallel`, `barrier`, `for_static[_nowait]`, `critical`,
//!   `single`/`master`, tracked reads/writes and atomics.
//! * [`Tool`] — the OMPT-like callback surface implemented by the SWORD
//!   collector and the ARCHER baseline.
//! * [`TrackedBuf`] — tracked memory with *virtual* addresses, so declared
//!   footprints may exceed physical RAM (how we reproduce the paper's
//!   "90% of node memory" runs on a laptop-scale machine).
//! * [`Sequencer`] — deterministic cross-thread ordering used by workloads
//!   to pin the schedules of Figure 1 and the shadow-eviction example.
//!
//! Threads are pooled logically: worker ids are reused across successive
//! parallel regions (LIFO), mirroring how a real OpenMP runtime reuses its
//! pool — this is what keeps "one log file per thread" bounded for
//! workloads with hundreds of thousands of regions (LULESH).
//!
//! # Example
//!
//! ```
//! use sword_ompsim::OmpSim;
//!
//! let sim = OmpSim::new(); // untooled: a baseline run
//! let a = sim.alloc::<f64>(1000, 1.0);
//! let partials = sim.alloc::<f64>(4, 0.0);
//! let total = sim.alloc::<f64>(1, 0.0);
//! let sum = sim.run(|ctx| {
//!     let result = std::sync::Mutex::new(0.0);
//!     ctx.parallel(4, |w| {
//!         let mut local = 0.0;
//!         w.for_static_nowait(0..1000, |i| {
//!             local += w.read(&a, i);
//!         });
//!         let s = w.reduce_sum(&partials, &total, local);
//!         w.master(|| *result.lock().unwrap() = s);
//!     });
//!     result.into_inner().unwrap()
//! });
//! assert_eq!(sum, 1000.0);
//! ```

#![forbid(unsafe_code)]

mod memory;
mod runtime;
mod sequencer;
mod tool;

pub use memory::{TrackedBuf, TrackedValue};
pub use runtime::{
    dynamic_chunks, guided_chunks, Ctx, DepMode, OmpLock, OmpSim, OrderedLoop, SimConfig,
};
pub use sequencer::Sequencer;
pub use sword_trace::{AccessKind, MemAccess, MutexId, PcId, RegionId, ThreadId};
pub use tool::{NullTool, ParallelBeginInfo, TaskCreateInfo, TaskUid, ThreadContext, Tool};
