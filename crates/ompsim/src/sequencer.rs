//! Deterministic cross-thread ordering.
//!
//! Several of the paper's phenomena are *schedule-dependent*: Figure 1's
//! happens-before masking occurs only under interleaving (b); the shadow
//! eviction example of §II needs the write to land before the reads. A
//! [`Sequencer`] lets workloads pin such schedules: threads take numbered
//! turns on a shared ticket counter, so the pinned ordering is identical
//! on every run — which is what makes the detection comparisons in the
//! benches reproducible.
//!
//! The sequencer is *workload-level* synchronization only: it is invisible
//! to the tool callbacks (no mutex events), so it orders real time without
//! creating happens-before edges the detectors could observe. This mirrors
//! the paper's setting, where schedule artifacts (OS timing) order events
//! without any program synchronization. Workloads that need a *visible*
//! HB edge (Figure 1(b)'s lock) use `critical`/locks instead.

use parking_lot::{Condvar, Mutex};

/// A ticket-ordered turnstile.
#[derive(Debug, Default)]
pub struct Sequencer {
    state: Mutex<u64>,
    cv: Condvar,
}

impl Sequencer {
    /// A sequencer at ticket 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Blocks until the counter reaches `ticket`.
    pub fn wait_for(&self, ticket: u64) {
        let mut cur = self.state.lock();
        while *cur < ticket {
            self.cv.wait(&mut cur);
        }
    }

    /// Advances the counter by one and wakes waiters. Saturating, so
    /// advancing a poisoned sequencer stays poisoned instead of wrapping.
    pub fn advance(&self) {
        let mut cur = self.state.lock();
        *cur = cur.saturating_add(1);
        self.cv.notify_all();
    }

    /// Releases every present and future waiter permanently by jumping the
    /// counter to `u64::MAX`. Used when a turn-taking participant dies
    /// (panics) so that siblings blocked on later tickets drain and the
    /// enclosing join can observe the original failure instead of
    /// deadlocking.
    pub fn poison(&self) {
        let mut cur = self.state.lock();
        *cur = u64::MAX;
        self.cv.notify_all();
    }

    /// Current ticket value.
    pub fn current(&self) -> u64 {
        *self.state.lock()
    }

    /// Runs `f` as turn `ticket`: waits for the counter to reach it, runs,
    /// then advances. Using consecutive tickets across threads serializes
    /// the enclosed actions in ticket order.
    pub fn turn<R>(&self, ticket: u64, f: impl FnOnce() -> R) -> R {
        self.wait_for(ticket);
        let r = f();
        self.advance();
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn turns_serialize_in_ticket_order() {
        let seq = Sequencer::new();
        let order = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            // Spawn in reverse so OS scheduling alone would likely invert.
            for t in (0..8u64).rev() {
                let seq = &seq;
                let order = &order;
                s.spawn(move || {
                    seq.turn(t, || order.lock().push(t));
                });
            }
        });
        assert_eq!(*order.lock(), (0..8).collect::<Vec<_>>());
        assert_eq!(seq.current(), 8);
    }

    #[test]
    fn wait_for_zero_never_blocks() {
        let seq = Sequencer::new();
        seq.wait_for(0);
    }

    #[test]
    fn interleaving_is_pinned_exactly() {
        // Pin: A writes, then B reads, then A writes again.
        let seq = Sequencer::new();
        let log = Mutex::new(String::new());
        std::thread::scope(|s| {
            let seq = &seq;
            let log = &log;
            s.spawn(move || {
                seq.turn(0, || log.lock().push('a'));
                seq.turn(2, || log.lock().push('c'));
            });
            s.spawn(move || {
                seq.turn(1, || log.lock().push('b'));
            });
        });
        assert_eq!(*log.lock(), "abc");
    }

    #[test]
    fn poison_releases_all_waiters_and_saturates() {
        let seq = Sequencer::new();
        std::thread::scope(|s| {
            let seq = &seq;
            for t in [5u64, 900, u64::MAX] {
                s.spawn(move || seq.wait_for(t));
            }
            s.spawn(move || seq.poison());
        });
        assert_eq!(seq.current(), u64::MAX);
        seq.advance();
        assert_eq!(seq.current(), u64::MAX, "advance past poison must saturate");
        seq.wait_for(u64::MAX);
    }

    #[test]
    fn turn_returns_value() {
        let seq = Sequencer::new();
        let n = AtomicUsize::new(0);
        let v = seq.turn(0, || {
            n.fetch_add(1, Ordering::Relaxed);
            42
        });
        assert_eq!(v, 42);
        assert_eq!(n.load(Ordering::Relaxed), 1);
    }
}
