//! Tracked memory: the instrumentation substitute.
//!
//! A [`TrackedBuf`] is an array whose element accesses (performed through a
//! [`crate::Ctx`]) invoke the tool's `access` callback with the same tuple
//! an LLVM-instrumented load/store would deliver: virtual address, size,
//! read/write, atomicity, program counter.
//!
//! Two deliberate design points:
//!
//! * **Virtual addresses.** Buffers live in a per-runtime virtual address
//!   space handed out by a bump allocator, so addresses are deterministic
//!   across runs and a buffer's *declared* footprint may exceed what is
//!   physically allocated ([`TrackedBuf::phantom`] backs a huge declared
//!   array with a small real one, indices wrapping). This is how the
//!   paper's runs that fill 90% of a 32 GB node are reproduced on a small
//!   machine: detectors only ever see the address stream and the declared
//!   footprint.
//! * **Defined behaviour under racy workloads.** The benchmark programs
//!   *race on purpose*. Element storage is `AtomicU64` accessed with
//!   `Relaxed` ordering, so the Rust program itself has no undefined
//!   behaviour while the *model-level* accesses remain plain reads and
//!   writes that the detectors legitimately flag.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Values storable in tracked memory. The virtual access size is
/// `SIZE_BYTES`; storage is always a 64-bit atomic cell.
pub trait TrackedValue: Copy + Send + Sync + 'static {
    /// Size in bytes of the *modeled* access (what instrumentation
    /// reports).
    const SIZE_BYTES: u8;
    /// Encodes into cell bits.
    fn to_bits(self) -> u64;
    /// Decodes from cell bits.
    fn from_bits(bits: u64) -> Self;
}

macro_rules! impl_tracked_int {
    ($($t:ty => $size:expr),* $(,)?) => {$(
        impl TrackedValue for $t {
            const SIZE_BYTES: u8 = $size;
            #[inline]
            fn to_bits(self) -> u64 {
                self as u64
            }
            #[inline]
            fn from_bits(bits: u64) -> Self {
                bits as $t
            }
        }
    )*};
}

impl_tracked_int!(u8 => 1, u16 => 2, u32 => 4, u64 => 8, usize => 8);

macro_rules! impl_tracked_signed {
    ($($t:ty => $size:expr),* $(,)?) => {$(
        impl TrackedValue for $t {
            const SIZE_BYTES: u8 = $size;
            #[inline]
            fn to_bits(self) -> u64 {
                self as u64 // sign-extends then truncates consistently
            }
            #[inline]
            fn from_bits(bits: u64) -> Self {
                bits as $t
            }
        }
    )*};
}

impl_tracked_signed!(i8 => 1, i16 => 2, i32 => 4, i64 => 8);

impl TrackedValue for f64 {
    const SIZE_BYTES: u8 = 8;
    #[inline]
    fn to_bits(self) -> u64 {
        self.to_bits()
    }
    #[inline]
    fn from_bits(bits: u64) -> Self {
        f64::from_bits(bits)
    }
}

impl TrackedValue for f32 {
    const SIZE_BYTES: u8 = 4;
    #[inline]
    fn to_bits(self) -> u64 {
        self.to_bits() as u64
    }
    #[inline]
    fn from_bits(bits: u64) -> Self {
        f32::from_bits(bits as u32)
    }
}

impl TrackedValue for bool {
    const SIZE_BYTES: u8 = 1;
    #[inline]
    fn to_bits(self) -> u64 {
        self as u64
    }
    #[inline]
    fn from_bits(bits: u64) -> Self {
        bits != 0
    }
}

/// A tracked array in the runtime's virtual address space.
///
/// Created by [`crate::OmpSim::alloc`] / [`crate::OmpSim::alloc_phantom`].
/// Accesses *through a worker context* are instrumented; the `*_seq`
/// methods are uninstrumented (initialization / verification code, which
/// the paper's instrumentation also skips outside parallel regions).
pub struct TrackedBuf<T: TrackedValue> {
    base: u64,
    declared_len: u64,
    cells: Vec<AtomicU64>,
    /// Live declared-bytes accounting shared with the runtime, decremented
    /// on drop.
    footprint: Arc<AtomicU64>,
    _marker: std::marker::PhantomData<T>,
}

impl<T: TrackedValue> TrackedBuf<T> {
    pub(crate) fn new_internal(
        base: u64,
        declared_len: u64,
        real_len: usize,
        init: T,
        footprint: Arc<AtomicU64>,
    ) -> Self {
        assert!(real_len > 0, "tracked buffer needs at least one real element");
        assert!(declared_len >= real_len as u64);
        let cells = (0..real_len).map(|_| AtomicU64::new(init.to_bits())).collect();
        footprint.fetch_add(declared_len * T::SIZE_BYTES as u64, Ordering::Relaxed);
        TrackedBuf { base, declared_len, cells, footprint, _marker: std::marker::PhantomData }
    }

    /// Declared (virtual) element count.
    #[inline]
    pub fn len(&self) -> u64 {
        self.declared_len
    }

    /// `true` when the declared length is zero (never: construction
    /// requires ≥ 1 element).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.declared_len == 0
    }

    /// Physically allocated element count (≤ `len()`; smaller only for
    /// phantom buffers).
    #[inline]
    pub fn real_len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when the buffer's declared footprint exceeds its physical
    /// backing.
    #[inline]
    pub fn is_phantom(&self) -> bool {
        (self.real_len() as u64) < self.declared_len
    }

    /// First virtual byte address.
    #[inline]
    pub fn base_addr(&self) -> u64 {
        self.base
    }

    /// Virtual byte address of element `i`.
    #[inline]
    pub fn addr_of(&self, i: u64) -> u64 {
        debug_assert!(i < self.declared_len, "index {i} out of {}", self.declared_len);
        self.base + i * T::SIZE_BYTES as u64
    }

    /// Declared footprint in bytes.
    #[inline]
    pub fn declared_bytes(&self) -> u64 {
        self.declared_len * T::SIZE_BYTES as u64
    }

    #[inline]
    fn cell(&self, i: u64) -> &AtomicU64 {
        debug_assert!(i < self.declared_len, "index {i} out of {}", self.declared_len);
        // Phantom buffers wrap indices onto the real backing.
        &self.cells[(i % self.cells.len() as u64) as usize]
    }

    /// Raw load (used by both instrumented and sequential paths).
    #[inline]
    pub(crate) fn load(&self, i: u64) -> T {
        T::from_bits(self.cell(i).load(Ordering::Relaxed))
    }

    /// Raw store.
    #[inline]
    pub(crate) fn store(&self, i: u64, v: T) {
        self.cell(i).store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raw compare-exchange based read-modify-write; returns the previous
    /// value.
    #[inline]
    pub(crate) fn rmw(&self, i: u64, f: impl Fn(T) -> T) -> T {
        let cell = self.cell(i);
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let next = f(T::from_bits(cur)).to_bits();
            match cell.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => return T::from_bits(cur),
                Err(now) => cur = now,
            }
        }
    }

    /// Uninstrumented read — setup/verification outside parallel regions.
    #[inline]
    pub fn get_seq(&self, i: u64) -> T {
        self.load(i)
    }

    /// Uninstrumented write.
    #[inline]
    pub fn set_seq(&self, i: u64, v: T) {
        self.store(i, v);
    }

    /// Uninstrumented fill of every *real* element.
    pub fn fill_seq(&self, v: T) {
        for c in &self.cells {
            c.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Uninstrumented snapshot of the real backing (for assertions in
    /// tests/examples).
    pub fn snapshot(&self) -> Vec<T> {
        self.cells.iter().map(|c| T::from_bits(c.load(Ordering::Relaxed))).collect()
    }
}

impl<T: TrackedValue> Drop for TrackedBuf<T> {
    fn drop(&mut self) {
        self.footprint.fetch_sub(self.declared_bytes(), Ordering::Relaxed);
    }
}

impl<T: TrackedValue> std::fmt::Debug for TrackedBuf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrackedBuf")
            .field("base", &format_args!("{:#x}", self.base))
            .field("declared_len", &self.declared_len)
            .field("real_len", &self.real_len())
            .field("elt_size", &T::SIZE_BYTES)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf<T: TrackedValue>(base: u64, len: u64, init: T) -> TrackedBuf<T> {
        TrackedBuf::new_internal(base, len, len as usize, init, Arc::new(AtomicU64::new(0)))
    }

    #[test]
    fn value_roundtrips() {
        assert_eq!(f64::from_bits(TrackedValue::to_bits(-1.5f64)), -1.5);
        assert_eq!(<i32 as TrackedValue>::from_bits((-7i32).to_bits()), -7);
        assert_eq!(<i64 as TrackedValue>::from_bits((i64::MIN).to_bits()), i64::MIN);
        assert_eq!(<u8 as TrackedValue>::from_bits(300u64 as u8 as u64), 44);
        assert!(<bool as TrackedValue>::from_bits(true.to_bits()));
        assert_eq!(<f32 as TrackedValue>::from_bits(TrackedValue::to_bits(2.5f32)), 2.5);
    }

    #[test]
    fn addresses_are_packed_by_element_size() {
        let b = buf::<u32>(0x1000, 10, 0);
        assert_eq!(b.addr_of(0), 0x1000);
        assert_eq!(b.addr_of(1), 0x1004);
        assert_eq!(b.addr_of(9), 0x1024);
        let d = buf::<f64>(0x2000, 4, 0.0);
        assert_eq!(d.addr_of(3), 0x2018);
    }

    #[test]
    fn load_store_rmw() {
        let b = buf::<i64>(0, 8, 0);
        b.store(3, -42);
        assert_eq!(b.load(3), -42);
        let prev = b.rmw(3, |v| v + 2);
        assert_eq!(prev, -42);
        assert_eq!(b.load(3), -40);
    }

    #[test]
    fn phantom_wraps_indices() {
        let fp = Arc::new(AtomicU64::new(0));
        let b = TrackedBuf::<f64>::new_internal(0x1000, 1_000_000, 64, 1.0, fp.clone());
        assert!(b.is_phantom());
        assert_eq!(b.len(), 1_000_000);
        assert_eq!(b.real_len(), 64);
        // Virtual addresses span the full declared range…
        assert_eq!(b.addr_of(999_999), 0x1000 + 999_999 * 8);
        // …while storage wraps.
        b.store(0, 7.0);
        assert_eq!(b.load(64), 7.0);
        // Declared footprint counts the virtual size.
        assert_eq!(fp.load(Ordering::Relaxed), 8_000_000);
        drop(b);
        assert_eq!(fp.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn fill_and_snapshot() {
        let b = buf::<u32>(0, 5, 9);
        assert_eq!(b.snapshot(), vec![9; 5]);
        b.fill_seq(3);
        assert_eq!(b.snapshot(), vec![3; 5]);
        b.set_seq(2, 8);
        assert_eq!(b.get_seq(2), 8);
    }

    #[test]
    fn footprint_accounting() {
        let fp = Arc::new(AtomicU64::new(0));
        let a = TrackedBuf::<u32>::new_internal(0, 100, 100, 0, fp.clone());
        let b = TrackedBuf::<f64>::new_internal(0x1000, 10, 10, 0.0, fp.clone());
        assert_eq!(fp.load(Ordering::Relaxed), 400 + 80);
        drop(a);
        assert_eq!(fp.load(Ordering::Relaxed), 80);
        drop(b);
        assert_eq!(fp.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn concurrent_rmw_is_atomic() {
        let b = std::sync::Arc::new(buf::<u64>(0, 1, 0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let b = b.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        b.rmw(0, |v| v + 1);
                    }
                });
            }
        });
        assert_eq!(b.load(0), 80_000);
    }
}
