//! The fork-join runtime: regions, teams, barriers, worksharing, locks,
//! and instrumented access dispatch.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::ops::Range;
use std::panic::Location;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};
use sword_osl::{Label, TASK_SPAN};
use sword_trace::{AccessKind, MemAccess, MutexId, PcId, PcTable, RegionId, ThreadId};

use crate::memory::{TrackedBuf, TrackedValue};
use crate::tool::{ParallelBeginInfo, TaskCreateInfo, TaskUid, ThreadContext, Tool};

/// Access mode of a task `depend` clause.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DepMode {
    /// `depend(in: v)`.
    In,
    /// `depend(out: v)`.
    Out,
    /// `depend(inout: v)`.
    InOut,
}

impl DepMode {
    /// Two clauses on the same variable conflict unless both only read.
    pub fn conflicts(self, other: DepMode) -> bool {
        !(self == DepMode::In && other == DepMode::In)
    }
}

/// Deterministic model of `schedule(dynamic, chunk)` chunk assignment:
/// chunks are claimed round-robin in grab order — grab `g` covers the
/// `g`-th chunk of the range and goes to team slot `g % span`. Shared by
/// the runtime's pinned loops ([`Ctx::for_dynamic_pinned`]) and the fuzz
/// generator's ground-truth oracle, so both sides agree on which thread
/// touched which iteration. (The free-running [`Ctx::for_dynamic`] keeps
/// its real contended cursor; the pinned contract covers chunking
/// effects, not cursor timing.)
pub fn dynamic_chunks(range: Range<u64>, chunk: u64, span: u64) -> Vec<(u64, Range<u64>)> {
    assert!(chunk > 0 && span > 0);
    let mut out = Vec::new();
    let mut start = range.start;
    let mut grab = 0u64;
    while start < range.end {
        let end = (start + chunk).min(range.end);
        out.push((grab % span, start..end));
        grab += 1;
        start = end;
    }
    out
}

/// Deterministic model of `schedule(guided, min_chunk)`: grab `g` takes
/// `max(min_chunk, remaining / span)` iterations (the classic decreasing
/// formula) and goes to slot `g % span`. Same sharing contract as
/// [`dynamic_chunks`].
pub fn guided_chunks(range: Range<u64>, min_chunk: u64, span: u64) -> Vec<(u64, Range<u64>)> {
    assert!(min_chunk > 0 && span > 0);
    let mut out = Vec::new();
    let mut start = range.start;
    let mut grab = 0u64;
    while start < range.end {
        let remaining = range.end - start;
        let size = (remaining / span).max(min_chunk).min(remaining);
        out.push((grab % span, start..start + size));
        grab += 1;
        start += size;
    }
    out
}

/// Runtime configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Team size used by [`Ctx::parallel_default`].
    pub default_threads: usize,
    /// First virtual address handed to tracked buffers.
    pub addr_base: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            default_threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            addr_base: 0x1000_0000,
        }
    }
}

/// A named or anonymous lock usable with [`Ctx::with_lock`] — the
/// equivalent of an `omp_lock_t` / named `critical`.
#[derive(Clone, Debug)]
pub struct OmpLock {
    id: MutexId,
    lock: Arc<Mutex<()>>,
}

impl OmpLock {
    /// The lock's id as reported to tools.
    pub fn id(&self) -> MutexId {
        self.id
    }
}

#[derive(Default)]
struct MutexRegistry {
    by_name: HashMap<String, usize>,
    locks: Vec<OmpLock>,
}

/// The OpenMP-like runtime. One instance models one process running one
/// instrumented program; tools are attached at construction.
pub struct OmpSim {
    tool: Option<Arc<dyn Tool>>,
    config: SimConfig,
    next_tid: AtomicU32,
    tid_pool: Mutex<Vec<ThreadId>>,
    next_region: AtomicU64,
    next_addr: AtomicU64,
    footprint: Arc<AtomicU64>,
    peak_footprint: AtomicU64,
    pc_table: Mutex<PcTable>,
    mutexes: Mutex<MutexRegistry>,
}

impl OmpSim {
    /// An untooled runtime (baseline runs) with default config.
    pub fn new() -> Self {
        Self::with_config(SimConfig::default())
    }

    /// An untooled runtime with explicit config.
    pub fn with_config(config: SimConfig) -> Self {
        let addr_base = config.addr_base;
        OmpSim {
            tool: None,
            config,
            next_tid: AtomicU32::new(0),
            tid_pool: Mutex::new(Vec::new()),
            next_region: AtomicU64::new(0),
            next_addr: AtomicU64::new(addr_base),
            footprint: Arc::new(AtomicU64::new(0)),
            peak_footprint: AtomicU64::new(0),
            pc_table: Mutex::new(PcTable::new()),
            mutexes: Mutex::new(MutexRegistry::default()),
        }
    }

    /// A tooled runtime.
    pub fn with_tool(tool: Arc<dyn Tool>) -> Self {
        Self::with_tool_and_config(tool, SimConfig::default())
    }

    /// A tooled runtime with explicit config.
    pub fn with_tool_and_config(tool: Arc<dyn Tool>, config: SimConfig) -> Self {
        let mut sim = Self::with_config(config);
        sim.tool = Some(tool);
        sim
    }

    /// Team size used when a workload does not specify one.
    pub fn default_threads(&self) -> usize {
        self.config.default_threads
    }

    /// Runs the instrumented program `f` under this runtime. The closure
    /// receives the master (sequential) context; parallel regions are
    /// opened from it.
    pub fn run<R>(&self, f: impl FnOnce(&Ctx<'_>) -> R) -> R {
        if let Some(t) = &self.tool {
            t.program_begin();
        }
        let master_tid = self.acquire_tids(1)[0];
        let ctx = Ctx {
            sim: self,
            tid: master_tid,
            label: RefCell::new(Label::root()),
            region: None,
            fork_seq: Cell::new(0),
            pc_cache: RefCell::new(HashMap::new()),
            task_state: RefCell::new(None),
        };
        let r = f(&ctx);
        self.release_tids(&[master_tid]);
        if let Some(t) = &self.tool {
            t.program_end();
        }
        r
    }

    /// Allocates a tracked buffer of `len` elements, fully backed.
    pub fn alloc<T: TrackedValue>(&self, len: u64, init: T) -> TrackedBuf<T> {
        assert!(len > 0, "tracked buffer needs at least one element");
        self.alloc_phantom(len, len as usize, init)
    }

    /// Allocates a tracked buffer with `declared_len` virtual elements
    /// backed by `real_len` physical ones (indices wrap onto the backing).
    /// Use for workloads whose declared footprint must exceed physical
    /// RAM — the address stream and footprint accounting see the full
    /// declared size.
    pub fn alloc_phantom<T: TrackedValue>(
        &self,
        declared_len: u64,
        real_len: usize,
        init: T,
    ) -> TrackedBuf<T> {
        let bytes = declared_len * T::SIZE_BYTES as u64;
        // 64-byte-aligned virtual placements keep buffers disjoint and
        // cache-line-shaped like real allocators.
        let padded = (bytes + 63) & !63;
        let base = self.next_addr.fetch_add(padded, Ordering::Relaxed);
        let buf =
            TrackedBuf::new_internal(base, declared_len, real_len, init, self.footprint.clone());
        self.peak_footprint.fetch_max(self.footprint.load(Ordering::Relaxed), Ordering::Relaxed);
        buf
    }

    /// Currently live declared footprint in bytes (the application
    /// "baseline memory" of the paper's figures).
    pub fn declared_footprint(&self) -> u64 {
        self.footprint.load(Ordering::Relaxed)
    }

    /// Live handle to the declared-footprint counter, for tools that model
    /// node memory pressure against the application baseline (the ARCHER
    /// baseline's OOM model reads it on every accounting step).
    pub fn footprint_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.footprint)
    }

    /// High-water mark of the declared footprint.
    pub fn peak_footprint(&self) -> u64 {
        self.peak_footprint.load(Ordering::Relaxed)
    }

    /// Number of distinct worker threads (= log files) used so far.
    pub fn threads_used(&self) -> u32 {
        self.next_tid.load(Ordering::Relaxed)
    }

    /// Gets or creates the named lock backing `critical(name)` sections.
    pub fn named_lock(&self, name: &str) -> OmpLock {
        let mut reg = self.mutexes.lock();
        if let Some(&idx) = reg.by_name.get(name) {
            return reg.locks[idx].clone();
        }
        let idx = reg.locks.len();
        let lock = OmpLock { id: idx as MutexId, lock: Arc::new(Mutex::new(())) };
        reg.by_name.insert(name.to_string(), idx);
        reg.locks.push(lock.clone());
        lock
    }

    /// Creates a fresh anonymous lock (an `omp_init_lock` equivalent).
    pub fn new_lock(&self) -> OmpLock {
        let mut reg = self.mutexes.lock();
        let id = reg.locks.len() as MutexId;
        let lock = OmpLock { id, lock: Arc::new(Mutex::new(())) };
        reg.locks.push(lock.clone());
        lock
    }

    /// Snapshot of the program-counter table for session persistence.
    pub fn export_pcs(&self) -> PcTable {
        self.pc_table.lock().clone()
    }

    /// Interns a synthetic source location and returns its id.
    ///
    /// Programs executed through an interpreter (the fuzz generator's
    /// driver, for instance) have no distinct Rust call sites — every
    /// access would collapse onto the interpreter's one `read`/`write`
    /// line. Such callers intern one virtual site per *program* statement
    /// up front and attribute accesses through the `*_pc` methods of
    /// [`Ctx`], so race reports keep per-statement identities.
    pub fn intern_site(&self, file: &str, line: u32) -> PcId {
        self.pc_table.lock().intern(file, line)
    }

    fn intern_pc(&self, loc: &'static Location<'static>) -> PcId {
        self.pc_table.lock().intern(loc.file(), loc.line())
    }

    /// Hands out `n` thread ids deterministically: pooled ids first
    /// (ascending), fresh ids after — so consecutive same-width regions
    /// reuse the same ids, as a real OpenMP thread pool does.
    fn acquire_tids(&self, n: u64) -> Vec<ThreadId> {
        let mut pool = self.tid_pool.lock();
        pool.sort_unstable();
        let take = (n as usize).min(pool.len());
        let mut ids: Vec<ThreadId> = pool.drain(..take).collect();
        while ids.len() < n as usize {
            ids.push(self.next_tid.fetch_add(1, Ordering::Relaxed));
        }
        ids
    }

    fn release_tids(&self, ids: &[ThreadId]) {
        self.tid_pool.lock().extend_from_slice(ids);
    }
}

impl Default for OmpSim {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for OmpSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OmpSim")
            .field("tooled", &self.tool.is_some())
            .field("threads_used", &self.threads_used())
            .field("declared_footprint", &self.declared_footprint())
            .finish()
    }
}

/// The serialization protocol behind `ordered` clauses: one instance per
/// worksharing loop, shared by the team. An ordered block for iteration
/// `i` waits until every lower iteration's block has run, executes under
/// the loop's synthetic lock (so tools see the mutual exclusion through
/// the ordinary mutex callbacks), and then opens iteration `i + 1`'s
/// turn.
///
/// Detectors treat the synthetic lock like any other mutex: two ordered
/// blocks of one loop can never race. The *transitive* happens-before an
/// ordered chain also induces (block `i` → everything block `j > i` does
/// afterwards) is deliberately not modeled — a lock is an
/// over-approximation of concurrency there, applied identically by SWORD,
/// the fuzz oracle, and (more precisely, via its lock clocks) ARCHER.
pub struct OrderedLoop {
    next: Mutex<u64>,
    cv: Condvar,
    lock: OmpLock,
}

impl OrderedLoop {
    /// A protocol starting at iteration `start`, serialized by `lock`.
    /// Callers that need deterministic lock ids (the fuzz interpreter)
    /// pre-create the lock; the high-level loops allocate one lazily.
    pub fn new(start: u64, lock: OmpLock) -> Self {
        OrderedLoop { next: Mutex::new(start), cv: Condvar::new(), lock }
    }

    /// The synthetic lock's id as reported to tools.
    pub fn lock_id(&self) -> MutexId {
        self.lock.id()
    }
}

/// Team-shared state: the physical barrier, dynamic-loop cursors, and
/// ordered-loop protocols.
struct TeamState {
    span: u64,
    barrier: Mutex<BarrierInner>,
    barrier_cv: Condvar,
    dyn_loops: Mutex<HashMap<u64, Arc<AtomicU64>>>,
    guided_loops: Mutex<HashMap<u64, Arc<Mutex<u64>>>>,
    ordered_loops: Mutex<HashMap<u64, Arc<OrderedLoop>>>,
}

#[derive(Default)]
struct BarrierInner {
    arrived: u64,
    generation: u64,
}

impl TeamState {
    fn new(span: u64) -> Self {
        TeamState {
            span,
            barrier: Mutex::new(BarrierInner::default()),
            barrier_cv: Condvar::new(),
            dyn_loops: Mutex::new(HashMap::new()),
            guided_loops: Mutex::new(HashMap::new()),
            ordered_loops: Mutex::new(HashMap::new()),
        }
    }

    /// Generation-counting rendezvous of all `span` members.
    fn wait(&self) {
        let mut inner = self.barrier.lock();
        let gen = inner.generation;
        inner.arrived += 1;
        if inner.arrived == self.span {
            inner.arrived = 0;
            inner.generation += 1;
            self.barrier_cv.notify_all();
        } else {
            while inner.generation == gen {
                self.barrier_cv.wait(&mut inner);
            }
        }
    }

    /// Shared cursor for the `key`-th dynamic loop of the region.
    fn dyn_cursor(&self, key: u64, start: u64) -> Arc<AtomicU64> {
        let mut map = self.dyn_loops.lock();
        map.entry(key).or_insert_with(|| Arc::new(AtomicU64::new(start))).clone()
    }

    /// Shared cursor for the `key`-th guided loop (mutex-guarded so the
    /// decreasing chunk size is computed atomically with the claim).
    fn guided_cursor(&self, key: u64, start: u64) -> Arc<Mutex<u64>> {
        let mut map = self.guided_loops.lock();
        map.entry(key).or_insert_with(|| Arc::new(Mutex::new(start))).clone()
    }

    /// Shared ordered-loop protocol for the `key`-th ordered loop.
    fn ordered_loop(
        &self,
        key: u64,
        start: u64,
        mk_lock: impl FnOnce() -> OmpLock,
    ) -> Arc<OrderedLoop> {
        let mut map = self.ordered_loops.lock();
        map.entry(key).or_insert_with(|| Arc::new(OrderedLoop::new(start, mk_lock()))).clone()
    }
}

struct RegionInfo {
    region: RegionId,
    parent_region: Option<RegionId>,
    level: u32,
    team_index: u64,
    span: u64,
    bid: Cell<u32>,
    team: Arc<TeamState>,
    dyn_loop_seq: Cell<u64>,
    ordered_loop_seq: Cell<u64>,
    /// `true` for the synthetic context a task body runs under; bars
    /// non-conforming nesting (barriers, child tasks) loudly.
    is_task: bool,
}

/// One outstanding (created, not yet synchronized) child task.
struct TaskRec {
    uid: TaskUid,
    deps: Vec<(u64, DepMode)>,
}

/// An open `taskgroup` scope: where the outstanding list stood at entry,
/// plus the label and row identity to restore at group end.
struct GroupFrame {
    mark: usize,
    entry_label: Label,
    entry_row: (RegionId, u32),
}

/// Per-worker explicit-task bookkeeping. `base` is the label at the top
/// of the current barrier interval — the restore target of `taskwait`;
/// `cur_row` identifies the meta row the worker is currently logging
/// under, which leaves the real region's `(pid, bid)` while a task-fork
/// chain is open (continuation rows log under the task pseudo-region).
struct TaskState {
    base: Label,
    cur_row: (RegionId, u32),
    outstanding: Vec<TaskRec>,
    groups: Vec<GroupFrame>,
}

impl TaskState {
    fn new(base: Label, region: RegionId) -> Self {
        TaskState { base, cur_row: (region, 0), outstanding: Vec::new(), groups: Vec::new() }
    }
}

/// Per-thread execution context. The master context (from
/// [`OmpSim::run`]) is sequential; worker contexts live inside parallel
/// regions. All workload code runs against a `Ctx`.
pub struct Ctx<'rt> {
    sim: &'rt OmpSim,
    tid: ThreadId,
    label: RefCell<Label>,
    region: Option<RegionInfo>,
    /// Number of nested regions this thread has forked (and joined) so
    /// far. Each fork's label is `label · [fork_seq, 1]` — see
    /// [`Label::fork_point`]: the span-1 pair orders this thread's
    /// successive teams without making the join look like a barrier
    /// crossing to sibling members.
    fork_seq: Cell<u64>,
    pc_cache: RefCell<HashMap<(usize, u32), PcId>>,
    /// Explicit-task chain state; `Some` only for team workers (the
    /// master context and task bodies create no traced tasks).
    task_state: RefCell<Option<TaskState>>,
}

impl<'rt> Ctx<'rt> {
    /// The runtime this context belongs to.
    pub fn sim(&self) -> &'rt OmpSim {
        self.sim
    }

    /// This thread's global id.
    pub fn tid(&self) -> ThreadId {
        self.tid
    }

    /// This thread's slot in its team (0 for the master context).
    pub fn team_index(&self) -> u64 {
        self.region.as_ref().map_or(0, |r| r.team_index)
    }

    /// Team size (1 for the master context).
    pub fn team_size(&self) -> u64 {
        self.region.as_ref().map_or(1, |r| r.span)
    }

    /// `true` inside a parallel region.
    pub fn in_parallel(&self) -> bool {
        self.region.is_some()
    }

    /// Current offset-span label (clone).
    pub fn label(&self) -> Label {
        self.label.borrow().clone()
    }

    // ---- regions ----------------------------------------------------------

    /// Forks a parallel region of `num_threads` workers, runs `body` in
    /// each, and joins (the implicit end-of-region barrier coincides with
    /// the join). The forking thread does not execute `body`; workers are
    /// fresh team slots `0..num_threads`, with pooled thread ids.
    pub fn parallel<F>(&self, num_threads: usize, body: F)
    where
        F: Fn(&Ctx<'rt>) + Sync,
    {
        let span = num_threads.max(1) as u64;
        let region = self.sim.next_region.fetch_add(1, Ordering::Relaxed);
        let (parent_region, level) = match &self.region {
            Some(r) => (Some(r.region), r.level + 1),
            None => (None, 1),
        };
        let fork_label = self.label.borrow().fork_point(self.fork_seq.get());
        if let Some(t) = &self.sim.tool {
            t.parallel_begin(&ParallelBeginInfo {
                region,
                parent_region,
                level,
                span,
                fork_label: &fork_label,
                fork_tid: self.tid,
            });
        }
        let tids = self.sim.acquire_tids(span);
        let team = Arc::new(TeamState::new(span));
        let sim = self.sim;
        std::thread::scope(|s| {
            for i in 0..span {
                let tid = tids[i as usize];
                let team = Arc::clone(&team);
                let fork_label = &fork_label;
                let body = &body;
                s.spawn(move || {
                    let worker_label = fork_label.fork(i, span);
                    let ctx = Ctx {
                        sim,
                        tid,
                        label: RefCell::new(worker_label.clone()),
                        region: Some(RegionInfo {
                            region,
                            parent_region,
                            level,
                            team_index: i,
                            span,
                            bid: Cell::new(0),
                            team,
                            dyn_loop_seq: Cell::new(0),
                            ordered_loop_seq: Cell::new(0),
                            is_task: false,
                        }),
                        fork_seq: Cell::new(0),
                        pc_cache: RefCell::new(HashMap::new()),
                        task_state: RefCell::new(Some(TaskState::new(worker_label, region))),
                    };
                    ctx.with_tool(|t, tc| t.thread_begin(tc));
                    body(&ctx);
                    // The implicit end-of-region barrier is a task
                    // scheduling point: outstanding children synchronize
                    // before the worker's last interval closes.
                    ctx.implicit_task_sync();
                    ctx.with_tool(|t, tc| t.thread_end(tc));
                });
            }
        });
        self.sim.release_tids(&tids);
        // The join orders this thread's next fork after the finished team
        // via the fork-sequence component; the thread's own label must NOT
        // bump — a join is not a barrier, and bumping here would make this
        // thread's later subtrees look barrier-ordered against *sibling*
        // members' accesses in the offline analysis.
        self.fork_seq.set(self.fork_seq.get() + 1);
        if let Some(t) = &self.sim.tool {
            t.parallel_end(region, self.tid);
        }
    }

    /// [`Ctx::parallel`] with the runtime's configured default team size.
    pub fn parallel_default<F>(&self, body: F)
    where
        F: Fn(&Ctx<'rt>) + Sync,
    {
        self.parallel(self.sim.config.default_threads, body);
    }

    /// `#pragma omp target teams parallel` equivalent — the paper's
    /// future-work item ("extend SWORD's approach to target regions that
    /// are offloaded on accelerators"), realized here for the synchronous
    /// offload case: the device region is a nested fork-join team whose
    /// completion the host awaits, so offset-span labels order it exactly
    /// like a nested parallel region and both detectors handle it with no
    /// special cases. Device threads draw from the same pooled id space
    /// (one log file per device thread).
    pub fn target<F>(&self, device_threads: usize, body: F)
    where
        F: Fn(&Ctx<'rt>) + Sync,
    {
        self.parallel(device_threads, body);
    }

    // ---- barriers ---------------------------------------------------------

    /// Explicit team barrier (`#pragma omp barrier`). A no-op in the
    /// master (sequential) context.
    pub fn barrier(&self) {
        let Some(r) = &self.region else { return };
        assert!(!r.is_task, "barrier inside an explicit task is non-conforming");
        // A barrier is a task scheduling point with an implied taskwait:
        // outstanding children synchronize before the interval closes.
        self.implicit_task_sync();
        self.with_tool(|t, tc| t.barrier_begin(tc));
        r.team.wait();
        self.label.borrow_mut().bump_in_place();
        r.bid.set(r.bid.get() + 1);
        if let Some(ts) = self.task_state.borrow_mut().as_mut() {
            ts.base = self.label.borrow().clone();
            ts.cur_row = (r.region, r.bid.get());
        }
        self.with_tool(|t, tc| t.barrier_end(tc));
    }

    // ---- explicit tasks ---------------------------------------------------

    /// `#pragma omp task` without dependences. See [`Ctx::task_depend`].
    pub fn task(&self, body: impl FnOnce(&Ctx<'rt>)) {
        self.task_depend(&[], body);
    }

    /// `#pragma omp task depend(...)`: creates an explicit task whose body
    /// runs under its own context (fresh logical thread id, own log file,
    /// task pseudo-region labeled `L·[e,1]·[1,TASK_SPAN]` off the
    /// creator's current label `L`), then resumes the creator under the
    /// continuation label `L·[e,1]·[0,TASK_SPAN]`.
    ///
    /// Tasks execute *eagerly on the creating thread* — as if every task
    /// carried an `if(0)` clause making it undeferred. The trace still
    /// encodes the task as logically concurrent with the continuation and
    /// with sibling threads, which is the only thing the label-based and
    /// clock-based detectors analyze; serializing the physical execution
    /// makes runs (and therefore sessions, oracles, and pinned corpus
    /// reproducers) deterministic. Restrictions, enforced loudly: task
    /// bodies create no tasks and cross no barriers.
    ///
    /// `deps` are `(variable, mode)` clauses; predecessors are the earlier
    /// still-outstanding siblings with a conflicting clause on the same
    /// variable. They are recorded on the task's pseudo-region record —
    /// dependences are an arbitrary partial order the offset-span labels
    /// cannot express, so the analyzers layer them above the labels.
    pub fn task_depend(&self, deps: &[(u64, DepMode)], body: impl FnOnce(&Ctx<'rt>)) {
        let Some(r) = &self.region else {
            // Outside a parallel region a task is immediate sequential
            // code, like any other uninstrumented construct.
            body(self);
            return;
        };
        assert!(!r.is_task, "nested task creation (a task spawning tasks) is not modeled");
        let e = self.fork_seq.get();
        self.fork_seq.set(e + 1);
        let pid = self.sim.next_region.fetch_add(1, Ordering::Relaxed);
        let uid: TaskUid = pid;
        // Fresh id, never pooled: a reused id could alias the task's log
        // with a logically concurrent entity and mask real races.
        let task_tid = self.sim.next_tid.fetch_add(1, Ordering::Relaxed);
        let fork_label = self.label.borrow().task_fork(e);
        let task_label = fork_label.fork(1, TASK_SPAN);
        let cont_label = fork_label.fork(0, TASK_SPAN);
        let preds: Vec<RegionId> = {
            let ts = self.task_state.borrow();
            let ts = ts.as_ref().expect("workers carry task state");
            ts.outstanding
                .iter()
                .filter(|t| {
                    t.deps
                        .iter()
                        .any(|(v, m)| deps.iter().any(|(v2, m2)| v == v2 && m.conflicts(*m2)))
                })
                .map(|t| t.uid)
                .collect()
        };
        let info = TaskCreateInfo {
            uid,
            region: pid,
            parent_region: r.region,
            level: r.level + 1,
            preds: &preds,
            fork_label: &fork_label,
            creator_tid: self.tid,
        };
        self.with_tool(|t, tc| t.task_create(tc, &info));
        let task_ctx = Ctx {
            sim: self.sim,
            tid: task_tid,
            label: RefCell::new(task_label.clone()),
            region: Some(RegionInfo {
                region: pid,
                parent_region: Some(r.region),
                level: r.level + 1,
                team_index: 1,
                span: TASK_SPAN,
                bid: Cell::new(0),
                team: Arc::clone(&r.team),
                dyn_loop_seq: Cell::new(0),
                ordered_loop_seq: Cell::new(0),
                is_task: true,
            }),
            fork_seq: Cell::new(0),
            pc_cache: RefCell::new(HashMap::new()),
            task_state: RefCell::new(None),
        };
        if let Some(tool) = &self.sim.tool {
            let outer_label = self.label.borrow();
            let outer_tc = self.make_tc(r, &outer_label);
            let task_r = task_ctx.region.as_ref().expect("task ctx has a region");
            let task_tc = task_ctx.make_tc(task_r, &task_label);
            tool.task_begin(&outer_tc, &task_tc, uid);
        }
        body(&task_ctx);
        *self.label.borrow_mut() = cont_label.clone();
        {
            let mut ts = self.task_state.borrow_mut();
            let ts = ts.as_mut().expect("workers carry task state");
            ts.cur_row = (pid, 0);
            ts.outstanding.push(TaskRec { uid, deps: deps.to_vec() });
        }
        if let Some(tool) = &self.sim.tool {
            let task_r = task_ctx.region.as_ref().expect("task ctx has a region");
            let task_tc = task_ctx.make_tc(task_r, &task_label);
            let cont_tc = self.make_tc(r, &cont_label);
            tool.task_end(&task_tc, &cont_tc, uid);
        }
    }

    /// `#pragma omp taskwait`: children created since the last sync are
    /// complete (they ran eagerly); the label chain collapses back to the
    /// interval base so code after the wait is ordered after every child.
    pub fn taskwait(&self) {
        self.implicit_task_sync();
    }

    /// `#pragma omp taskgroup`: runs `body` (which may create tasks) and
    /// waits for the tasks created inside the group — a *partial* restore
    /// of the label chain to the group-entry label, so post-group code is
    /// ordered after group tasks but stays concurrent with tasks that
    /// were already outstanding at entry.
    pub fn taskgroup(&self, body: impl FnOnce(&Ctx<'rt>)) {
        let Some(r) = &self.region else {
            body(self);
            return;
        };
        assert!(!r.is_task, "taskgroup inside an explicit task is not modeled");
        {
            let mut ts = self.task_state.borrow_mut();
            let ts = ts.as_mut().expect("workers carry task state");
            ts.groups.push(GroupFrame {
                mark: ts.outstanding.len(),
                entry_label: self.label.borrow().clone(),
                entry_row: ts.cur_row,
            });
        }
        body(self);
        let (synced, entry_label) = {
            let mut ts = self.task_state.borrow_mut();
            let ts = ts.as_mut().expect("workers carry task state");
            let frame = ts.groups.pop().expect("taskgroup frames are balanced");
            let synced: Vec<TaskUid> =
                ts.outstanding.split_off(frame.mark).into_iter().map(|t| t.uid).collect();
            if synced.is_empty() {
                return; // no tasks created inside: the chain is unchanged
            }
            ts.cur_row = frame.entry_row;
            (synced, frame.entry_label)
        };
        *self.label.borrow_mut() = entry_label;
        self.with_tool(|t, tc| t.task_sync(tc, &synced));
    }

    /// Shared implementation of `taskwait` and the implied task sync at
    /// barriers and region end: drain all outstanding children and restore
    /// the interval-base label.
    fn implicit_task_sync(&self) {
        let Some(r) = &self.region else { return };
        if r.is_task {
            return; // task bodies have no children to wait for
        }
        let (synced, restored) = {
            let mut ts = self.task_state.borrow_mut();
            let ts = ts.as_mut().expect("workers carry task state");
            assert!(ts.groups.is_empty(), "taskwait/barrier inside taskgroup is not modeled");
            if ts.outstanding.is_empty() {
                return; // no children since the last sync
            }
            let synced: Vec<TaskUid> = ts.outstanding.drain(..).map(|t| t.uid).collect();
            ts.cur_row = (r.region, r.bid.get());
            (synced, ts.base.clone())
        };
        *self.label.borrow_mut() = restored;
        self.with_tool(|t, tc| t.task_sync(tc, &synced));
    }

    // ---- ordered ----------------------------------------------------------

    /// Runs `body` as the `ordered` block of iteration `i` of the loop
    /// protocol `ol`: blocks run in ascending iteration order, each under
    /// the loop's synthetic lock (see [`OrderedLoop`]).
    pub fn ordered(&self, ol: &OrderedLoop, i: u64, body: impl FnOnce()) {
        {
            let mut next = ol.next.lock();
            while *next != i {
                ol.cv.wait(&mut next);
            }
        }
        self.with_lock(&ol.lock, body);
        *ol.next.lock() = i + 1;
        ol.cv.notify_all();
    }

    /// `#pragma omp for ordered schedule(static)`: the static partition of
    /// [`Ctx::for_static`], with an [`OrderedLoop`] handle the body passes
    /// to [`Ctx::ordered`] for its ordered blocks; implicit barrier.
    pub fn for_static_ordered(&self, range: Range<u64>, mut body: impl FnMut(u64, &OrderedLoop)) {
        let ol = self.team_ordered_loop(range.start);
        let n = range.end.saturating_sub(range.start);
        if n > 0 {
            let span = self.team_size();
            let idx = self.team_index();
            let chunk = n.div_ceil(span);
            let lo = range.start + (idx * chunk).min(n);
            let hi = range.start + ((idx + 1) * chunk).min(n);
            for i in lo..hi {
                body(i, &ol);
            }
        }
        self.barrier();
    }

    /// `#pragma omp for ordered schedule(dynamic, chunk)` under the pinned
    /// chunk assignment of [`dynamic_chunks`]; implicit barrier.
    pub fn for_dynamic_pinned_ordered(
        &self,
        range: Range<u64>,
        chunk: u64,
        mut body: impl FnMut(u64, &OrderedLoop),
    ) {
        let ol = self.team_ordered_loop(range.start);
        let idx = self.team_index();
        for (slot, chunk_range) in dynamic_chunks(range, chunk, self.team_size()) {
            if slot == idx {
                for i in chunk_range {
                    body(i, &ol);
                }
            }
        }
        self.barrier();
    }

    /// The `key`-th ordered-loop protocol of the current region, shared by
    /// the team (master context: a private protocol, the loop is
    /// sequential anyway).
    fn team_ordered_loop(&self, start: u64) -> Arc<OrderedLoop> {
        match &self.region {
            None => Arc::new(OrderedLoop::new(start, self.sim.new_lock())),
            Some(r) => {
                let key = r.ordered_loop_seq.get();
                r.ordered_loop_seq.set(key + 1);
                r.team.ordered_loop(key, start, || self.sim.new_lock())
            }
        }
    }

    // ---- worksharing ------------------------------------------------------

    /// `#pragma omp for schedule(static)`: contiguous chunks, implicit
    /// barrier at the end.
    pub fn for_static(&self, range: Range<u64>, body: impl FnMut(u64)) {
        self.for_static_nowait(range, body);
        self.barrier();
    }

    /// `#pragma omp for schedule(static) nowait`: no closing barrier, so
    /// following accesses share the barrier interval with the loop —
    /// exactly the situation of DataRaceBench's `nowait-orig-yes`.
    pub fn for_static_nowait(&self, range: Range<u64>, mut body: impl FnMut(u64)) {
        let n = range.end.saturating_sub(range.start);
        if n == 0 {
            return;
        }
        let span = self.team_size();
        let idx = self.team_index();
        let chunk = n.div_ceil(span);
        let lo = range.start + (idx * chunk).min(n);
        let hi = range.start + ((idx + 1) * chunk).min(n);
        for i in lo..hi {
            body(i);
        }
    }

    /// `schedule(static, chunk)`: round-robin chunks, implicit barrier.
    pub fn for_static_chunked(&self, range: Range<u64>, chunk: u64, mut body: impl FnMut(u64)) {
        assert!(chunk > 0);
        let span = self.team_size();
        let idx = self.team_index();
        let mut start = range.start + idx * chunk;
        while start < range.end {
            let end = (start + chunk).min(range.end);
            for i in start..end {
                body(i);
            }
            start += span * chunk;
        }
        self.barrier();
    }

    /// `schedule(dynamic, chunk)`: threads claim chunks from a shared
    /// cursor; implicit barrier at the end.
    pub fn for_dynamic(&self, range: Range<u64>, chunk: u64, mut body: impl FnMut(u64)) {
        assert!(chunk > 0);
        match &self.region {
            None => {
                for i in range {
                    body(i);
                }
            }
            Some(r) => {
                let key = r.dyn_loop_seq.get();
                r.dyn_loop_seq.set(key + 1);
                let cursor = r.team.dyn_cursor(key, range.start);
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= range.end {
                        break;
                    }
                    let end = (start + chunk).min(range.end);
                    for i in start..end {
                        body(i);
                    }
                }
                self.barrier();
            }
        }
    }

    /// Deterministic `schedule(dynamic, chunk)`: iterations follow the
    /// round-robin grab model of [`dynamic_chunks`], so reruns (and the
    /// fuzz oracle) see identical thread→iteration assignments; implicit
    /// barrier at the end.
    pub fn for_dynamic_pinned(&self, range: Range<u64>, chunk: u64, mut body: impl FnMut(u64)) {
        let idx = self.team_index();
        for (slot, chunk_range) in dynamic_chunks(range, chunk, self.team_size()) {
            if slot == idx {
                for i in chunk_range {
                    body(i);
                }
            }
        }
        self.barrier();
    }

    /// `schedule(guided, min_chunk)`: decreasing chunks claimed from a
    /// shared mutex-guarded cursor (size computed atomically with the
    /// claim); implicit barrier at the end.
    pub fn for_guided(&self, range: Range<u64>, min_chunk: u64, mut body: impl FnMut(u64)) {
        assert!(min_chunk > 0);
        match &self.region {
            None => {
                for i in range {
                    body(i);
                }
            }
            Some(r) => {
                let key = r.dyn_loop_seq.get();
                r.dyn_loop_seq.set(key + 1);
                let cursor = r.team.guided_cursor(key, range.start);
                let span = r.span;
                loop {
                    let (start, end) = {
                        let mut cur = cursor.lock();
                        if *cur >= range.end {
                            break;
                        }
                        let remaining = range.end - *cur;
                        let size = (remaining / span).max(min_chunk).min(remaining);
                        let s = *cur;
                        *cur += size;
                        (s, s + size)
                    };
                    for i in start..end {
                        body(i);
                    }
                }
                self.barrier();
            }
        }
    }

    /// Deterministic `schedule(guided, min_chunk)` under the pinned grab
    /// model of [`guided_chunks`]; implicit barrier at the end.
    pub fn for_guided_pinned(&self, range: Range<u64>, min_chunk: u64, mut body: impl FnMut(u64)) {
        let idx = self.team_index();
        for (slot, chunk_range) in guided_chunks(range, min_chunk, self.team_size()) {
            if slot == idx {
                for i in chunk_range {
                    body(i);
                }
            }
        }
        self.barrier();
    }

    /// `#pragma omp sections`: section `i` of `count` runs on thread
    /// `i % span`; implicit barrier at the end.
    pub fn sections(&self, count: usize, mut body: impl FnMut(usize)) {
        let span = self.team_size();
        let idx = self.team_index();
        let mut i = idx as usize;
        while i < count {
            body(i);
            i += span as usize;
        }
        self.barrier();
    }

    /// `#pragma omp master`: runs only on team slot 0; **no** barrier.
    pub fn master(&self, body: impl FnOnce()) {
        if self.team_index() == 0 {
            body();
        }
    }

    /// `#pragma omp single`: one thread runs the body, then an implicit
    /// barrier. (Deterministically slot 0 — a modeling simplification of
    /// "first arrival"; the event structure is identical.)
    pub fn single(&self, body: impl FnOnce()) {
        if self.team_index() == 0 {
            body();
        }
        self.barrier();
    }

    /// `single nowait`: no closing barrier.
    pub fn single_nowait(&self, body: impl FnOnce()) {
        if self.team_index() == 0 {
            body();
        }
    }

    // ---- reductions ---------------------------------------------------------

    /// Deterministic team reduction (`reduction(op: x)` equivalent): each
    /// thread deposits `local` in its slot of `partials` (which must hold
    /// at least `team_size` elements), slot 0 folds the slots in index
    /// order into `result[0]`, and every thread returns the folded value.
    /// Barrier-synchronized on both sides, so the result is race-free and
    /// bit-reproducible regardless of thread scheduling — unlike a naive
    /// atomic accumulation, whose floating-point fold order varies.
    #[track_caller]
    pub fn reduce_with<T: TrackedValue>(
        &self,
        partials: &TrackedBuf<T>,
        result: &TrackedBuf<T>,
        local: T,
        combine: impl Fn(T, T) -> T,
    ) -> T {
        let span = self.team_size();
        assert!(
            partials.len() >= span,
            "reduce_with needs one partial slot per team member ({span})"
        );
        let t = self.team_index();
        self.write(partials, t, local);
        self.barrier();
        self.single(|| {
            let mut acc = self.read(partials, 0);
            for i in 1..span {
                acc = combine(acc, self.read(partials, i));
            }
            self.write(result, 0, acc);
        });
        self.read(result, 0)
    }

    /// [`Ctx::reduce_with`] folding with `+`.
    #[track_caller]
    pub fn reduce_sum<T>(&self, partials: &TrackedBuf<T>, result: &TrackedBuf<T>, local: T) -> T
    where
        T: TrackedValue + std::ops::Add<Output = T>,
    {
        self.reduce_with(partials, result, local, |a, b| a + b)
    }

    // ---- synchronization --------------------------------------------------

    /// `#pragma omp critical(name)`.
    pub fn critical<R>(&self, name: &str, body: impl FnOnce() -> R) -> R {
        let lock = self.sim.named_lock(name);
        self.with_lock(&lock, body)
    }

    /// Runs `body` holding `lock`, emitting mutex events to the tool.
    pub fn with_lock<R>(&self, lock: &OmpLock, body: impl FnOnce() -> R) -> R {
        let guard = lock.lock.lock();
        self.with_tool(|t, tc| t.mutex_acquired(tc, lock.id));
        let r = body();
        self.with_tool(|t, tc| t.mutex_released(tc, lock.id));
        drop(guard);
        r
    }

    // ---- instrumented memory ----------------------------------------------

    /// Instrumented load of `buf[i]`.
    #[track_caller]
    pub fn read<T: TrackedValue>(&self, buf: &TrackedBuf<T>, i: u64) -> T {
        let v = buf.load(i);
        self.observe(buf.addr_of(i), T::SIZE_BYTES, AccessKind::Read, Location::caller());
        v
    }

    /// Instrumented store of `buf[i] = v`.
    #[track_caller]
    pub fn write<T: TrackedValue>(&self, buf: &TrackedBuf<T>, i: u64, v: T) {
        buf.store(i, v);
        self.observe(buf.addr_of(i), T::SIZE_BYTES, AccessKind::Write, Location::caller());
    }

    /// Instrumented atomic load (`#pragma omp atomic read`).
    #[track_caller]
    pub fn atomic_read<T: TrackedValue>(&self, buf: &TrackedBuf<T>, i: u64) -> T {
        let v = buf.load(i);
        self.observe(buf.addr_of(i), T::SIZE_BYTES, AccessKind::AtomicRead, Location::caller());
        v
    }

    /// Instrumented atomic store (`#pragma omp atomic write`).
    #[track_caller]
    pub fn atomic_write<T: TrackedValue>(&self, buf: &TrackedBuf<T>, i: u64, v: T) {
        buf.store(i, v);
        self.observe(buf.addr_of(i), T::SIZE_BYTES, AccessKind::AtomicWrite, Location::caller());
    }

    /// Instrumented atomic read-modify-write (`#pragma omp atomic`);
    /// returns the previous value.
    #[track_caller]
    pub fn atomic_update<T: TrackedValue>(
        &self,
        buf: &TrackedBuf<T>,
        i: u64,
        f: impl Fn(T) -> T,
    ) -> T {
        let prev = buf.rmw(i, f);
        self.observe(buf.addr_of(i), T::SIZE_BYTES, AccessKind::AtomicWrite, Location::caller());
        prev
    }

    /// Instrumented `buf[i] += delta` via atomic RMW; returns the previous
    /// value.
    #[track_caller]
    pub fn fetch_add<T>(&self, buf: &TrackedBuf<T>, i: u64, delta: T) -> T
    where
        T: TrackedValue + std::ops::Add<Output = T>,
    {
        let prev = buf.rmw(i, |v| v + delta);
        self.observe(buf.addr_of(i), T::SIZE_BYTES, AccessKind::AtomicWrite, Location::caller());
        prev
    }

    // ---- explicit-PC instrumented memory ----------------------------------
    //
    // Variants of the accessors above for interpreted programs: the caller
    // supplies a pre-interned site (see `OmpSim::intern_site`) instead of
    // relying on `#[track_caller]`, so distinct *program* statements stay
    // distinct in race reports even when one Rust line executes them all.

    /// Instrumented load of `buf[i]` attributed to site `pc`.
    pub fn read_pc<T: TrackedValue>(&self, buf: &TrackedBuf<T>, i: u64, pc: PcId) -> T {
        let v = buf.load(i);
        self.observe_pc(buf.addr_of(i), T::SIZE_BYTES, AccessKind::Read, pc);
        v
    }

    /// Instrumented store of `buf[i] = v` attributed to site `pc`.
    pub fn write_pc<T: TrackedValue>(&self, buf: &TrackedBuf<T>, i: u64, v: T, pc: PcId) {
        buf.store(i, v);
        self.observe_pc(buf.addr_of(i), T::SIZE_BYTES, AccessKind::Write, pc);
    }

    /// Instrumented atomic load attributed to site `pc`.
    pub fn atomic_read_pc<T: TrackedValue>(&self, buf: &TrackedBuf<T>, i: u64, pc: PcId) -> T {
        let v = buf.load(i);
        self.observe_pc(buf.addr_of(i), T::SIZE_BYTES, AccessKind::AtomicRead, pc);
        v
    }

    /// Instrumented atomic store attributed to site `pc`.
    pub fn atomic_write_pc<T: TrackedValue>(&self, buf: &TrackedBuf<T>, i: u64, v: T, pc: PcId) {
        buf.store(i, v);
        self.observe_pc(buf.addr_of(i), T::SIZE_BYTES, AccessKind::AtomicWrite, pc);
    }

    // ---- internals --------------------------------------------------------

    fn with_tool(&self, f: impl FnOnce(&dyn Tool, &ThreadContext<'_>)) {
        let (Some(tool), Some(r)) = (&self.sim.tool, &self.region) else { return };
        let label = self.label.borrow();
        let tc = self.make_tc(r, &label);
        f(tool.as_ref(), &tc);
    }

    /// Builds the [`ThreadContext`] the tool sees. While a task-fork chain
    /// is open, the creator's continuation rows log under the *task
    /// pseudo-region* recorded in `TaskState::cur_row` rather than the
    /// real region — that is how the offline analyzers know the
    /// continuation fragment's place in the chain.
    fn make_tc<'a>(&self, r: &'a RegionInfo, label: &'a Label) -> ThreadContext<'a> {
        let chained = self.task_state.borrow().as_ref().and_then(|ts| {
            if ts.cur_row.0 != r.region {
                Some(ts.cur_row)
            } else {
                None
            }
        });
        match chained {
            Some((row_pid, _)) if !r.is_task => ThreadContext {
                tid: self.tid,
                region: row_pid,
                parent_region: Some(r.region),
                level: r.level + 1,
                team_index: 0,
                span: TASK_SPAN,
                bid: 0,
                label,
            },
            _ => ThreadContext {
                tid: self.tid,
                region: r.region,
                parent_region: r.parent_region,
                level: r.level,
                team_index: r.team_index,
                span: r.span,
                bid: r.bid.get(),
                label,
            },
        }
    }

    fn observe(&self, addr: u64, size: u8, kind: AccessKind, loc: &'static Location<'static>) {
        // Sequential (outside-region) accesses are not instrumented — the
        // paper's pass only instruments loads/stores in parallel regions.
        if self.region.is_none() || self.sim.tool.is_none() {
            return;
        }
        let pc = self.pc_of(loc);
        self.with_tool(|t, tc| t.access(tc, MemAccess { addr, size, kind, pc }));
    }

    fn observe_pc(&self, addr: u64, size: u8, kind: AccessKind, pc: PcId) {
        if self.region.is_none() || self.sim.tool.is_none() {
            return;
        }
        self.with_tool(|t, tc| t.access(tc, MemAccess { addr, size, kind, pc }));
    }

    fn pc_of(&self, loc: &'static Location<'static>) -> PcId {
        let key = (loc.file().as_ptr() as usize, loc.line());
        if let Some(&id) = self.pc_cache.borrow().get(&key) {
            return id;
        }
        let id = self.sim.intern_pc(loc);
        self.pc_cache.borrow_mut().insert(key, id);
        id
    }
}

impl std::fmt::Debug for Ctx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("tid", &self.tid)
            .field("label", &format_args!("{}", self.label.borrow()))
            .field("in_parallel", &self.in_parallel())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Mutex as StdMutex;

    #[test]
    fn master_context_is_sequential() {
        let sim = OmpSim::new();
        sim.run(|ctx| {
            assert!(!ctx.in_parallel());
            assert_eq!(ctx.team_size(), 1);
            assert_eq!(format!("{}", ctx.label()), "[0,1]");
            ctx.barrier(); // no-op
        });
    }

    #[test]
    fn parallel_runs_all_workers() {
        let sim = OmpSim::new();
        let hits = AtomicUsize::new(0);
        sim.run(|ctx| {
            ctx.parallel(6, |w| {
                assert!(w.in_parallel());
                assert_eq!(w.team_size(), 6);
                assert!(w.team_index() < 6);
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn worker_labels_follow_osl_rules() {
        let sim = OmpSim::new();
        let labels = StdMutex::new(Vec::new());
        sim.run(|ctx| {
            ctx.parallel(3, |w| {
                labels.lock().unwrap().push(w.label());
            });
            // A join does not bump the master's label (it is not a
            // barrier); the next fork is ordered by the fork-sequence
            // component instead.
            assert_eq!(format!("{}", ctx.label()), "[0,1]");
            ctx.parallel(1, |w| {
                // Second region: fork-point pair [1,1] between the root
                // label and the member pair.
                assert_eq!(format!("{}", w.label()), "[0,1][1,1][0,1]");
            });
        });
        let labels = labels.into_inner().unwrap();
        assert_eq!(labels.len(), 3);
        for a in &labels {
            for b in &labels {
                if a != b {
                    assert!(a.concurrent(b), "{a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn sequential_regions_are_ordered() {
        let sim = OmpSim::new();
        let (l1, l2) = sim.run(|ctx| {
            let l1 = StdMutex::new(None);
            ctx.parallel(2, |w| {
                if w.team_index() == 0 {
                    *l1.lock().unwrap() = Some(w.label());
                }
            });
            let l2 = StdMutex::new(None);
            ctx.parallel(2, |w| {
                if w.team_index() == 0 {
                    *l2.lock().unwrap() = Some(w.label());
                }
            });
            (l1.into_inner().unwrap().unwrap(), l2.into_inner().unwrap().unwrap())
        });
        assert!(l1.sequential(&l2), "{l1} vs {l2}");
    }

    #[test]
    fn barrier_bumps_label_and_bid() {
        let sim = OmpSim::new();
        let seen = StdMutex::new(Vec::new());
        sim.run(|ctx| {
            ctx.parallel(4, |w| {
                let before = w.label();
                w.barrier();
                let after = w.label();
                seen.lock().unwrap().push((before, after));
            });
        });
        for (before, after) in seen.into_inner().unwrap() {
            assert!(before.sequential(&after));
            assert_eq!(after.last().unwrap().offset, before.last().unwrap().offset + 4);
        }
    }

    #[test]
    fn nested_parallelism_levels_and_concurrency() {
        let sim = OmpSim::new();
        let inner_labels = StdMutex::new(Vec::new());
        sim.run(|ctx| {
            ctx.parallel(2, |w| {
                w.parallel(2, |inner| {
                    inner_labels.lock().unwrap().push(inner.label());
                });
            });
        });
        let labels = inner_labels.into_inner().unwrap();
        assert_eq!(labels.len(), 4);
        // All inner workers across both inner regions are mutually
        // concurrent (they hang off concurrent outer threads or are
        // siblings).
        for a in &labels {
            for b in &labels {
                if a != b {
                    assert!(a.concurrent(b), "{a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn thread_ids_are_pooled_across_regions() {
        let sim = OmpSim::new();
        let round1 = StdMutex::new(Vec::new());
        let round2 = StdMutex::new(Vec::new());
        sim.run(|ctx| {
            ctx.parallel(4, |w| {
                round1.lock().unwrap().push(w.tid());
            });
            ctx.parallel(4, |w| {
                round2.lock().unwrap().push(w.tid());
            });
        });
        let mut r1 = round1.into_inner().unwrap();
        let mut r2 = round2.into_inner().unwrap();
        r1.sort_unstable();
        r2.sort_unstable();
        assert_eq!(r1, r2, "same pool of tids reused");
        // Master took tid 0; five distinct tids total.
        assert_eq!(sim.threads_used(), 5);
    }

    #[test]
    fn for_static_partitions_exactly() {
        let sim = OmpSim::new();
        let hits = StdMutex::new(vec![0u32; 100]);
        sim.run(|ctx| {
            ctx.parallel(7, |w| {
                w.for_static(0..100, |i| {
                    hits.lock().unwrap()[i as usize] += 1;
                });
            });
        });
        assert!(hits.into_inner().unwrap().iter().all(|&h| h == 1));
    }

    #[test]
    fn for_static_empty_range() {
        let sim = OmpSim::new();
        sim.run(|ctx| {
            ctx.parallel(4, |w| {
                w.for_static_nowait(10..10, |_| panic!("no iterations"));
            });
        });
    }

    #[test]
    fn for_static_chunked_covers_range() {
        let sim = OmpSim::new();
        let hits = StdMutex::new(vec![0u32; 53]);
        sim.run(|ctx| {
            ctx.parallel(4, |w| {
                w.for_static_chunked(0..53, 5, |i| {
                    hits.lock().unwrap()[i as usize] += 1;
                });
            });
        });
        assert!(hits.into_inner().unwrap().iter().all(|&h| h == 1));
    }

    #[test]
    fn for_dynamic_covers_range() {
        let sim = OmpSim::new();
        let hits = StdMutex::new(vec![0u32; 97]);
        sim.run(|ctx| {
            ctx.parallel(5, |w| {
                w.for_dynamic(0..97, 4, |i| {
                    hits.lock().unwrap()[i as usize] += 1;
                });
                // A second dynamic loop must get a fresh cursor.
                w.for_dynamic(0..97, 4, |i| {
                    hits.lock().unwrap()[i as usize] += 1;
                });
            });
        });
        assert!(hits.into_inner().unwrap().iter().all(|&h| h == 2));
    }

    #[test]
    fn master_and_single_run_once() {
        let sim = OmpSim::new();
        let m = AtomicUsize::new(0);
        let s1 = AtomicUsize::new(0);
        let s2 = AtomicUsize::new(0);
        sim.run(|ctx| {
            ctx.parallel(8, |w| {
                w.master(|| {
                    m.fetch_add(1, Ordering::Relaxed);
                });
                w.single(|| {
                    s1.fetch_add(1, Ordering::Relaxed);
                });
                w.single_nowait(|| {
                    s2.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(m.load(Ordering::Relaxed), 1);
        assert_eq!(s1.load(Ordering::Relaxed), 1);
        assert_eq!(s2.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn sections_distribute_all() {
        let sim = OmpSim::new();
        let done = StdMutex::new(vec![false; 10]);
        sim.run(|ctx| {
            ctx.parallel(3, |w| {
                w.sections(10, |i| {
                    done.lock().unwrap()[i] = true;
                });
            });
        });
        assert!(done.into_inner().unwrap().iter().all(|&d| d));
    }

    #[test]
    fn critical_is_mutually_exclusive() {
        let sim = OmpSim::new();
        let counter = sim.alloc::<u64>(1, 0);
        sim.run(|ctx| {
            ctx.parallel(8, |w| {
                for _ in 0..1000 {
                    w.critical("sum", || {
                        let v = w.read(&counter, 0);
                        w.write(&counter, 0, v + 1);
                    });
                }
            });
        });
        assert_eq!(counter.get_seq(0), 8000);
    }

    #[test]
    fn named_locks_are_shared_anonymous_are_not() {
        let sim = OmpSim::new();
        let a = sim.named_lock("x");
        let b = sim.named_lock("x");
        let c = sim.named_lock("y");
        let d = sim.new_lock();
        assert_eq!(a.id(), b.id());
        assert_ne!(a.id(), c.id());
        assert_ne!(c.id(), d.id());
    }

    #[test]
    fn fetch_add_is_atomic_across_team() {
        let sim = OmpSim::new();
        let counter = sim.alloc::<u64>(1, 0);
        sim.run(|ctx| {
            ctx.parallel(8, |w| {
                for _ in 0..5000 {
                    w.fetch_add(&counter, 0, 1);
                }
            });
        });
        assert_eq!(counter.get_seq(0), 40_000);
    }

    #[test]
    fn target_region_is_a_nested_team() {
        let sim = OmpSim::new();
        let labels = StdMutex::new(Vec::new());
        sim.run(|ctx| {
            ctx.parallel(2, |host| {
                host.single_nowait(|| {
                    host.target(3, |dev| {
                        assert_eq!(dev.team_size(), 3);
                        labels.lock().unwrap().push(dev.label());
                    });
                });
                host.barrier();
            });
        });
        let labels = labels.into_inner().unwrap();
        assert_eq!(labels.len(), 3, "device team ran");
        // Device threads are nested two levels below the root; each level
        // contributes a fork-point pair plus the member pair.
        assert!(labels.iter().all(|l| l.depth() == 5));
    }

    #[test]
    fn reduce_sum_is_deterministic_and_correct() {
        let run = |threads: usize| {
            let sim = OmpSim::new();
            let a = sim.alloc::<f64>(1000, 0.0);
            for i in 0..1000 {
                a.set_seq(i, 0.1 * (i as f64 + 1.0));
            }
            let partials = sim.alloc::<f64>(threads as u64, 0.0);
            let result = sim.alloc::<f64>(1, 0.0);
            let per_thread = StdMutex::new(Vec::new());
            sim.run(|ctx| {
                ctx.parallel(threads, |w| {
                    let mut local = 0.0;
                    w.for_static_nowait(0..1000, |i| {
                        local += w.read(&a, i);
                    });
                    let total = w.reduce_sum(&partials, &result, local);
                    per_thread.lock().unwrap().push(total);
                });
            });
            let totals = per_thread.into_inner().unwrap();
            assert_eq!(totals.len(), threads);
            assert!(totals.windows(2).all(|p| p[0] == p[1]), "all threads see the result");
            totals[0]
        };
        // Deterministic across runs…
        assert_eq!(run(4).to_bits(), run(4).to_bits());
        // …and mathematically right.
        let expect: f64 = (1..=1000).map(|i| 0.1 * i as f64).sum();
        assert!((run(3) - expect).abs() < 1e-9);
    }

    #[test]
    fn reduce_with_min() {
        let sim = OmpSim::new();
        let partials = sim.alloc::<i64>(5, 0);
        let result = sim.alloc::<i64>(1, 0);
        let got = StdMutex::new(0i64);
        sim.run(|ctx| {
            ctx.parallel(5, |w| {
                let local = 100 - w.team_index() as i64 * 7;
                let m = w.reduce_with(&partials, &result, local, |a, b| a.min(b));
                if w.team_index() == 0 {
                    *got.lock().unwrap() = m;
                }
            });
        });
        assert_eq!(got.into_inner().unwrap(), 100 - 4 * 7);
    }

    #[test]
    // Worker panics surface through thread::scope's generic message.
    #[should_panic(expected = "scoped thread panicked")]
    fn reduce_requires_enough_slots() {
        let sim = OmpSim::new();
        let partials = sim.alloc::<f64>(2, 0.0);
        let result = sim.alloc::<f64>(1, 0.0);
        sim.run(|ctx| {
            ctx.parallel(4, |w| {
                w.reduce_sum(&partials, &result, 1.0);
            });
        });
    }

    #[test]
    fn footprint_tracking() {
        let sim = OmpSim::new();
        let a = sim.alloc::<f64>(1000, 0.0);
        assert_eq!(sim.declared_footprint(), 8000);
        let b = sim.alloc_phantom::<f64>(1 << 30, 1024, 0.0);
        assert_eq!(sim.declared_footprint(), 8000 + (8u64 << 30));
        drop(b);
        assert_eq!(sim.declared_footprint(), 8000);
        assert_eq!(sim.peak_footprint(), 8000 + (8u64 << 30));
        drop(a);
    }

    #[test]
    fn buffers_have_disjoint_address_ranges() {
        let sim = OmpSim::new();
        let a = sim.alloc::<u8>(100, 0);
        let b = sim.alloc::<f64>(10, 0.0);
        assert!(a.base_addr() + 100 <= b.base_addr());
        assert_eq!(b.base_addr() % 64, 0);
    }

    /// A tool that counts callbacks, for interface-contract tests.
    #[derive(Default)]
    struct CountingTool {
        accesses: AtomicUsize,
        regions: AtomicUsize,
        barriers: AtomicUsize,
        threads: AtomicUsize,
        mutexes: AtomicUsize,
    }

    impl Tool for CountingTool {
        fn parallel_begin(&self, _: &ParallelBeginInfo<'_>) {
            self.regions.fetch_add(1, Ordering::Relaxed);
        }
        fn thread_begin(&self, _: &ThreadContext<'_>) {
            self.threads.fetch_add(1, Ordering::Relaxed);
        }
        fn barrier_end(&self, _: &ThreadContext<'_>) {
            self.barriers.fetch_add(1, Ordering::Relaxed);
        }
        fn mutex_acquired(&self, _: &ThreadContext<'_>, _: MutexId) {
            self.mutexes.fetch_add(1, Ordering::Relaxed);
        }
        fn access(&self, ctx: &ThreadContext<'_>, a: MemAccess) {
            assert!(a.size > 0);
            assert!(ctx.span > 0);
            self.accesses.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn tool_sees_expected_event_counts() {
        let tool = Arc::new(CountingTool::default());
        let sim = OmpSim::with_tool(tool.clone());
        let buf = sim.alloc::<f64>(64, 0.0);
        sim.run(|ctx| {
            // Sequential access: not instrumented.
            let _ = ctx.read(&buf, 0);
            ctx.parallel(4, |w| {
                w.for_static(0..64, |i| {
                    let v = w.read(&buf, i);
                    w.write(&buf, i, v + 1.0);
                });
                w.critical("c", || {});
            });
        });
        assert_eq!(tool.regions.load(Ordering::Relaxed), 1);
        assert_eq!(tool.threads.load(Ordering::Relaxed), 4);
        assert_eq!(tool.accesses.load(Ordering::Relaxed), 128, "64 reads + 64 writes");
        assert_eq!(tool.barriers.load(Ordering::Relaxed), 4, "for_static barrier x4 threads");
        assert_eq!(tool.mutexes.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn tracked_ops_compute_correctly_under_instrumentation() {
        let sim = OmpSim::with_tool(Arc::new(crate::NullTool));
        let a = sim.alloc::<f64>(128, 0.0);
        for i in 0..128 {
            a.set_seq(i, i as f64);
        }
        let sum = sim.run(|ctx| {
            let total = sim.alloc::<f64>(1, 0.0);
            ctx.parallel(4, |w| {
                let mut local = 0.0;
                w.for_static_nowait(0..128, |i| {
                    local += w.read(&a, i);
                });
                w.fetch_add(&total, 0, local);
                w.barrier();
            });
            total.get_seq(0)
        });
        assert_eq!(sum, (0..128).sum::<u64>() as f64);
    }

    #[test]
    fn pc_interning_distinguishes_lines() {
        let tool = Arc::new(PcCollector::default());
        let sim = OmpSim::with_tool(tool.clone());
        let buf = sim.alloc::<u64>(4, 0);
        sim.run(|ctx| {
            ctx.parallel(1, |w| {
                w.write(&buf, 0, 1); // line A
                w.write(&buf, 1, 2); // line B
                w.write(&buf, 2, 3); // line C
                for _ in 0..3 {
                    w.write(&buf, 3, 4); // same line, one PC
                }
            });
        });
        let pcs = tool.pcs.lock().unwrap().clone();
        let distinct: std::collections::HashSet<_> = pcs.iter().collect();
        assert_eq!(pcs.len(), 6);
        assert_eq!(distinct.len(), 4);
        // The table resolves them to this file.
        let table = sim.export_pcs();
        for pc in distinct {
            assert!(table.resolve(*pc).unwrap().file.ends_with("runtime.rs"));
        }
    }

    #[derive(Default)]
    struct PcCollector {
        pcs: StdMutex<Vec<PcId>>,
    }

    impl Tool for PcCollector {
        fn access(&self, _: &ThreadContext<'_>, a: MemAccess) {
            self.pcs.lock().unwrap().push(a.pc);
        }
    }

    /// Records the full task callback choreography for contract tests.
    #[derive(Default)]
    struct TaskRecorder {
        events: StdMutex<Vec<String>>,
        labels: StdMutex<Vec<(String, Label)>>,
    }

    impl Tool for TaskRecorder {
        fn task_create(&self, outer: &ThreadContext<'_>, info: &TaskCreateInfo<'_>) {
            self.events.lock().unwrap().push(format!(
                "create uid={} region={} parent={} preds={:?} row={}",
                info.uid, info.region, info.parent_region, info.preds, outer.region
            ));
        }
        fn task_begin(&self, outer: &ThreadContext<'_>, task: &ThreadContext<'_>, uid: TaskUid) {
            assert_ne!(outer.tid, task.tid, "task runs under its own logical tid");
            assert_eq!(task.span, TASK_SPAN);
            self.events
                .lock()
                .unwrap()
                .push(format!("begin uid={uid} tid={} region={}", task.tid, task.region));
            self.labels.lock().unwrap().push((format!("task{uid}"), task.label.clone()));
        }
        fn task_end(&self, task: &ThreadContext<'_>, outer: &ThreadContext<'_>, uid: TaskUid) {
            // The continuation resumes logging under the task pseudo-region.
            assert_eq!(outer.region, task.region);
            assert_eq!(outer.span, TASK_SPAN);
            self.events.lock().unwrap().push(format!("end uid={uid} cont_row={}", outer.region));
            self.labels.lock().unwrap().push((format!("cont{uid}"), outer.label.clone()));
        }
        fn task_sync(&self, restored: &ThreadContext<'_>, synced: &[TaskUid]) {
            self.events
                .lock()
                .unwrap()
                .push(format!("sync row={} synced={:?}", restored.region, synced));
            self.labels.lock().unwrap().push(("after_sync".into(), restored.label.clone()));
        }
        fn access(&self, ctx: &ThreadContext<'_>, _: MemAccess) {
            self.labels.lock().unwrap().push((format!("row{}", ctx.region), ctx.label.clone()));
        }
    }

    #[test]
    fn task_choreography_and_labels() {
        let tool = Arc::new(TaskRecorder::default());
        let sim = OmpSim::with_tool(tool.clone());
        let buf = sim.alloc::<u64>(4, 0);
        sim.run(|ctx| {
            ctx.parallel(1, |w| {
                w.write(&buf, 0, 1); // pre-chain access, real region row
                w.task(|t| t.write(&buf, 1, 2));
                w.task(|t| t.write(&buf, 2, 3));
                w.write(&buf, 3, 4); // continuation access, chained row
                w.taskwait();
                w.write(&buf, 0, 5); // post-sync access, real region row again
            });
        });
        let events = tool.events.lock().unwrap().clone();
        assert_eq!(events.len(), 7, "2x(create,begin,end) + 1 sync: {events:?}");
        assert!(events[0].starts_with("create"));
        assert!(events[1].starts_with("begin"));
        assert!(events[2].starts_with("end"));
        assert!(events[6].starts_with("sync"));
        let labels = tool.labels.lock().unwrap().clone();
        let find = |k: &str| {
            labels.iter().find(|(n, _)| n == k).map(|(_, l)| l.clone()).expect("label recorded")
        };
        let (t0, t1) = (find("task1"), find("task2"));
        let (c0, c1) = (find("cont1"), find("cont2"));
        let after = find("after_sync");
        // Tasks race each other and their creator's later continuation…
        assert!(t0.concurrent(&t1));
        assert!(t0.concurrent(&c0) && t0.concurrent(&c1));
        // …creation order is exact, and the taskwait orders everything.
        assert!(c0.sequential(&t1));
        assert!(t0.sequential(&after) && t1.sequential(&after));
        // Fresh, never-pooled tids: master + 1 worker + 2 tasks.
        assert_eq!(sim.threads_used(), 4);
    }

    #[test]
    fn depend_clauses_pick_conflicting_predecessors() {
        let tool = Arc::new(TaskRecorder::default());
        let sim = OmpSim::with_tool(tool.clone());
        sim.run(|ctx| {
            ctx.parallel(1, |w| {
                let x = 100u64;
                let y = 200u64;
                w.task_depend(&[(x, DepMode::Out)], |_| {}); // A
                w.task_depend(&[(x, DepMode::In)], |_| {}); // B: dep on A
                w.task_depend(&[(x, DepMode::In)], |_| {}); // C: dep on A
                w.task_depend(&[(x, DepMode::InOut), (y, DepMode::Out)], |_| {}); // D: A,B,C
                w.task_depend(&[(y, DepMode::In)], |_| {}); // E: dep on D
                w.taskwait();
            });
        });
        let events = tool.events.lock().unwrap().clone();
        let preds: Vec<&str> = events
            .iter()
            .filter(|e| e.starts_with("create"))
            .map(|e| e.split("preds=").nth(1).unwrap().split(" row").next().unwrap())
            .collect();
        assert_eq!(preds[0], "[]");
        // Task pseudo-region ids are allocated in creation order after the
        // parallel region's id (0): A=1, B=2, C=3, D=4, E=5.
        assert_eq!(preds[1], "[1]");
        assert_eq!(preds[2], "[1]");
        assert_eq!(preds[3], "[1, 2, 3]");
        assert_eq!(preds[4], "[4]");
    }

    #[test]
    fn taskgroup_scopes_the_sync() {
        let tool = Arc::new(TaskRecorder::default());
        let sim = OmpSim::with_tool(tool.clone());
        sim.run(|ctx| {
            ctx.parallel(1, |w| {
                w.task(|_| {}); // outside the group, uid 1
                w.taskgroup(|w| {
                    w.task(|_| {}); // inside, uid 2
                    w.task(|_| {}); // inside, uid 3
                });
                w.taskwait(); // drains the pre-group task
            });
        });
        let events = tool.events.lock().unwrap().clone();
        let syncs: Vec<&String> = events.iter().filter(|e| e.starts_with("sync")).collect();
        assert_eq!(syncs.len(), 2, "{events:?}");
        assert!(syncs[0].contains("synced=[2, 3]"), "group end syncs only its own: {}", syncs[0]);
        assert!(syncs[1].contains("synced=[1]"), "taskwait drains the rest: {}", syncs[1]);
        let labels = tool.labels.lock().unwrap().clone();
        let after_group = labels
            .iter()
            .filter(|(n, _)| n == "after_sync")
            .map(|(_, l)| l.clone())
            .next()
            .unwrap();
        let task_outside =
            labels.iter().find(|(n, _)| n == "task1").map(|(_, l)| l.clone()).unwrap();
        let task_inside =
            labels.iter().find(|(n, _)| n == "task2").map(|(_, l)| l.clone()).unwrap();
        // Post-group code is ordered after group tasks but still races the
        // task that was outstanding at entry.
        assert!(task_inside.sequential(&after_group));
        assert!(task_outside.concurrent(&after_group));
    }

    #[test]
    fn implicit_region_end_syncs_outstanding_tasks() {
        let tool = Arc::new(TaskRecorder::default());
        let sim = OmpSim::with_tool(tool.clone());
        sim.run(|ctx| {
            ctx.parallel(2, |w| {
                if w.team_index() == 0 {
                    w.task(|_| {});
                }
            });
        });
        let events = tool.events.lock().unwrap().clone();
        assert!(
            events.iter().any(|e| e.starts_with("sync")),
            "region end implies a taskwait: {events:?}"
        );
    }

    #[test]
    fn barrier_is_a_task_scheduling_point() {
        let tool = Arc::new(TaskRecorder::default());
        let sim = OmpSim::with_tool(tool.clone());
        let labels = StdMutex::new(Vec::new());
        sim.run(|ctx| {
            ctx.parallel(2, |w| {
                if w.team_index() == 1 {
                    w.task(|_| {});
                }
                w.barrier();
                labels.lock().unwrap().push(w.label());
            });
        });
        let events = tool.events.lock().unwrap().clone();
        let sync_pos = events.iter().position(|e| e.starts_with("sync")).expect("implied sync");
        assert!(events[..sync_pos].iter().any(|e| e.starts_with("end")), "{events:?}");
        // After the barrier both members are on bumped base labels ordered
        // after the task.
        let task_label =
            tool.labels.lock().unwrap().iter().find(|(n, _)| n == "task1").unwrap().1.clone();
        for l in labels.into_inner().unwrap() {
            assert!(task_label.compare_barrier_aware(&l).is_sequential(), "{task_label} vs {l}");
        }
    }

    #[test]
    fn tasks_outside_parallel_run_inline() {
        let sim = OmpSim::new();
        let hits = AtomicUsize::new(0);
        sim.run(|ctx| {
            ctx.task(|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
            ctx.taskwait();
            ctx.taskgroup(|c| {
                c.task(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
        assert_eq!(sim.threads_used(), 1, "sequential tasks take no fresh tids");
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn nested_task_creation_is_rejected() {
        let sim = OmpSim::new();
        sim.run(|ctx| {
            ctx.parallel(1, |w| {
                w.task(|t| t.task(|_| {}));
            });
        });
    }

    #[test]
    fn dynamic_and_guided_chunk_models() {
        // dynamic: 10 iterations, chunk 3, span 2 → grabs at 0,3,6,9
        // alternating slots.
        let d = dynamic_chunks(0..10, 3, 2);
        assert_eq!(d, vec![(0, 0..3), (1, 3..6), (0, 6..9), (1, 9..10)]);
        // guided: decreasing sizes max(2, remaining/2).
        let g = guided_chunks(0..20, 2, 2);
        let sizes: Vec<u64> = g.iter().map(|(_, r)| r.end - r.start).collect();
        assert_eq!(sizes, vec![10, 5, 2, 2, 1]);
        assert!(sizes.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(g.last().unwrap().1.end, 20);
        // Both models tile the range exactly.
        for chunks in [d, g] {
            let mut next = 0;
            for (_, r) in chunks {
                assert_eq!(r.start, next);
                next = r.end;
            }
        }
    }

    #[test]
    fn pinned_loops_cover_ranges_exactly() {
        let sim = OmpSim::new();
        let hits = StdMutex::new(vec![0u32; 61]);
        sim.run(|ctx| {
            ctx.parallel(3, |w| {
                w.for_dynamic_pinned(0..61, 4, |i| {
                    hits.lock().unwrap()[i as usize] += 1;
                });
                w.for_guided_pinned(0..61, 2, |i| {
                    hits.lock().unwrap()[i as usize] += 1;
                });
            });
        });
        assert!(hits.into_inner().unwrap().iter().all(|&h| h == 2));
    }

    #[test]
    fn for_guided_covers_range() {
        let sim = OmpSim::new();
        let hits = StdMutex::new(vec![0u32; 97]);
        sim.run(|ctx| {
            ctx.parallel(5, |w| {
                w.for_guided(0..97, 3, |i| {
                    hits.lock().unwrap()[i as usize] += 1;
                });
                // A second guided loop must get a fresh cursor.
                w.for_guided(0..97, 3, |i| {
                    hits.lock().unwrap()[i as usize] += 1;
                });
            });
        });
        assert!(hits.into_inner().unwrap().iter().all(|&h| h == 2));
    }

    #[test]
    fn ordered_blocks_run_in_iteration_order() {
        let sim = OmpSim::new();
        let order = StdMutex::new(Vec::new());
        sim.run(|ctx| {
            ctx.parallel(4, |w| {
                w.for_static_ordered(0..16, |i, ol| {
                    w.ordered(ol, i, || {
                        order.lock().unwrap().push(i);
                    });
                });
                w.for_dynamic_pinned_ordered(16..32, 3, |i, ol| {
                    w.ordered(ol, i, || {
                        order.lock().unwrap().push(i);
                    });
                });
            });
        });
        let order = order.into_inner().unwrap();
        assert_eq!(order, (0..32).collect::<Vec<u64>>());
    }

    #[test]
    fn ordered_uses_the_mutex_callbacks() {
        let tool = Arc::new(CountingTool::default());
        let sim = OmpSim::with_tool(tool.clone());
        sim.run(|ctx| {
            ctx.parallel(2, |w| {
                w.for_static_ordered(0..6, |i, ol| {
                    w.ordered(ol, i, || {});
                });
            });
        });
        assert_eq!(tool.mutexes.load(Ordering::Relaxed), 6, "one acquire per ordered block");
    }

    #[test]
    fn explicit_pc_accessors_attribute_to_interned_sites() {
        let tool = Arc::new(PcCollector::default());
        let sim = OmpSim::with_tool(tool.clone());
        let buf = sim.alloc::<u64>(4, 0);
        let site_a = sim.intern_site("gen", 1);
        let site_b = sim.intern_site("gen", 2);
        assert_eq!(sim.intern_site("gen", 1), site_a, "interning is idempotent");
        sim.run(|ctx| {
            ctx.parallel(1, |w| {
                // One Rust line, two program sites.
                for (site, i) in [(site_a, 0), (site_b, 1)] {
                    w.write_pc(&buf, i, 7, site);
                    assert_eq!(w.read_pc(&buf, i, site), 7);
                }
                w.atomic_write_pc(&buf, 2, 9, site_a);
                assert_eq!(w.atomic_read_pc(&buf, 2, site_b), 9);
            });
            // Outside a region the explicit-PC path is uninstrumented too.
            ctx.write_pc(&buf, 3, 1, site_a);
        });
        let pcs = tool.pcs.lock().unwrap().clone();
        assert_eq!(pcs.len(), 6);
        assert_eq!(pcs.iter().filter(|&&p| p == site_a).count(), 3);
        assert_eq!(pcs.iter().filter(|&&p| p == site_b).count(), 3);
        let table = sim.export_pcs();
        assert_eq!(table.resolve(site_b).unwrap().line, 2);
        assert_eq!(table.resolve(site_b).unwrap().file, "gen");
    }
}
