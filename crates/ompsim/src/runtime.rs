//! The fork-join runtime: regions, teams, barriers, worksharing, locks,
//! and instrumented access dispatch.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::ops::Range;
use std::panic::Location;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};
use sword_osl::Label;
use sword_trace::{AccessKind, MemAccess, MutexId, PcId, PcTable, RegionId, ThreadId};

use crate::memory::{TrackedBuf, TrackedValue};
use crate::tool::{ParallelBeginInfo, ThreadContext, Tool};

/// Runtime configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Team size used by [`Ctx::parallel_default`].
    pub default_threads: usize,
    /// First virtual address handed to tracked buffers.
    pub addr_base: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            default_threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            addr_base: 0x1000_0000,
        }
    }
}

/// A named or anonymous lock usable with [`Ctx::with_lock`] — the
/// equivalent of an `omp_lock_t` / named `critical`.
#[derive(Clone, Debug)]
pub struct OmpLock {
    id: MutexId,
    lock: Arc<Mutex<()>>,
}

impl OmpLock {
    /// The lock's id as reported to tools.
    pub fn id(&self) -> MutexId {
        self.id
    }
}

#[derive(Default)]
struct MutexRegistry {
    by_name: HashMap<String, usize>,
    locks: Vec<OmpLock>,
}

/// The OpenMP-like runtime. One instance models one process running one
/// instrumented program; tools are attached at construction.
pub struct OmpSim {
    tool: Option<Arc<dyn Tool>>,
    config: SimConfig,
    next_tid: AtomicU32,
    tid_pool: Mutex<Vec<ThreadId>>,
    next_region: AtomicU64,
    next_addr: AtomicU64,
    footprint: Arc<AtomicU64>,
    peak_footprint: AtomicU64,
    pc_table: Mutex<PcTable>,
    mutexes: Mutex<MutexRegistry>,
}

impl OmpSim {
    /// An untooled runtime (baseline runs) with default config.
    pub fn new() -> Self {
        Self::with_config(SimConfig::default())
    }

    /// An untooled runtime with explicit config.
    pub fn with_config(config: SimConfig) -> Self {
        let addr_base = config.addr_base;
        OmpSim {
            tool: None,
            config,
            next_tid: AtomicU32::new(0),
            tid_pool: Mutex::new(Vec::new()),
            next_region: AtomicU64::new(0),
            next_addr: AtomicU64::new(addr_base),
            footprint: Arc::new(AtomicU64::new(0)),
            peak_footprint: AtomicU64::new(0),
            pc_table: Mutex::new(PcTable::new()),
            mutexes: Mutex::new(MutexRegistry::default()),
        }
    }

    /// A tooled runtime.
    pub fn with_tool(tool: Arc<dyn Tool>) -> Self {
        Self::with_tool_and_config(tool, SimConfig::default())
    }

    /// A tooled runtime with explicit config.
    pub fn with_tool_and_config(tool: Arc<dyn Tool>, config: SimConfig) -> Self {
        let mut sim = Self::with_config(config);
        sim.tool = Some(tool);
        sim
    }

    /// Team size used when a workload does not specify one.
    pub fn default_threads(&self) -> usize {
        self.config.default_threads
    }

    /// Runs the instrumented program `f` under this runtime. The closure
    /// receives the master (sequential) context; parallel regions are
    /// opened from it.
    pub fn run<R>(&self, f: impl FnOnce(&Ctx<'_>) -> R) -> R {
        if let Some(t) = &self.tool {
            t.program_begin();
        }
        let master_tid = self.acquire_tids(1)[0];
        let ctx = Ctx {
            sim: self,
            tid: master_tid,
            label: RefCell::new(Label::root()),
            region: None,
            fork_seq: Cell::new(0),
            pc_cache: RefCell::new(HashMap::new()),
        };
        let r = f(&ctx);
        self.release_tids(&[master_tid]);
        if let Some(t) = &self.tool {
            t.program_end();
        }
        r
    }

    /// Allocates a tracked buffer of `len` elements, fully backed.
    pub fn alloc<T: TrackedValue>(&self, len: u64, init: T) -> TrackedBuf<T> {
        assert!(len > 0, "tracked buffer needs at least one element");
        self.alloc_phantom(len, len as usize, init)
    }

    /// Allocates a tracked buffer with `declared_len` virtual elements
    /// backed by `real_len` physical ones (indices wrap onto the backing).
    /// Use for workloads whose declared footprint must exceed physical
    /// RAM — the address stream and footprint accounting see the full
    /// declared size.
    pub fn alloc_phantom<T: TrackedValue>(
        &self,
        declared_len: u64,
        real_len: usize,
        init: T,
    ) -> TrackedBuf<T> {
        let bytes = declared_len * T::SIZE_BYTES as u64;
        // 64-byte-aligned virtual placements keep buffers disjoint and
        // cache-line-shaped like real allocators.
        let padded = (bytes + 63) & !63;
        let base = self.next_addr.fetch_add(padded, Ordering::Relaxed);
        let buf =
            TrackedBuf::new_internal(base, declared_len, real_len, init, self.footprint.clone());
        self.peak_footprint.fetch_max(self.footprint.load(Ordering::Relaxed), Ordering::Relaxed);
        buf
    }

    /// Currently live declared footprint in bytes (the application
    /// "baseline memory" of the paper's figures).
    pub fn declared_footprint(&self) -> u64 {
        self.footprint.load(Ordering::Relaxed)
    }

    /// Live handle to the declared-footprint counter, for tools that model
    /// node memory pressure against the application baseline (the ARCHER
    /// baseline's OOM model reads it on every accounting step).
    pub fn footprint_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.footprint)
    }

    /// High-water mark of the declared footprint.
    pub fn peak_footprint(&self) -> u64 {
        self.peak_footprint.load(Ordering::Relaxed)
    }

    /// Number of distinct worker threads (= log files) used so far.
    pub fn threads_used(&self) -> u32 {
        self.next_tid.load(Ordering::Relaxed)
    }

    /// Gets or creates the named lock backing `critical(name)` sections.
    pub fn named_lock(&self, name: &str) -> OmpLock {
        let mut reg = self.mutexes.lock();
        if let Some(&idx) = reg.by_name.get(name) {
            return reg.locks[idx].clone();
        }
        let idx = reg.locks.len();
        let lock = OmpLock { id: idx as MutexId, lock: Arc::new(Mutex::new(())) };
        reg.by_name.insert(name.to_string(), idx);
        reg.locks.push(lock.clone());
        lock
    }

    /// Creates a fresh anonymous lock (an `omp_init_lock` equivalent).
    pub fn new_lock(&self) -> OmpLock {
        let mut reg = self.mutexes.lock();
        let id = reg.locks.len() as MutexId;
        let lock = OmpLock { id, lock: Arc::new(Mutex::new(())) };
        reg.locks.push(lock.clone());
        lock
    }

    /// Snapshot of the program-counter table for session persistence.
    pub fn export_pcs(&self) -> PcTable {
        self.pc_table.lock().clone()
    }

    /// Interns a synthetic source location and returns its id.
    ///
    /// Programs executed through an interpreter (the fuzz generator's
    /// driver, for instance) have no distinct Rust call sites — every
    /// access would collapse onto the interpreter's one `read`/`write`
    /// line. Such callers intern one virtual site per *program* statement
    /// up front and attribute accesses through the `*_pc` methods of
    /// [`Ctx`], so race reports keep per-statement identities.
    pub fn intern_site(&self, file: &str, line: u32) -> PcId {
        self.pc_table.lock().intern(file, line)
    }

    fn intern_pc(&self, loc: &'static Location<'static>) -> PcId {
        self.pc_table.lock().intern(loc.file(), loc.line())
    }

    /// Hands out `n` thread ids deterministically: pooled ids first
    /// (ascending), fresh ids after — so consecutive same-width regions
    /// reuse the same ids, as a real OpenMP thread pool does.
    fn acquire_tids(&self, n: u64) -> Vec<ThreadId> {
        let mut pool = self.tid_pool.lock();
        pool.sort_unstable();
        let take = (n as usize).min(pool.len());
        let mut ids: Vec<ThreadId> = pool.drain(..take).collect();
        while ids.len() < n as usize {
            ids.push(self.next_tid.fetch_add(1, Ordering::Relaxed));
        }
        ids
    }

    fn release_tids(&self, ids: &[ThreadId]) {
        self.tid_pool.lock().extend_from_slice(ids);
    }
}

impl Default for OmpSim {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for OmpSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OmpSim")
            .field("tooled", &self.tool.is_some())
            .field("threads_used", &self.threads_used())
            .field("declared_footprint", &self.declared_footprint())
            .finish()
    }
}

/// Team-shared state: the physical barrier and dynamic-loop cursors.
struct TeamState {
    span: u64,
    barrier: Mutex<BarrierInner>,
    barrier_cv: Condvar,
    dyn_loops: Mutex<HashMap<u64, Arc<AtomicU64>>>,
}

#[derive(Default)]
struct BarrierInner {
    arrived: u64,
    generation: u64,
}

impl TeamState {
    fn new(span: u64) -> Self {
        TeamState {
            span,
            barrier: Mutex::new(BarrierInner::default()),
            barrier_cv: Condvar::new(),
            dyn_loops: Mutex::new(HashMap::new()),
        }
    }

    /// Generation-counting rendezvous of all `span` members.
    fn wait(&self) {
        let mut inner = self.barrier.lock();
        let gen = inner.generation;
        inner.arrived += 1;
        if inner.arrived == self.span {
            inner.arrived = 0;
            inner.generation += 1;
            self.barrier_cv.notify_all();
        } else {
            while inner.generation == gen {
                self.barrier_cv.wait(&mut inner);
            }
        }
    }

    /// Shared cursor for the `key`-th dynamic loop of the region.
    fn dyn_cursor(&self, key: u64, start: u64) -> Arc<AtomicU64> {
        let mut map = self.dyn_loops.lock();
        map.entry(key).or_insert_with(|| Arc::new(AtomicU64::new(start))).clone()
    }
}

struct RegionInfo {
    region: RegionId,
    parent_region: Option<RegionId>,
    level: u32,
    team_index: u64,
    span: u64,
    bid: Cell<u32>,
    team: Arc<TeamState>,
    dyn_loop_seq: Cell<u64>,
}

/// Per-thread execution context. The master context (from
/// [`OmpSim::run`]) is sequential; worker contexts live inside parallel
/// regions. All workload code runs against a `Ctx`.
pub struct Ctx<'rt> {
    sim: &'rt OmpSim,
    tid: ThreadId,
    label: RefCell<Label>,
    region: Option<RegionInfo>,
    /// Number of nested regions this thread has forked (and joined) so
    /// far. Each fork's label is `label · [fork_seq, 1]` — see
    /// [`Label::fork_point`]: the span-1 pair orders this thread's
    /// successive teams without making the join look like a barrier
    /// crossing to sibling members.
    fork_seq: Cell<u64>,
    pc_cache: RefCell<HashMap<(usize, u32), PcId>>,
}

impl<'rt> Ctx<'rt> {
    /// The runtime this context belongs to.
    pub fn sim(&self) -> &'rt OmpSim {
        self.sim
    }

    /// This thread's global id.
    pub fn tid(&self) -> ThreadId {
        self.tid
    }

    /// This thread's slot in its team (0 for the master context).
    pub fn team_index(&self) -> u64 {
        self.region.as_ref().map_or(0, |r| r.team_index)
    }

    /// Team size (1 for the master context).
    pub fn team_size(&self) -> u64 {
        self.region.as_ref().map_or(1, |r| r.span)
    }

    /// `true` inside a parallel region.
    pub fn in_parallel(&self) -> bool {
        self.region.is_some()
    }

    /// Current offset-span label (clone).
    pub fn label(&self) -> Label {
        self.label.borrow().clone()
    }

    // ---- regions ----------------------------------------------------------

    /// Forks a parallel region of `num_threads` workers, runs `body` in
    /// each, and joins (the implicit end-of-region barrier coincides with
    /// the join). The forking thread does not execute `body`; workers are
    /// fresh team slots `0..num_threads`, with pooled thread ids.
    pub fn parallel<F>(&self, num_threads: usize, body: F)
    where
        F: Fn(&Ctx<'rt>) + Sync,
    {
        let span = num_threads.max(1) as u64;
        let region = self.sim.next_region.fetch_add(1, Ordering::Relaxed);
        let (parent_region, level) = match &self.region {
            Some(r) => (Some(r.region), r.level + 1),
            None => (None, 1),
        };
        let fork_label = self.label.borrow().fork_point(self.fork_seq.get());
        if let Some(t) = &self.sim.tool {
            t.parallel_begin(&ParallelBeginInfo {
                region,
                parent_region,
                level,
                span,
                fork_label: &fork_label,
                fork_tid: self.tid,
            });
        }
        let tids = self.sim.acquire_tids(span);
        let team = Arc::new(TeamState::new(span));
        let sim = self.sim;
        std::thread::scope(|s| {
            for i in 0..span {
                let tid = tids[i as usize];
                let team = Arc::clone(&team);
                let fork_label = &fork_label;
                let body = &body;
                s.spawn(move || {
                    let ctx = Ctx {
                        sim,
                        tid,
                        label: RefCell::new(fork_label.fork(i, span)),
                        region: Some(RegionInfo {
                            region,
                            parent_region,
                            level,
                            team_index: i,
                            span,
                            bid: Cell::new(0),
                            team,
                            dyn_loop_seq: Cell::new(0),
                        }),
                        fork_seq: Cell::new(0),
                        pc_cache: RefCell::new(HashMap::new()),
                    };
                    ctx.with_tool(|t, tc| t.thread_begin(tc));
                    body(&ctx);
                    ctx.with_tool(|t, tc| t.thread_end(tc));
                });
            }
        });
        self.sim.release_tids(&tids);
        // The join orders this thread's next fork after the finished team
        // via the fork-sequence component; the thread's own label must NOT
        // bump — a join is not a barrier, and bumping here would make this
        // thread's later subtrees look barrier-ordered against *sibling*
        // members' accesses in the offline analysis.
        self.fork_seq.set(self.fork_seq.get() + 1);
        if let Some(t) = &self.sim.tool {
            t.parallel_end(region, self.tid);
        }
    }

    /// [`Ctx::parallel`] with the runtime's configured default team size.
    pub fn parallel_default<F>(&self, body: F)
    where
        F: Fn(&Ctx<'rt>) + Sync,
    {
        self.parallel(self.sim.config.default_threads, body);
    }

    /// `#pragma omp target teams parallel` equivalent — the paper's
    /// future-work item ("extend SWORD's approach to target regions that
    /// are offloaded on accelerators"), realized here for the synchronous
    /// offload case: the device region is a nested fork-join team whose
    /// completion the host awaits, so offset-span labels order it exactly
    /// like a nested parallel region and both detectors handle it with no
    /// special cases. Device threads draw from the same pooled id space
    /// (one log file per device thread).
    pub fn target<F>(&self, device_threads: usize, body: F)
    where
        F: Fn(&Ctx<'rt>) + Sync,
    {
        self.parallel(device_threads, body);
    }

    // ---- barriers ---------------------------------------------------------

    /// Explicit team barrier (`#pragma omp barrier`). A no-op in the
    /// master (sequential) context.
    pub fn barrier(&self) {
        let Some(r) = &self.region else { return };
        self.with_tool(|t, tc| t.barrier_begin(tc));
        r.team.wait();
        self.label.borrow_mut().bump_in_place();
        r.bid.set(r.bid.get() + 1);
        self.with_tool(|t, tc| t.barrier_end(tc));
    }

    // ---- worksharing ------------------------------------------------------

    /// `#pragma omp for schedule(static)`: contiguous chunks, implicit
    /// barrier at the end.
    pub fn for_static(&self, range: Range<u64>, body: impl FnMut(u64)) {
        self.for_static_nowait(range, body);
        self.barrier();
    }

    /// `#pragma omp for schedule(static) nowait`: no closing barrier, so
    /// following accesses share the barrier interval with the loop —
    /// exactly the situation of DataRaceBench's `nowait-orig-yes`.
    pub fn for_static_nowait(&self, range: Range<u64>, mut body: impl FnMut(u64)) {
        let n = range.end.saturating_sub(range.start);
        if n == 0 {
            return;
        }
        let span = self.team_size();
        let idx = self.team_index();
        let chunk = n.div_ceil(span);
        let lo = range.start + (idx * chunk).min(n);
        let hi = range.start + ((idx + 1) * chunk).min(n);
        for i in lo..hi {
            body(i);
        }
    }

    /// `schedule(static, chunk)`: round-robin chunks, implicit barrier.
    pub fn for_static_chunked(&self, range: Range<u64>, chunk: u64, mut body: impl FnMut(u64)) {
        assert!(chunk > 0);
        let span = self.team_size();
        let idx = self.team_index();
        let mut start = range.start + idx * chunk;
        while start < range.end {
            let end = (start + chunk).min(range.end);
            for i in start..end {
                body(i);
            }
            start += span * chunk;
        }
        self.barrier();
    }

    /// `schedule(dynamic, chunk)`: threads claim chunks from a shared
    /// cursor; implicit barrier at the end.
    pub fn for_dynamic(&self, range: Range<u64>, chunk: u64, mut body: impl FnMut(u64)) {
        assert!(chunk > 0);
        match &self.region {
            None => {
                for i in range {
                    body(i);
                }
            }
            Some(r) => {
                let key = r.dyn_loop_seq.get();
                r.dyn_loop_seq.set(key + 1);
                let cursor = r.team.dyn_cursor(key, range.start);
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= range.end {
                        break;
                    }
                    let end = (start + chunk).min(range.end);
                    for i in start..end {
                        body(i);
                    }
                }
                self.barrier();
            }
        }
    }

    /// `#pragma omp sections`: section `i` of `count` runs on thread
    /// `i % span`; implicit barrier at the end.
    pub fn sections(&self, count: usize, mut body: impl FnMut(usize)) {
        let span = self.team_size();
        let idx = self.team_index();
        let mut i = idx as usize;
        while i < count {
            body(i);
            i += span as usize;
        }
        self.barrier();
    }

    /// `#pragma omp master`: runs only on team slot 0; **no** barrier.
    pub fn master(&self, body: impl FnOnce()) {
        if self.team_index() == 0 {
            body();
        }
    }

    /// `#pragma omp single`: one thread runs the body, then an implicit
    /// barrier. (Deterministically slot 0 — a modeling simplification of
    /// "first arrival"; the event structure is identical.)
    pub fn single(&self, body: impl FnOnce()) {
        if self.team_index() == 0 {
            body();
        }
        self.barrier();
    }

    /// `single nowait`: no closing barrier.
    pub fn single_nowait(&self, body: impl FnOnce()) {
        if self.team_index() == 0 {
            body();
        }
    }

    // ---- reductions ---------------------------------------------------------

    /// Deterministic team reduction (`reduction(op: x)` equivalent): each
    /// thread deposits `local` in its slot of `partials` (which must hold
    /// at least `team_size` elements), slot 0 folds the slots in index
    /// order into `result[0]`, and every thread returns the folded value.
    /// Barrier-synchronized on both sides, so the result is race-free and
    /// bit-reproducible regardless of thread scheduling — unlike a naive
    /// atomic accumulation, whose floating-point fold order varies.
    #[track_caller]
    pub fn reduce_with<T: TrackedValue>(
        &self,
        partials: &TrackedBuf<T>,
        result: &TrackedBuf<T>,
        local: T,
        combine: impl Fn(T, T) -> T,
    ) -> T {
        let span = self.team_size();
        assert!(
            partials.len() >= span,
            "reduce_with needs one partial slot per team member ({span})"
        );
        let t = self.team_index();
        self.write(partials, t, local);
        self.barrier();
        self.single(|| {
            let mut acc = self.read(partials, 0);
            for i in 1..span {
                acc = combine(acc, self.read(partials, i));
            }
            self.write(result, 0, acc);
        });
        self.read(result, 0)
    }

    /// [`Ctx::reduce_with`] folding with `+`.
    #[track_caller]
    pub fn reduce_sum<T>(&self, partials: &TrackedBuf<T>, result: &TrackedBuf<T>, local: T) -> T
    where
        T: TrackedValue + std::ops::Add<Output = T>,
    {
        self.reduce_with(partials, result, local, |a, b| a + b)
    }

    // ---- synchronization --------------------------------------------------

    /// `#pragma omp critical(name)`.
    pub fn critical<R>(&self, name: &str, body: impl FnOnce() -> R) -> R {
        let lock = self.sim.named_lock(name);
        self.with_lock(&lock, body)
    }

    /// Runs `body` holding `lock`, emitting mutex events to the tool.
    pub fn with_lock<R>(&self, lock: &OmpLock, body: impl FnOnce() -> R) -> R {
        let guard = lock.lock.lock();
        self.with_tool(|t, tc| t.mutex_acquired(tc, lock.id));
        let r = body();
        self.with_tool(|t, tc| t.mutex_released(tc, lock.id));
        drop(guard);
        r
    }

    // ---- instrumented memory ----------------------------------------------

    /// Instrumented load of `buf[i]`.
    #[track_caller]
    pub fn read<T: TrackedValue>(&self, buf: &TrackedBuf<T>, i: u64) -> T {
        let v = buf.load(i);
        self.observe(buf.addr_of(i), T::SIZE_BYTES, AccessKind::Read, Location::caller());
        v
    }

    /// Instrumented store of `buf[i] = v`.
    #[track_caller]
    pub fn write<T: TrackedValue>(&self, buf: &TrackedBuf<T>, i: u64, v: T) {
        buf.store(i, v);
        self.observe(buf.addr_of(i), T::SIZE_BYTES, AccessKind::Write, Location::caller());
    }

    /// Instrumented atomic load (`#pragma omp atomic read`).
    #[track_caller]
    pub fn atomic_read<T: TrackedValue>(&self, buf: &TrackedBuf<T>, i: u64) -> T {
        let v = buf.load(i);
        self.observe(buf.addr_of(i), T::SIZE_BYTES, AccessKind::AtomicRead, Location::caller());
        v
    }

    /// Instrumented atomic store (`#pragma omp atomic write`).
    #[track_caller]
    pub fn atomic_write<T: TrackedValue>(&self, buf: &TrackedBuf<T>, i: u64, v: T) {
        buf.store(i, v);
        self.observe(buf.addr_of(i), T::SIZE_BYTES, AccessKind::AtomicWrite, Location::caller());
    }

    /// Instrumented atomic read-modify-write (`#pragma omp atomic`);
    /// returns the previous value.
    #[track_caller]
    pub fn atomic_update<T: TrackedValue>(
        &self,
        buf: &TrackedBuf<T>,
        i: u64,
        f: impl Fn(T) -> T,
    ) -> T {
        let prev = buf.rmw(i, f);
        self.observe(buf.addr_of(i), T::SIZE_BYTES, AccessKind::AtomicWrite, Location::caller());
        prev
    }

    /// Instrumented `buf[i] += delta` via atomic RMW; returns the previous
    /// value.
    #[track_caller]
    pub fn fetch_add<T>(&self, buf: &TrackedBuf<T>, i: u64, delta: T) -> T
    where
        T: TrackedValue + std::ops::Add<Output = T>,
    {
        let prev = buf.rmw(i, |v| v + delta);
        self.observe(buf.addr_of(i), T::SIZE_BYTES, AccessKind::AtomicWrite, Location::caller());
        prev
    }

    // ---- explicit-PC instrumented memory ----------------------------------
    //
    // Variants of the accessors above for interpreted programs: the caller
    // supplies a pre-interned site (see `OmpSim::intern_site`) instead of
    // relying on `#[track_caller]`, so distinct *program* statements stay
    // distinct in race reports even when one Rust line executes them all.

    /// Instrumented load of `buf[i]` attributed to site `pc`.
    pub fn read_pc<T: TrackedValue>(&self, buf: &TrackedBuf<T>, i: u64, pc: PcId) -> T {
        let v = buf.load(i);
        self.observe_pc(buf.addr_of(i), T::SIZE_BYTES, AccessKind::Read, pc);
        v
    }

    /// Instrumented store of `buf[i] = v` attributed to site `pc`.
    pub fn write_pc<T: TrackedValue>(&self, buf: &TrackedBuf<T>, i: u64, v: T, pc: PcId) {
        buf.store(i, v);
        self.observe_pc(buf.addr_of(i), T::SIZE_BYTES, AccessKind::Write, pc);
    }

    /// Instrumented atomic load attributed to site `pc`.
    pub fn atomic_read_pc<T: TrackedValue>(&self, buf: &TrackedBuf<T>, i: u64, pc: PcId) -> T {
        let v = buf.load(i);
        self.observe_pc(buf.addr_of(i), T::SIZE_BYTES, AccessKind::AtomicRead, pc);
        v
    }

    /// Instrumented atomic store attributed to site `pc`.
    pub fn atomic_write_pc<T: TrackedValue>(&self, buf: &TrackedBuf<T>, i: u64, v: T, pc: PcId) {
        buf.store(i, v);
        self.observe_pc(buf.addr_of(i), T::SIZE_BYTES, AccessKind::AtomicWrite, pc);
    }

    // ---- internals --------------------------------------------------------

    fn with_tool(&self, f: impl FnOnce(&dyn Tool, &ThreadContext<'_>)) {
        let (Some(tool), Some(r)) = (&self.sim.tool, &self.region) else { return };
        let label = self.label.borrow();
        let tc = ThreadContext {
            tid: self.tid,
            region: r.region,
            parent_region: r.parent_region,
            level: r.level,
            team_index: r.team_index,
            span: r.span,
            bid: r.bid.get(),
            label: &label,
        };
        f(tool.as_ref(), &tc);
    }

    fn observe(&self, addr: u64, size: u8, kind: AccessKind, loc: &'static Location<'static>) {
        // Sequential (outside-region) accesses are not instrumented — the
        // paper's pass only instruments loads/stores in parallel regions.
        if self.region.is_none() || self.sim.tool.is_none() {
            return;
        }
        let pc = self.pc_of(loc);
        self.with_tool(|t, tc| t.access(tc, MemAccess { addr, size, kind, pc }));
    }

    fn observe_pc(&self, addr: u64, size: u8, kind: AccessKind, pc: PcId) {
        if self.region.is_none() || self.sim.tool.is_none() {
            return;
        }
        self.with_tool(|t, tc| t.access(tc, MemAccess { addr, size, kind, pc }));
    }

    fn pc_of(&self, loc: &'static Location<'static>) -> PcId {
        let key = (loc.file().as_ptr() as usize, loc.line());
        if let Some(&id) = self.pc_cache.borrow().get(&key) {
            return id;
        }
        let id = self.sim.intern_pc(loc);
        self.pc_cache.borrow_mut().insert(key, id);
        id
    }
}

impl std::fmt::Debug for Ctx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("tid", &self.tid)
            .field("label", &format_args!("{}", self.label.borrow()))
            .field("in_parallel", &self.in_parallel())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Mutex as StdMutex;

    #[test]
    fn master_context_is_sequential() {
        let sim = OmpSim::new();
        sim.run(|ctx| {
            assert!(!ctx.in_parallel());
            assert_eq!(ctx.team_size(), 1);
            assert_eq!(format!("{}", ctx.label()), "[0,1]");
            ctx.barrier(); // no-op
        });
    }

    #[test]
    fn parallel_runs_all_workers() {
        let sim = OmpSim::new();
        let hits = AtomicUsize::new(0);
        sim.run(|ctx| {
            ctx.parallel(6, |w| {
                assert!(w.in_parallel());
                assert_eq!(w.team_size(), 6);
                assert!(w.team_index() < 6);
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn worker_labels_follow_osl_rules() {
        let sim = OmpSim::new();
        let labels = StdMutex::new(Vec::new());
        sim.run(|ctx| {
            ctx.parallel(3, |w| {
                labels.lock().unwrap().push(w.label());
            });
            // A join does not bump the master's label (it is not a
            // barrier); the next fork is ordered by the fork-sequence
            // component instead.
            assert_eq!(format!("{}", ctx.label()), "[0,1]");
            ctx.parallel(1, |w| {
                // Second region: fork-point pair [1,1] between the root
                // label and the member pair.
                assert_eq!(format!("{}", w.label()), "[0,1][1,1][0,1]");
            });
        });
        let labels = labels.into_inner().unwrap();
        assert_eq!(labels.len(), 3);
        for a in &labels {
            for b in &labels {
                if a != b {
                    assert!(a.concurrent(b), "{a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn sequential_regions_are_ordered() {
        let sim = OmpSim::new();
        let (l1, l2) = sim.run(|ctx| {
            let l1 = StdMutex::new(None);
            ctx.parallel(2, |w| {
                if w.team_index() == 0 {
                    *l1.lock().unwrap() = Some(w.label());
                }
            });
            let l2 = StdMutex::new(None);
            ctx.parallel(2, |w| {
                if w.team_index() == 0 {
                    *l2.lock().unwrap() = Some(w.label());
                }
            });
            (l1.into_inner().unwrap().unwrap(), l2.into_inner().unwrap().unwrap())
        });
        assert!(l1.sequential(&l2), "{l1} vs {l2}");
    }

    #[test]
    fn barrier_bumps_label_and_bid() {
        let sim = OmpSim::new();
        let seen = StdMutex::new(Vec::new());
        sim.run(|ctx| {
            ctx.parallel(4, |w| {
                let before = w.label();
                w.barrier();
                let after = w.label();
                seen.lock().unwrap().push((before, after));
            });
        });
        for (before, after) in seen.into_inner().unwrap() {
            assert!(before.sequential(&after));
            assert_eq!(after.last().unwrap().offset, before.last().unwrap().offset + 4);
        }
    }

    #[test]
    fn nested_parallelism_levels_and_concurrency() {
        let sim = OmpSim::new();
        let inner_labels = StdMutex::new(Vec::new());
        sim.run(|ctx| {
            ctx.parallel(2, |w| {
                w.parallel(2, |inner| {
                    inner_labels.lock().unwrap().push(inner.label());
                });
            });
        });
        let labels = inner_labels.into_inner().unwrap();
        assert_eq!(labels.len(), 4);
        // All inner workers across both inner regions are mutually
        // concurrent (they hang off concurrent outer threads or are
        // siblings).
        for a in &labels {
            for b in &labels {
                if a != b {
                    assert!(a.concurrent(b), "{a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn thread_ids_are_pooled_across_regions() {
        let sim = OmpSim::new();
        let round1 = StdMutex::new(Vec::new());
        let round2 = StdMutex::new(Vec::new());
        sim.run(|ctx| {
            ctx.parallel(4, |w| {
                round1.lock().unwrap().push(w.tid());
            });
            ctx.parallel(4, |w| {
                round2.lock().unwrap().push(w.tid());
            });
        });
        let mut r1 = round1.into_inner().unwrap();
        let mut r2 = round2.into_inner().unwrap();
        r1.sort_unstable();
        r2.sort_unstable();
        assert_eq!(r1, r2, "same pool of tids reused");
        // Master took tid 0; five distinct tids total.
        assert_eq!(sim.threads_used(), 5);
    }

    #[test]
    fn for_static_partitions_exactly() {
        let sim = OmpSim::new();
        let hits = StdMutex::new(vec![0u32; 100]);
        sim.run(|ctx| {
            ctx.parallel(7, |w| {
                w.for_static(0..100, |i| {
                    hits.lock().unwrap()[i as usize] += 1;
                });
            });
        });
        assert!(hits.into_inner().unwrap().iter().all(|&h| h == 1));
    }

    #[test]
    fn for_static_empty_range() {
        let sim = OmpSim::new();
        sim.run(|ctx| {
            ctx.parallel(4, |w| {
                w.for_static_nowait(10..10, |_| panic!("no iterations"));
            });
        });
    }

    #[test]
    fn for_static_chunked_covers_range() {
        let sim = OmpSim::new();
        let hits = StdMutex::new(vec![0u32; 53]);
        sim.run(|ctx| {
            ctx.parallel(4, |w| {
                w.for_static_chunked(0..53, 5, |i| {
                    hits.lock().unwrap()[i as usize] += 1;
                });
            });
        });
        assert!(hits.into_inner().unwrap().iter().all(|&h| h == 1));
    }

    #[test]
    fn for_dynamic_covers_range() {
        let sim = OmpSim::new();
        let hits = StdMutex::new(vec![0u32; 97]);
        sim.run(|ctx| {
            ctx.parallel(5, |w| {
                w.for_dynamic(0..97, 4, |i| {
                    hits.lock().unwrap()[i as usize] += 1;
                });
                // A second dynamic loop must get a fresh cursor.
                w.for_dynamic(0..97, 4, |i| {
                    hits.lock().unwrap()[i as usize] += 1;
                });
            });
        });
        assert!(hits.into_inner().unwrap().iter().all(|&h| h == 2));
    }

    #[test]
    fn master_and_single_run_once() {
        let sim = OmpSim::new();
        let m = AtomicUsize::new(0);
        let s1 = AtomicUsize::new(0);
        let s2 = AtomicUsize::new(0);
        sim.run(|ctx| {
            ctx.parallel(8, |w| {
                w.master(|| {
                    m.fetch_add(1, Ordering::Relaxed);
                });
                w.single(|| {
                    s1.fetch_add(1, Ordering::Relaxed);
                });
                w.single_nowait(|| {
                    s2.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(m.load(Ordering::Relaxed), 1);
        assert_eq!(s1.load(Ordering::Relaxed), 1);
        assert_eq!(s2.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn sections_distribute_all() {
        let sim = OmpSim::new();
        let done = StdMutex::new(vec![false; 10]);
        sim.run(|ctx| {
            ctx.parallel(3, |w| {
                w.sections(10, |i| {
                    done.lock().unwrap()[i] = true;
                });
            });
        });
        assert!(done.into_inner().unwrap().iter().all(|&d| d));
    }

    #[test]
    fn critical_is_mutually_exclusive() {
        let sim = OmpSim::new();
        let counter = sim.alloc::<u64>(1, 0);
        sim.run(|ctx| {
            ctx.parallel(8, |w| {
                for _ in 0..1000 {
                    w.critical("sum", || {
                        let v = w.read(&counter, 0);
                        w.write(&counter, 0, v + 1);
                    });
                }
            });
        });
        assert_eq!(counter.get_seq(0), 8000);
    }

    #[test]
    fn named_locks_are_shared_anonymous_are_not() {
        let sim = OmpSim::new();
        let a = sim.named_lock("x");
        let b = sim.named_lock("x");
        let c = sim.named_lock("y");
        let d = sim.new_lock();
        assert_eq!(a.id(), b.id());
        assert_ne!(a.id(), c.id());
        assert_ne!(c.id(), d.id());
    }

    #[test]
    fn fetch_add_is_atomic_across_team() {
        let sim = OmpSim::new();
        let counter = sim.alloc::<u64>(1, 0);
        sim.run(|ctx| {
            ctx.parallel(8, |w| {
                for _ in 0..5000 {
                    w.fetch_add(&counter, 0, 1);
                }
            });
        });
        assert_eq!(counter.get_seq(0), 40_000);
    }

    #[test]
    fn target_region_is_a_nested_team() {
        let sim = OmpSim::new();
        let labels = StdMutex::new(Vec::new());
        sim.run(|ctx| {
            ctx.parallel(2, |host| {
                host.single_nowait(|| {
                    host.target(3, |dev| {
                        assert_eq!(dev.team_size(), 3);
                        labels.lock().unwrap().push(dev.label());
                    });
                });
                host.barrier();
            });
        });
        let labels = labels.into_inner().unwrap();
        assert_eq!(labels.len(), 3, "device team ran");
        // Device threads are nested two levels below the root; each level
        // contributes a fork-point pair plus the member pair.
        assert!(labels.iter().all(|l| l.depth() == 5));
    }

    #[test]
    fn reduce_sum_is_deterministic_and_correct() {
        let run = |threads: usize| {
            let sim = OmpSim::new();
            let a = sim.alloc::<f64>(1000, 0.0);
            for i in 0..1000 {
                a.set_seq(i, 0.1 * (i as f64 + 1.0));
            }
            let partials = sim.alloc::<f64>(threads as u64, 0.0);
            let result = sim.alloc::<f64>(1, 0.0);
            let per_thread = StdMutex::new(Vec::new());
            sim.run(|ctx| {
                ctx.parallel(threads, |w| {
                    let mut local = 0.0;
                    w.for_static_nowait(0..1000, |i| {
                        local += w.read(&a, i);
                    });
                    let total = w.reduce_sum(&partials, &result, local);
                    per_thread.lock().unwrap().push(total);
                });
            });
            let totals = per_thread.into_inner().unwrap();
            assert_eq!(totals.len(), threads);
            assert!(totals.windows(2).all(|p| p[0] == p[1]), "all threads see the result");
            totals[0]
        };
        // Deterministic across runs…
        assert_eq!(run(4).to_bits(), run(4).to_bits());
        // …and mathematically right.
        let expect: f64 = (1..=1000).map(|i| 0.1 * i as f64).sum();
        assert!((run(3) - expect).abs() < 1e-9);
    }

    #[test]
    fn reduce_with_min() {
        let sim = OmpSim::new();
        let partials = sim.alloc::<i64>(5, 0);
        let result = sim.alloc::<i64>(1, 0);
        let got = StdMutex::new(0i64);
        sim.run(|ctx| {
            ctx.parallel(5, |w| {
                let local = 100 - w.team_index() as i64 * 7;
                let m = w.reduce_with(&partials, &result, local, |a, b| a.min(b));
                if w.team_index() == 0 {
                    *got.lock().unwrap() = m;
                }
            });
        });
        assert_eq!(got.into_inner().unwrap(), 100 - 4 * 7);
    }

    #[test]
    // Worker panics surface through thread::scope's generic message.
    #[should_panic(expected = "scoped thread panicked")]
    fn reduce_requires_enough_slots() {
        let sim = OmpSim::new();
        let partials = sim.alloc::<f64>(2, 0.0);
        let result = sim.alloc::<f64>(1, 0.0);
        sim.run(|ctx| {
            ctx.parallel(4, |w| {
                w.reduce_sum(&partials, &result, 1.0);
            });
        });
    }

    #[test]
    fn footprint_tracking() {
        let sim = OmpSim::new();
        let a = sim.alloc::<f64>(1000, 0.0);
        assert_eq!(sim.declared_footprint(), 8000);
        let b = sim.alloc_phantom::<f64>(1 << 30, 1024, 0.0);
        assert_eq!(sim.declared_footprint(), 8000 + (8u64 << 30));
        drop(b);
        assert_eq!(sim.declared_footprint(), 8000);
        assert_eq!(sim.peak_footprint(), 8000 + (8u64 << 30));
        drop(a);
    }

    #[test]
    fn buffers_have_disjoint_address_ranges() {
        let sim = OmpSim::new();
        let a = sim.alloc::<u8>(100, 0);
        let b = sim.alloc::<f64>(10, 0.0);
        assert!(a.base_addr() + 100 <= b.base_addr());
        assert_eq!(b.base_addr() % 64, 0);
    }

    /// A tool that counts callbacks, for interface-contract tests.
    #[derive(Default)]
    struct CountingTool {
        accesses: AtomicUsize,
        regions: AtomicUsize,
        barriers: AtomicUsize,
        threads: AtomicUsize,
        mutexes: AtomicUsize,
    }

    impl Tool for CountingTool {
        fn parallel_begin(&self, _: &ParallelBeginInfo<'_>) {
            self.regions.fetch_add(1, Ordering::Relaxed);
        }
        fn thread_begin(&self, _: &ThreadContext<'_>) {
            self.threads.fetch_add(1, Ordering::Relaxed);
        }
        fn barrier_end(&self, _: &ThreadContext<'_>) {
            self.barriers.fetch_add(1, Ordering::Relaxed);
        }
        fn mutex_acquired(&self, _: &ThreadContext<'_>, _: MutexId) {
            self.mutexes.fetch_add(1, Ordering::Relaxed);
        }
        fn access(&self, ctx: &ThreadContext<'_>, a: MemAccess) {
            assert!(a.size > 0);
            assert!(ctx.span > 0);
            self.accesses.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn tool_sees_expected_event_counts() {
        let tool = Arc::new(CountingTool::default());
        let sim = OmpSim::with_tool(tool.clone());
        let buf = sim.alloc::<f64>(64, 0.0);
        sim.run(|ctx| {
            // Sequential access: not instrumented.
            let _ = ctx.read(&buf, 0);
            ctx.parallel(4, |w| {
                w.for_static(0..64, |i| {
                    let v = w.read(&buf, i);
                    w.write(&buf, i, v + 1.0);
                });
                w.critical("c", || {});
            });
        });
        assert_eq!(tool.regions.load(Ordering::Relaxed), 1);
        assert_eq!(tool.threads.load(Ordering::Relaxed), 4);
        assert_eq!(tool.accesses.load(Ordering::Relaxed), 128, "64 reads + 64 writes");
        assert_eq!(tool.barriers.load(Ordering::Relaxed), 4, "for_static barrier x4 threads");
        assert_eq!(tool.mutexes.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn tracked_ops_compute_correctly_under_instrumentation() {
        let sim = OmpSim::with_tool(Arc::new(crate::NullTool));
        let a = sim.alloc::<f64>(128, 0.0);
        for i in 0..128 {
            a.set_seq(i, i as f64);
        }
        let sum = sim.run(|ctx| {
            let total = sim.alloc::<f64>(1, 0.0);
            ctx.parallel(4, |w| {
                let mut local = 0.0;
                w.for_static_nowait(0..128, |i| {
                    local += w.read(&a, i);
                });
                w.fetch_add(&total, 0, local);
                w.barrier();
            });
            total.get_seq(0)
        });
        assert_eq!(sum, (0..128).sum::<u64>() as f64);
    }

    #[test]
    fn pc_interning_distinguishes_lines() {
        let tool = Arc::new(PcCollector::default());
        let sim = OmpSim::with_tool(tool.clone());
        let buf = sim.alloc::<u64>(4, 0);
        sim.run(|ctx| {
            ctx.parallel(1, |w| {
                w.write(&buf, 0, 1); // line A
                w.write(&buf, 1, 2); // line B
                w.write(&buf, 2, 3); // line C
                for _ in 0..3 {
                    w.write(&buf, 3, 4); // same line, one PC
                }
            });
        });
        let pcs = tool.pcs.lock().unwrap().clone();
        let distinct: std::collections::HashSet<_> = pcs.iter().collect();
        assert_eq!(pcs.len(), 6);
        assert_eq!(distinct.len(), 4);
        // The table resolves them to this file.
        let table = sim.export_pcs();
        for pc in distinct {
            assert!(table.resolve(*pc).unwrap().file.ends_with("runtime.rs"));
        }
    }

    #[derive(Default)]
    struct PcCollector {
        pcs: StdMutex<Vec<PcId>>,
    }

    impl Tool for PcCollector {
        fn access(&self, _: &ThreadContext<'_>, a: MemAccess) {
            self.pcs.lock().unwrap().push(a.pc);
        }
    }

    #[test]
    fn explicit_pc_accessors_attribute_to_interned_sites() {
        let tool = Arc::new(PcCollector::default());
        let sim = OmpSim::with_tool(tool.clone());
        let buf = sim.alloc::<u64>(4, 0);
        let site_a = sim.intern_site("gen", 1);
        let site_b = sim.intern_site("gen", 2);
        assert_eq!(sim.intern_site("gen", 1), site_a, "interning is idempotent");
        sim.run(|ctx| {
            ctx.parallel(1, |w| {
                // One Rust line, two program sites.
                for (site, i) in [(site_a, 0), (site_b, 1)] {
                    w.write_pc(&buf, i, 7, site);
                    assert_eq!(w.read_pc(&buf, i, site), 7);
                }
                w.atomic_write_pc(&buf, 2, 9, site_a);
                assert_eq!(w.atomic_read_pc(&buf, 2, site_b), 9);
            });
            // Outside a region the explicit-PC path is uninstrumented too.
            ctx.write_pc(&buf, 3, 1, site_a);
        });
        let pcs = tool.pcs.lock().unwrap().clone();
        assert_eq!(pcs.len(), 6);
        assert_eq!(pcs.iter().filter(|&&p| p == site_a).count(), 3);
        assert_eq!(pcs.iter().filter(|&&p| p == site_b).count(), 3);
        let table = sim.export_pcs();
        assert_eq!(table.resolve(site_b).unwrap().line, 2);
        assert_eq!(table.resolve(site_b).unwrap().file, "gen");
    }
}
