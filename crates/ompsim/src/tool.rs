//! The OMPT-like tool callback interface.
//!
//! A [`Tool`] observes the runtime the way an OMPT-based tool observes the
//! OpenMP runtime: region begin/end in the forking thread, per-worker
//! thread begin/end, barrier crossings split into a pre-wait and post-wait
//! half (so happens-before tools can publish and then adopt clocks), mutex
//! transitions, and one callback per instrumented memory access.
//!
//! All callbacks are invoked synchronously on the thread that performed
//! the action, concurrently across threads — tools synchronize their own
//! state, exactly as OMPT tools must.

use sword_osl::Label;
use sword_trace::{MemAccess, MutexId, RegionId, ThreadId};

/// Snapshot of a worker's position in the concurrency structure, passed to
/// every per-thread callback.
#[derive(Clone, Debug)]
pub struct ThreadContext<'a> {
    /// Global (pooled) thread id; owns one log file.
    pub tid: ThreadId,
    /// Current parallel region instance.
    pub region: RegionId,
    /// Parent region instance, if nested.
    pub parent_region: Option<RegionId>,
    /// Nesting level: 1 for a top-level region.
    pub level: u32,
    /// This thread's slot in its team (`0..span`).
    pub team_index: u64,
    /// Team size.
    pub span: u64,
    /// Barrier-interval id: 0 before the first barrier the thread crosses
    /// in this region.
    pub bid: u32,
    /// Full offset-span label, including barrier-generation bumps.
    pub label: &'a Label,
}

/// Information about a parallel region at fork time, delivered in the
/// forking thread before any worker starts.
#[derive(Clone, Debug)]
pub struct ParallelBeginInfo<'a> {
    /// The new region's id.
    pub region: RegionId,
    /// Enclosing region, if any.
    pub parent_region: Option<RegionId>,
    /// Nesting level of the new region (1 = top level).
    pub level: u32,
    /// Team size.
    pub span: u64,
    /// The forking thread's label at the fork point (the new workers'
    /// labels are `fork_label · [i, span]`).
    pub fork_label: &'a Label,
    /// The forking thread's id.
    pub fork_tid: ThreadId,
}

/// A session-unique explicit-task id.
pub type TaskUid = u64;

/// Information about an explicit task at creation time, delivered in the
/// creating thread before the continuation resumes.
///
/// Each creation is modeled as a binary pseudo-fork off the creator's
/// current label: the continuation relabels to
/// `fork_label · [0, TASK_SPAN]`, the task body runs under
/// `fork_label · [1, TASK_SPAN]`, and the next creation chains off the
/// continuation label (see `sword_osl::TASK_SPAN`).
#[derive(Clone, Debug)]
pub struct TaskCreateInfo<'a> {
    /// Session-unique task id.
    pub uid: TaskUid,
    /// The task's pseudo-region id (fresh, like a nested region's).
    pub region: RegionId,
    /// The creator's real enclosing region.
    pub parent_region: RegionId,
    /// Nesting level of the pseudo-region (creator's level + 1).
    pub level: u32,
    /// Pseudo-region ids of predecessor tasks this task `depend`s on
    /// (earlier siblings with a conflicting depend clause).
    pub preds: &'a [RegionId],
    /// The creator's label at the creation point including the task-fork
    /// pair — the pseudo-region's fork label.
    pub fork_label: &'a Label,
    /// The creating thread's id.
    pub creator_tid: ThreadId,
}

/// OMPT-like observer. All methods have empty defaults so tools override
/// only what they need.
#[allow(unused_variables)]
pub trait Tool: Send + Sync {
    /// The instrumented program is about to start.
    fn program_begin(&self) {}

    /// The instrumented program finished; flush and finalize.
    fn program_end(&self) {}

    /// A parallel region is being forked (called in the forking thread).
    fn parallel_begin(&self, info: &ParallelBeginInfo<'_>) {}

    /// The matching join completed (called in the forking thread).
    fn parallel_end(&self, region: RegionId, fork_tid: ThreadId) {}

    /// A worker entered a region (its first barrier interval starts).
    fn thread_begin(&self, ctx: &ThreadContext<'_>) {}

    /// A worker is leaving a region (its last barrier interval ends).
    fn thread_end(&self, ctx: &ThreadContext<'_>) {}

    /// The thread reached a barrier and is about to wait. `ctx.bid` is the
    /// interval being closed.
    fn barrier_begin(&self, ctx: &ThreadContext<'_>) {}

    /// Every team member arrived; the thread proceeds. `ctx.bid` and
    /// `ctx.label` already reflect the new interval.
    fn barrier_end(&self, ctx: &ThreadContext<'_>) {}

    /// An explicit task was created (called in the creating thread).
    /// `outer` is the creator's context *before* the creation:
    /// `outer.label` is the chain label the task forks off. After the
    /// callback the creator resumes under the continuation label.
    fn task_create(&self, outer: &ThreadContext<'_>, info: &TaskCreateInfo<'_>) {}

    /// A task body is starting on some team member. `outer` is the
    /// executing thread's own context being suspended; `task` carries the
    /// pseudo-region id and the task label.
    fn task_begin(&self, outer: &ThreadContext<'_>, task: &ThreadContext<'_>, uid: TaskUid) {}

    /// The task body finished; the executing thread resumes `outer`.
    fn task_end(&self, task: &ThreadContext<'_>, outer: &ThreadContext<'_>, uid: TaskUid) {}

    /// A task synchronization point (`taskwait` or taskgroup end)
    /// completed in the creating thread. `restored` reflects the label
    /// after the restore; `synced` lists the tasks guaranteed complete.
    fn task_sync(&self, restored: &ThreadContext<'_>, synced: &[TaskUid]) {}

    /// The thread acquired a mutex (holds it during the callback).
    fn mutex_acquired(&self, ctx: &ThreadContext<'_>, mutex: MutexId) {}

    /// The thread is about to release a mutex (still holds it).
    fn mutex_released(&self, ctx: &ThreadContext<'_>, mutex: MutexId) {}

    /// An instrumented memory access inside a parallel region.
    fn access(&self, ctx: &ThreadContext<'_>, access: MemAccess) {}
}

/// A tool that observes nothing — baseline runs use it implicitly.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullTool;

impl Tool for NullTool {}

#[cfg(test)]
mod tests {
    use super::*;
    use sword_osl::Label;

    #[test]
    fn default_methods_are_noops() {
        let t = NullTool;
        let label = Label::root().fork(0, 2);
        let ctx = ThreadContext {
            tid: 0,
            region: 1,
            parent_region: None,
            level: 1,
            team_index: 0,
            span: 2,
            bid: 0,
            label: &label,
        };
        t.program_begin();
        t.thread_begin(&ctx);
        t.access(&ctx, MemAccess::new(0, 8, sword_trace::AccessKind::Read, 0));
        t.barrier_begin(&ctx);
        t.barrier_end(&ctx);
        t.mutex_acquired(&ctx, 0);
        t.mutex_released(&ctx, 0);
        t.thread_end(&ctx);
        t.program_end();
    }
}
