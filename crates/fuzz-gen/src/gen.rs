//! Seeded random program generation.
//!
//! The generator is deliberately boring: one `SmallRng` seeded from a
//! `u64`, weighted statement choice, and a dynamic-instance budget so a
//! pathological roll cannot produce a program whose differential check
//! takes seconds. Same seed + same config ⇒ byte-identical program, which
//! is what makes `sword fuzz --seed N` reproducible across machines.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sword_trace::AccessKind;

use crate::program::{Access, IndexExpr, Program, Region, Stmt};

/// Generation knobs. The defaults target programs whose full differential
/// check (SWORD batch + live + ARCHER + oracle) runs in tens of
/// milliseconds.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Top-level team size (nested regions always fork 2 to bound the
    /// thread-count product).
    pub team: u64,
    /// Max top-level parallel regions.
    pub max_regions: usize,
    /// Max statements per region body.
    pub max_stmts: usize,
    /// Max parallel-region nesting depth (1 = flat programs only).
    pub max_nesting: u32,
    /// Max distinct shared buffers.
    pub max_buffers: usize,
    /// Soft cap on total dynamic access instances across the whole
    /// program; statement generation stops once the estimate passes it.
    pub instance_budget: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            team: 4,
            max_regions: 2,
            max_stmts: 6,
            max_nesting: 2,
            max_buffers: 3,
            instance_budget: 300,
        }
    }
}

impl GenConfig {
    /// Default config at a given top-level team size.
    pub fn with_team(team: u64) -> Self {
        GenConfig { team: team.max(2), ..GenConfig::default() }
    }
}

/// Generates the program for `seed` under `cfg`. Deterministic.
pub fn generate(seed: u64, cfg: &GenConfig) -> Program {
    let mut g =
        Gen { rng: SmallRng::seed_from_u64(seed), cfg: cfg.clone(), next_id: 0, instances: 0 };
    let lens = [1u64, 2, 3, 4, 8, 16];
    let nbuf = g.rng.gen_range(1..=cfg.max_buffers.max(1));
    let buffers: Vec<u64> = (0..nbuf).map(|_| lens[g.rng.gen_range(0..lens.len())]).collect();
    let nreg = g.rng.gen_range(1..=cfg.max_regions.max(1));
    let regions = (0..nreg).map(|_| g.region(1, &buffers)).collect();
    Program { buffers, regions }
}

struct Gen {
    rng: SmallRng,
    cfg: GenConfig,
    next_id: u32,
    instances: u64,
}

impl Gen {
    fn region(&mut self, depth: u32, buffers: &[u64]) -> Region {
        let threads = if depth == 1 { self.cfg.team } else { 2 };
        let mult = threads * if depth == 1 { 1 } else { self.cfg.team };
        let want = self.rng.gen_range(1..=self.cfg.max_stmts.max(1));
        let mut body = Vec::new();
        for _ in 0..want {
            if self.instances >= self.cfg.instance_budget {
                break;
            }
            body.push(self.stmt(depth, buffers, mult));
        }
        if body.is_empty() {
            body.push(Stmt::Access(self.access(buffers, false)));
            self.instances += mult;
        }
        Region { threads, body }
    }

    fn stmt(&mut self, depth: u32, buffers: &[u64], mult: u64) -> Stmt {
        let roll = self.rng.gen_range(0u32..100);
        match roll {
            0..=39 => {
                self.instances += mult;
                Stmt::Access(self.access(buffers, false))
            }
            40..=49 => Stmt::Barrier,
            50..=64 => {
                let n = self.rng.gen_range(1u64..=8);
                let body = self.access_body(buffers, true);
                self.instances += n * body.len() as u64;
                Stmt::For { n, nowait: self.rng.gen_bool(0.3), body }
            }
            65..=72 => {
                let count = self.rng.gen_range(1u64..=4);
                let body = self.access_body(buffers, true);
                self.instances += count * body.len() as u64;
                Stmt::Sections { count, body }
            }
            73..=79 => {
                let body = self.access_body(buffers, false);
                self.instances += body.len() as u64;
                Stmt::Master { body }
            }
            80..=86 => {
                let body = self.access_body(buffers, false);
                self.instances += body.len() as u64;
                Stmt::Single { nowait: self.rng.gen_bool(0.3), body }
            }
            87..=93 => {
                let body = self.access_body(buffers, false);
                self.instances += mult * body.len() as u64;
                Stmt::Critical { lock: self.rng.gen_range(0u32..2), body }
            }
            _ if depth < self.cfg.max_nesting => Stmt::Nested(self.region(depth + 1, buffers)),
            _ => {
                self.instances += mult;
                Stmt::Access(self.access(buffers, false))
            }
        }
    }

    fn access_body(&mut self, buffers: &[u64], in_loop: bool) -> Vec<Access> {
        let n = self.rng.gen_range(1usize..=2);
        (0..n).map(|_| self.access(buffers, in_loop)).collect()
    }

    fn access(&mut self, buffers: &[u64], in_loop: bool) -> Access {
        let buf = self.rng.gen_range(0..buffers.len());
        let len = buffers[buf];
        let index = match self.rng.gen_range(0u32..if in_loop { 3 } else { 2 }) {
            0 => IndexExpr::Const(self.rng.gen_range(0..len)),
            1 => IndexExpr::Tid {
                stride: self.rng.gen_range(0u64..=2),
                off: self.rng.gen_range(0..len),
            },
            _ => IndexExpr::Var {
                stride: self.rng.gen_range(1u64..=2),
                off: self.rng.gen_range(0..len),
            },
        };
        let kind = match self.rng.gen_range(0u32..100) {
            0..=39 => AccessKind::Write,
            40..=74 => AccessKind::Read,
            75..=89 => AccessKind::AtomicWrite,
            _ => AccessKind::AtomicRead,
        };
        let id = self.next_id;
        self.next_id += 1;
        Access { id, buf: buf as u8, kind, index }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_program() {
        let cfg = GenConfig::default();
        for seed in [0u64, 1, 7, 42, 9999] {
            assert_eq!(generate(seed, &cfg), generate(seed, &cfg), "seed {seed}");
        }
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let cfg = GenConfig::default();
        let progs: Vec<Program> = (0..20).map(|s| generate(s, &cfg)).collect();
        assert!(
            progs.windows(2).any(|w| w[0] != w[1]),
            "20 consecutive seeds produced identical programs"
        );
    }

    #[test]
    fn generated_programs_roundtrip_and_validate() {
        let cfg = GenConfig::default();
        for seed in 0..50u64 {
            let p = generate(seed, &cfg);
            assert!(!p.buffers.is_empty() && !p.regions.is_empty(), "seed {seed}");
            assert!(p.buffers.iter().all(|&l| l >= 1));
            let back = Program::parse(&p.to_text())
                .unwrap_or_else(|e| panic!("seed {seed} failed reparse: {e}"));
            assert_eq!(back, p, "seed {seed}");
        }
    }

    #[test]
    fn instance_budget_bounds_program_size() {
        let cfg = GenConfig { instance_budget: 300, ..GenConfig::default() };
        for seed in 0..50u64 {
            let p = generate(seed, &cfg);
            let oracle = crate::oracle::analyze(&p);
            assert!(
                oracle.instances <= 2_000,
                "seed {seed}: {} instances escaped the budget",
                oracle.instances
            );
        }
    }

    #[test]
    fn access_ids_are_dense_and_unique() {
        let p = generate(3, &GenConfig::default());
        let mut ids: Vec<u32> = p.all_accesses().iter().map(|a| a.id).collect();
        ids.sort_unstable();
        let expect: Vec<u32> = (0..ids.len() as u32).collect();
        assert_eq!(ids, expect);
    }
}
