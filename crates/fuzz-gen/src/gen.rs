//! Seeded random program generation.
//!
//! The generator is deliberately boring: one `SmallRng` seeded from a
//! `u64`, weighted statement choice, and a dynamic-instance budget so a
//! pathological roll cannot produce a program whose differential check
//! takes seconds. Same seed + same config ⇒ byte-identical program, which
//! is what makes `sword fuzz --seed N` reproducible across machines.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sword_trace::AccessKind;

use crate::program::{
    Access, DepKind, IndexExpr, Program, Region, Sched, Stmt, TaskBlock, TaskDep,
};

/// Generation knobs. The defaults target programs whose full differential
/// check (SWORD batch + live + ARCHER + oracle) runs in tens of
/// milliseconds.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Top-level team size (nested regions always fork 2 to bound the
    /// thread-count product).
    pub team: u64,
    /// Max top-level parallel regions.
    pub max_regions: usize,
    /// Max statements per region body.
    pub max_stmts: usize,
    /// Max parallel-region nesting depth (1 = flat programs only).
    pub max_nesting: u32,
    /// Max distinct shared buffers.
    pub max_buffers: usize,
    /// Soft cap on total dynamic access instances across the whole
    /// program; statement generation stops once the estimate passes it.
    pub instance_budget: u64,
    /// Reweight statement choice toward tasking and the richer schedules
    /// (tasks with depend clauses, taskwait, taskgroup, dynamic/guided,
    /// ordered) — the CI tasking leg's campaign profile.
    pub tasking: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            team: 4,
            max_regions: 2,
            max_stmts: 6,
            max_nesting: 2,
            max_buffers: 3,
            instance_budget: 300,
            tasking: false,
        }
    }
}

impl GenConfig {
    /// Default config at a given top-level team size.
    pub fn with_team(team: u64) -> Self {
        GenConfig { team: team.max(2), ..GenConfig::default() }
    }

    /// Tasking-heavy config at a given top-level team size.
    pub fn tasking_with_team(team: u64) -> Self {
        GenConfig { tasking: true, ..GenConfig::with_team(team) }
    }
}

/// Generates the program for `seed` under `cfg`. Deterministic.
pub fn generate(seed: u64, cfg: &GenConfig) -> Program {
    let mut g =
        Gen { rng: SmallRng::seed_from_u64(seed), cfg: cfg.clone(), next_id: 0, instances: 0 };
    let lens = [1u64, 2, 3, 4, 8, 16];
    let nbuf = g.rng.gen_range(1..=cfg.max_buffers.max(1));
    let buffers: Vec<u64> = (0..nbuf).map(|_| lens[g.rng.gen_range(0..lens.len())]).collect();
    let nreg = g.rng.gen_range(1..=cfg.max_regions.max(1));
    let regions = (0..nreg).map(|_| g.region(1, &buffers)).collect();
    Program { buffers, regions }
}

struct Gen {
    rng: SmallRng,
    cfg: GenConfig,
    next_id: u32,
    instances: u64,
}

impl Gen {
    fn region(&mut self, depth: u32, buffers: &[u64]) -> Region {
        let threads = if depth == 1 { self.cfg.team } else { 2 };
        let mult = threads * if depth == 1 { 1 } else { self.cfg.team };
        let want = self.rng.gen_range(1..=self.cfg.max_stmts.max(1));
        let mut body = Vec::new();
        for _ in 0..want {
            if self.instances >= self.cfg.instance_budget {
                break;
            }
            body.push(self.stmt(depth, buffers, mult));
        }
        if body.is_empty() {
            body.push(Stmt::Access(self.access(buffers, false)));
            self.instances += mult;
        }
        Region { threads, body }
    }

    fn stmt(&mut self, depth: u32, buffers: &[u64], mult: u64) -> Stmt {
        #[derive(Clone, Copy)]
        enum Kind {
            Access,
            Barrier,
            For,
            Sections,
            Master,
            Single,
            Critical,
            Task,
            Taskwait,
            Taskgroup,
            Nested,
        }
        let roll = self.rng.gen_range(0u32..100);
        // Two weight profiles over the same construct set: the default
        // keeps the historical structured mix with a modest tasking
        // share; the tasking profile flips the emphasis for the CI
        // tasking leg.
        let kind = if self.cfg.tasking {
            match roll {
                0..=24 => Kind::Access,
                25..=31 => Kind::Barrier,
                32..=43 => Kind::For,
                44..=46 => Kind::Sections,
                47..=49 => Kind::Master,
                50..=53 => Kind::Single,
                54..=58 => Kind::Critical,
                59..=77 => Kind::Task,
                78..=84 => Kind::Taskwait,
                85..=94 => Kind::Taskgroup,
                _ => Kind::Nested,
            }
        } else {
            match roll {
                0..=37 => Kind::Access,
                38..=45 => Kind::Barrier,
                46..=59 => Kind::For,
                60..=66 => Kind::Sections,
                67..=71 => Kind::Master,
                72..=76 => Kind::Single,
                77..=82 => Kind::Critical,
                83..=88 => Kind::Task,
                89..=90 => Kind::Taskwait,
                91..=93 => Kind::Taskgroup,
                _ => Kind::Nested,
            }
        };
        match kind {
            Kind::Barrier => Stmt::Barrier,
            Kind::For => {
                let n = self.rng.gen_range(1u64..=8);
                let (sched, ordered) = self.loop_shape();
                let nowait = sched == Sched::Static && !ordered && self.rng.gen_bool(0.3);
                let body = self.access_body(buffers, true);
                self.instances += n * body.len() as u64;
                Stmt::For { n, nowait, sched, ordered, body }
            }
            Kind::Sections => {
                let count = self.rng.gen_range(1u64..=4);
                let body = self.access_body(buffers, true);
                self.instances += count * body.len() as u64;
                Stmt::Sections { count, body }
            }
            Kind::Master => {
                let body = self.access_body(buffers, false);
                self.instances += body.len() as u64;
                Stmt::Master { body }
            }
            Kind::Single => {
                let body = self.access_body(buffers, false);
                self.instances += body.len() as u64;
                Stmt::Single { nowait: self.rng.gen_bool(0.3), body }
            }
            Kind::Critical => {
                let body = self.access_body(buffers, false);
                self.instances += mult * body.len() as u64;
                Stmt::Critical { lock: self.rng.gen_range(0u32..2), body }
            }
            Kind::Task => {
                let tb = self.task_block(buffers);
                self.instances += mult * tb.body.len() as u64;
                Stmt::Task(tb)
            }
            Kind::Taskwait => Stmt::Taskwait,
            Kind::Taskgroup => {
                let ntasks = self.rng.gen_range(1usize..=2);
                let tasks: Vec<TaskBlock> = (0..ntasks).map(|_| self.task_block(buffers)).collect();
                self.instances += mult * tasks.iter().map(|t| t.body.len() as u64).sum::<u64>();
                Stmt::Taskgroup { tasks }
            }
            Kind::Nested if depth < self.cfg.max_nesting => {
                Stmt::Nested(self.region(depth + 1, buffers))
            }
            Kind::Access | Kind::Nested => {
                self.instances += mult;
                Stmt::Access(self.access(buffers, false))
            }
        }
    }

    /// Rolls a loop schedule plus ordered flag (never guided+ordered —
    /// the runtime has no such loop).
    fn loop_shape(&mut self) -> (Sched, bool) {
        let r = self.rng.gen_range(0u32..10);
        let sched = if self.cfg.tasking {
            match r {
                0..=3 => Sched::Static,
                4..=6 => Sched::Dynamic { chunk: self.rng.gen_range(1u64..=3) },
                _ => Sched::Guided { min: self.rng.gen_range(1u64..=2) },
            }
        } else {
            match r {
                0..=5 => Sched::Static,
                6..=7 => Sched::Dynamic { chunk: self.rng.gen_range(1u64..=3) },
                _ => Sched::Guided { min: self.rng.gen_range(1u64..=2) },
            }
        };
        let can_order = !matches!(sched, Sched::Guided { .. });
        let p = if self.cfg.tasking { 0.35 } else { 0.25 };
        let ordered = can_order && self.rng.gen_bool(p);
        (sched, ordered)
    }

    /// Rolls one task block: up to two depend clauses over a small
    /// variable space (so chains actually form) and a short access body.
    fn task_block(&mut self, buffers: &[u64]) -> TaskBlock {
        let ndeps = self.rng.gen_range(0usize..=2);
        let deps: Vec<TaskDep> = (0..ndeps)
            .map(|_| TaskDep {
                var: self.rng.gen_range(0u64..3),
                kind: match self.rng.gen_range(0u32..3) {
                    0 => DepKind::In,
                    1 => DepKind::Out,
                    _ => DepKind::InOut,
                },
            })
            .collect();
        TaskBlock { deps, body: self.access_body(buffers, false) }
    }

    fn access_body(&mut self, buffers: &[u64], in_loop: bool) -> Vec<Access> {
        let n = self.rng.gen_range(1usize..=2);
        (0..n).map(|_| self.access(buffers, in_loop)).collect()
    }

    fn access(&mut self, buffers: &[u64], in_loop: bool) -> Access {
        let buf = self.rng.gen_range(0..buffers.len());
        let len = buffers[buf];
        let index = match self.rng.gen_range(0u32..if in_loop { 3 } else { 2 }) {
            0 => IndexExpr::Const(self.rng.gen_range(0..len)),
            1 => IndexExpr::Tid {
                stride: self.rng.gen_range(0u64..=2),
                off: self.rng.gen_range(0..len),
            },
            _ => IndexExpr::Var {
                stride: self.rng.gen_range(1u64..=2),
                off: self.rng.gen_range(0..len),
            },
        };
        let kind = match self.rng.gen_range(0u32..100) {
            0..=39 => AccessKind::Write,
            40..=74 => AccessKind::Read,
            75..=89 => AccessKind::AtomicWrite,
            _ => AccessKind::AtomicRead,
        };
        let id = self.next_id;
        self.next_id += 1;
        Access { id, buf: buf as u8, kind, index }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_program() {
        let cfg = GenConfig::default();
        for seed in [0u64, 1, 7, 42, 9999] {
            assert_eq!(generate(seed, &cfg), generate(seed, &cfg), "seed {seed}");
        }
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let cfg = GenConfig::default();
        let progs: Vec<Program> = (0..20).map(|s| generate(s, &cfg)).collect();
        assert!(
            progs.windows(2).any(|w| w[0] != w[1]),
            "20 consecutive seeds produced identical programs"
        );
    }

    #[test]
    fn generated_programs_roundtrip_and_validate() {
        let cfg = GenConfig::default();
        for seed in 0..50u64 {
            let p = generate(seed, &cfg);
            assert!(!p.buffers.is_empty() && !p.regions.is_empty(), "seed {seed}");
            assert!(p.buffers.iter().all(|&l| l >= 1));
            let back = Program::parse(&p.to_text())
                .unwrap_or_else(|e| panic!("seed {seed} failed reparse: {e}"));
            assert_eq!(back, p, "seed {seed}");
        }
    }

    #[test]
    fn instance_budget_bounds_program_size() {
        let cfg = GenConfig { instance_budget: 300, ..GenConfig::default() };
        for seed in 0..50u64 {
            let p = generate(seed, &cfg);
            let oracle = crate::oracle::analyze(&p);
            assert!(
                oracle.instances <= 2_000,
                "seed {seed}: {} instances escaped the budget",
                oracle.instances
            );
        }
    }

    #[test]
    fn access_ids_are_dense_and_unique() {
        let p = generate(3, &GenConfig::default());
        let mut ids: Vec<u32> = p.all_accesses().iter().map(|a| a.id).collect();
        ids.sort_unstable();
        let expect: Vec<u32> = (0..ids.len() as u32).collect();
        assert_eq!(ids, expect);
    }
}
