//! Generator of adversarial compressed inputs: hand-built LZ streams and
//! frame files that target each validation path of `sword-compress`.
//!
//! These are *constructed from the stream grammar* (token nibbles,
//! 255-chains, little-endian offsets, 13-byte frame headers), not mutated
//! real data, so each case pins one specific decoder check. The
//! integration suite (`tests/compress_hardening.rs`) replays every case as
//! a named regression test; the unit tests here assert the expected error
//! class for each.

use sword_compress::{frame_compress, DecodeError, FRAME_HEADER_LEN};

/// A raw LZ stream that must make [`sword_compress::decompress`] return
/// the given error — and never panic or loop.
pub struct EvilStream {
    /// Stable case name (used by the regression tests).
    pub name: &'static str,
    /// The stream bytes.
    pub bytes: Vec<u8>,
    /// The exact error the decoder must report.
    pub expect: DecodeError,
}

/// Every adversarial raw-stream case.
pub fn evil_streams() -> Vec<EvilStream> {
    let mut cases = vec![
        EvilStream {
            name: "empty-stream",
            // A valid stream always ends with an explicit terminal
            // sequence; zero bytes cannot.
            bytes: Vec::new(),
            expect: DecodeError::Truncated,
        },
        EvilStream {
            name: "literals-promised-but-missing",
            // Token claims 5 literals, only 2 follow.
            bytes: vec![0x50, b'a', b'b'],
            expect: DecodeError::Truncated,
        },
        EvilStream {
            name: "literal-chain-cut-at-token",
            // Literal-length nibble 15 demands a 255-chain; input ends.
            bytes: vec![0xF0],
            expect: DecodeError::Truncated,
        },
        EvilStream {
            name: "literal-chain-exceeds-input",
            // Chain totals 510+15 literals with 2 bytes of input left.
            bytes: vec![0xF0, 255, 255],
            expect: DecodeError::Truncated,
        },
        EvilStream {
            name: "match-offset-zero",
            // One literal, then a match whose offset is 0.
            bytes: vec![0x11, b'a', 0x00, 0x00],
            expect: DecodeError::BadOffset,
        },
        EvilStream {
            name: "match-offset-beyond-output",
            // One literal written, match claims offset 9.
            bytes: vec![0x11, b'a', 0x09, 0x00],
            expect: DecodeError::BadOffset,
        },
        EvilStream {
            name: "match-truncated-at-offset",
            // Match sequence ends before its 2-byte offset.
            bytes: vec![0x11, b'a', 0x09],
            expect: DecodeError::Truncated,
        },
        EvilStream {
            name: "data-after-terminal",
            // Terminal token (match nibble 0) with trailing bytes.
            bytes: vec![0x10, b'a', 0x00],
            expect: DecodeError::Truncated,
        },
    ];
    cases.push(EvilStream {
        name: "match-chain-exceeds-decode-run",
        bytes: oversize_match_chain(),
        expect: DecodeError::Oversize,
    });
    cases
}

/// A match-length 255-chain whose total passes `MAX_DECODE_RUN` (1 GiB of
/// claimed output): token with match nibble 15, then enough 0xFF chain
/// bytes that the cumulative total exceeds the cap mid-chain.
fn oversize_match_chain() -> Vec<u8> {
    const MAX_DECODE_RUN: usize = 1 << 30; // mirrors the decoder's cap
    let mut bytes = vec![0x0F];
    bytes.resize(1 + MAX_DECODE_RUN / 255 + 1, 0xFF);
    bytes
}

/// A framed file (as read back by the log reader) that must produce an
/// `io::Error` — never a panic, never silently-wrong output.
pub struct EvilFrame {
    /// Stable case name.
    pub name: &'static str,
    /// The file bytes.
    pub bytes: Vec<u8>,
}

/// Every adversarial framed-file case. Built by compressing real payloads
/// with [`frame_compress`] and then breaking one header or payload
/// invariant at a time. Cases may span multiple frames, so consumers
/// should read them with `FrameReader::read_to_end`.
pub fn evil_frames() -> Vec<EvilFrame> {
    let payload: Vec<u8> = (0..200u16).flat_map(|i| [b'x', (i % 7) as u8]).collect();
    let pristine = frame_compress(&payload);
    assert!(pristine.len() > FRAME_HEADER_LEN);

    let mut cases = Vec::new();

    let mut bad_magic = pristine.clone();
    bad_magic[0] ^= 0xFF;
    cases.push(EvilFrame { name: "bad-magic", bytes: bad_magic });

    cases.push(EvilFrame {
        name: "truncated-header",
        bytes: pristine[..FRAME_HEADER_LEN / 2].to_vec(),
    });

    let mut short_raw_len = pristine.clone();
    // Shrink the claimed decompressed length (bytes 4..8, LE) by one:
    // whatever the payload decodes to now mismatches.
    short_raw_len[4] = short_raw_len[4].wrapping_sub(1);
    cases.push(EvilFrame { name: "raw-len-mismatch", bytes: short_raw_len });

    let mut short_payload = pristine.clone();
    short_payload.truncate(pristine.len() - 1);
    cases.push(EvilFrame { name: "payload-cut-short", bytes: short_payload });

    // Flip the payload's first *token* byte: its nibbles encode run
    // lengths, so the stream desynchronizes and the frame's raw-length
    // check (or the decoder itself) must fire. Flipping a *literal* byte
    // instead would be undetectable by design — the format carries length
    // framing, not checksums — which is exactly why the session fault
    // injector corrupts frame headers, not payload bodies.
    let mut corrupt_token = pristine.clone();
    corrupt_token[FRAME_HEADER_LEN] ^= 0xFF;
    cases.push(EvilFrame { name: "payload-token-flip", bytes: corrupt_token });

    // A stored frame (incompressible payload) whose payload_len no longer
    // equals raw_len.
    let noise: Vec<u8> = (0..64u32).map(|i| (i.wrapping_mul(2654435761) >> 24) as u8).collect();
    let mut stored_mismatch = frame_compress(&noise);
    stored_mismatch[8] = stored_mismatch[8].wrapping_add(1);
    cases.push(EvilFrame { name: "stored-length-mismatch", bytes: stored_mismatch });

    // Garbage after a valid frame: a second "frame" of magic-less junk.
    let mut trailing = pristine;
    trailing.extend_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3]);
    cases.push(EvilFrame { name: "trailing-garbage-frame", bytes: trailing });

    cases
}

#[cfg(test)]
mod tests {
    use super::*;
    use sword_compress::{decompress, frame_decompress, FrameReader, FRAME_MAGIC};

    #[test]
    fn every_evil_stream_reports_its_expected_error() {
        for case in evil_streams() {
            let mut out = Vec::new();
            let got = decompress(&case.bytes, &mut out);
            assert_eq!(got, Err(case.expect), "case {}", case.name);
        }
    }

    #[test]
    fn every_evil_frame_is_rejected_with_a_clean_error() {
        for case in evil_frames() {
            let mut out = Vec::new();
            let err = FrameReader::new(&case.bytes[..])
                .read_to_end(&mut out)
                .expect_err(&format!("case {} must not decode", case.name));
            // The message must be a real diagnosis, not a panic caught
            // upstream.
            assert!(!err.to_string().is_empty(), "case {}", case.name);
        }
    }

    #[test]
    fn single_frame_cases_also_fail_the_one_shot_helper() {
        for case in evil_frames() {
            if case.name == "trailing-garbage-frame" {
                continue; // one-shot helper reads only the first frame
            }
            frame_decompress(&case.bytes)
                .expect_err(&format!("case {} must not decode", case.name));
        }
    }

    #[test]
    fn magic_constant_matches_the_stream_grammar_assumed_here() {
        assert_eq!(FRAME_MAGIC, *b"SWLZ");
        assert_eq!(FRAME_HEADER_LEN, 13);
    }
}
