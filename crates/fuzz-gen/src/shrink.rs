//! Delta-debugging shrinker: reduces a failing program to a minimal
//! reproducer under a caller-supplied predicate.
//!
//! Candidate edits, tried most-aggressive first each round:
//!
//! 1. drop a whole top-level region;
//! 2. drop a statement (recursing into nested regions);
//! 3. shrink a top-level team to 2 threads;
//! 4. halve a `for` trip count / `sections` count;
//! 5. drop one access from a compound statement's body;
//! 6. drop unused buffers (renumbering the survivors).
//!
//! The loop restarts from the strongest edits after every accepted
//! candidate and stops when no candidate reproduces, or after a bounded
//! number of predicate evaluations (each evaluation may run the full
//! differential pipeline, so attempts — not rounds — are the cost unit).

use std::collections::BTreeSet;

use crate::program::{Access, Program, Region, Sched, Stmt, TaskBlock};

/// Upper bound on predicate evaluations per shrink.
const MAX_ATTEMPTS: usize = 150;

/// Shrinks `prog` while `reproduces` stays true. The input itself must
/// reproduce (callers establish that before shrinking); the result always
/// reproduces unless the predicate is flaky.
pub fn shrink(prog: &Program, mut reproduces: impl FnMut(&Program) -> bool) -> Program {
    let mut cur = prog.clone();
    let mut attempts = 0usize;
    loop {
        let mut improved = false;
        for cand in candidates(&cur) {
            if attempts >= MAX_ATTEMPTS {
                return cur;
            }
            attempts += 1;
            if reproduces(&cand) {
                cur = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            return cur;
        }
    }
}

/// All one-step reductions of `p`, strongest first. Every candidate is a
/// structurally valid program (non-empty regions and bodies).
pub fn candidates(p: &Program) -> Vec<Program> {
    let mut out = Vec::new();
    if p.regions.len() > 1 {
        for i in 0..p.regions.len() {
            let mut q = p.clone();
            q.regions.remove(i);
            out.push(q);
        }
    }
    for i in 0..p.regions.len() {
        for r in region_candidates(&p.regions[i]) {
            let mut q = p.clone();
            q.regions[i] = r;
            out.push(q);
        }
    }
    for i in 0..p.regions.len() {
        if p.regions[i].threads > 2 {
            let mut q = p.clone();
            q.regions[i].threads = 2;
            out.push(q);
        }
    }
    if let Some(q) = drop_unused_buffers(p) {
        out.push(q);
    }
    out
}

fn region_candidates(r: &Region) -> Vec<Region> {
    let mut out = Vec::new();
    if r.body.len() > 1 {
        for i in 0..r.body.len() {
            let mut q = r.clone();
            q.body.remove(i);
            out.push(q);
        }
    }
    for i in 0..r.body.len() {
        for s in stmt_candidates(&r.body[i]) {
            let mut q = r.clone();
            q.body[i] = s;
            out.push(q);
        }
    }
    out
}

fn stmt_candidates(s: &Stmt) -> Vec<Stmt> {
    match s {
        Stmt::Access(_) | Stmt::Barrier | Stmt::Taskwait => Vec::new(),
        Stmt::For { n, nowait, sched, ordered, body } => {
            let mut out = Vec::new();
            let again =
                |n, nowait, sched, ordered, body| Stmt::For { n, nowait, sched, ordered, body };
            if *n > 1 {
                out.push(again(*n / 2, *nowait, *sched, *ordered, body.clone()));
            }
            // Simplify the schedule before touching the body: static
            // unordered is the weakest loop shape (nowait stays off,
            // which is always legal).
            if *sched != Sched::Static {
                out.push(again(*n, false, Sched::Static, *ordered, body.clone()));
            }
            if *ordered {
                out.push(again(*n, false, *sched, false, body.clone()));
            }
            for b in drop_one(body) {
                out.push(again(*n, *nowait, *sched, *ordered, b));
            }
            out
        }
        Stmt::Task(tb) => task_candidates(tb).into_iter().map(Stmt::Task).collect(),
        Stmt::Taskgroup { tasks } => {
            let mut out = Vec::new();
            if tasks.len() > 1 {
                for i in 0..tasks.len() {
                    let mut t = tasks.clone();
                    t.remove(i);
                    out.push(Stmt::Taskgroup { tasks: t });
                }
            }
            for i in 0..tasks.len() {
                for cand in task_candidates(&tasks[i]) {
                    let mut t = tasks.clone();
                    t[i] = cand;
                    out.push(Stmt::Taskgroup { tasks: t });
                }
            }
            out
        }
        Stmt::Sections { count, body } => {
            let mut out = Vec::new();
            if *count > 1 {
                out.push(Stmt::Sections { count: *count / 2, body: body.clone() });
            }
            for b in drop_one(body) {
                out.push(Stmt::Sections { count: *count, body: b });
            }
            out
        }
        Stmt::Master { body } => {
            drop_one(body).into_iter().map(|b| Stmt::Master { body: b }).collect()
        }
        Stmt::Single { nowait, body } => {
            drop_one(body).into_iter().map(|b| Stmt::Single { nowait: *nowait, body: b }).collect()
        }
        Stmt::Critical { lock, body } => {
            drop_one(body).into_iter().map(|b| Stmt::Critical { lock: *lock, body: b }).collect()
        }
        Stmt::Nested(r) => region_candidates(r).into_iter().map(Stmt::Nested).collect(),
    }
}

/// One-step reductions of a task block: drop a depend clause, or drop a
/// body access (keeping at least one).
fn task_candidates(tb: &TaskBlock) -> Vec<TaskBlock> {
    let mut out = Vec::new();
    for i in 0..tb.deps.len() {
        let mut deps = tb.deps.clone();
        deps.remove(i);
        out.push(TaskBlock { deps, body: tb.body.clone() });
    }
    for b in drop_one(&tb.body) {
        out.push(TaskBlock { deps: tb.deps.clone(), body: b });
    }
    out
}

/// Every body with exactly one access removed (only when more than one
/// remains — compound statements keep a non-empty body).
fn drop_one(body: &[Access]) -> Vec<Vec<Access>> {
    if body.len() <= 1 {
        return Vec::new();
    }
    (0..body.len())
        .map(|i| {
            let mut b = body.to_vec();
            b.remove(i);
            b
        })
        .collect()
}

/// Removes buffers no access touches, renumbering the survivors; `None`
/// when every buffer is used.
fn drop_unused_buffers(p: &Program) -> Option<Program> {
    let used: BTreeSet<u8> = p.all_accesses().iter().map(|a| a.buf).collect();
    if used.len() == p.buffers.len() {
        return None;
    }
    let remap: Vec<Option<u8>> = {
        let mut next = 0u8;
        (0..p.buffers.len() as u8)
            .map(|b| {
                if used.contains(&b) {
                    let n = next;
                    next += 1;
                    Some(n)
                } else {
                    None
                }
            })
            .collect()
    };
    let mut q = p.clone();
    q.buffers = p
        .buffers
        .iter()
        .enumerate()
        .filter(|(i, _)| used.contains(&(*i as u8)))
        .map(|(_, &len)| len)
        .collect();
    if q.buffers.is_empty() {
        // A program with no accesses at all keeps one buffer so it stays
        // parseable.
        q.buffers.push(p.buffers[0]);
    }
    for region in &mut q.regions {
        remap_region(region, &remap);
    }
    Some(q)
}

fn remap_region(r: &mut Region, remap: &[Option<u8>]) {
    for s in &mut r.body {
        match s {
            Stmt::Access(a) => remap_access(a, remap),
            Stmt::Barrier | Stmt::Taskwait => {}
            Stmt::For { body, .. }
            | Stmt::Sections { body, .. }
            | Stmt::Master { body }
            | Stmt::Single { body, .. }
            | Stmt::Critical { body, .. } => {
                for a in body {
                    remap_access(a, remap);
                }
            }
            Stmt::Task(tb) => {
                for a in &mut tb.body {
                    remap_access(a, remap);
                }
            }
            Stmt::Taskgroup { tasks } => {
                for tb in tasks {
                    for a in &mut tb.body {
                        remap_access(a, remap);
                    }
                }
            }
            Stmt::Nested(inner) => remap_region(inner, remap),
        }
    }
}

fn remap_access(a: &mut Access, remap: &[Option<u8>]) {
    if let Some(Some(new)) = remap.get(a.buf as usize) {
        a.buf = *new;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};
    use crate::oracle;

    #[test]
    fn shrinks_a_racy_program_to_something_small_and_still_racy() {
        // Find a generated program with at least one racy pair.
        let (prog, pairs) = (0..50u64)
            .find_map(|seed| {
                let p = generate(seed, &GenConfig::default());
                let o = oracle::analyze(&p);
                (!o.pairs.is_empty()).then_some((p, o.pairs))
            })
            .expect("some seed in 0..50 must generate a racy program");
        let keep = pairs.iter().next().copied().unwrap();
        let small = shrink(&prog, |p| oracle::analyze(p).pairs.contains(&keep));
        let small_oracle = oracle::analyze(&small);
        assert!(small_oracle.pairs.contains(&keep));
        assert!(small_oracle.instances <= oracle::analyze(&prog).instances);
        // Minimality at this predicate: no one-step reduction reproduces.
        for cand in candidates(&small) {
            assert!(
                !oracle::analyze(&cand).pairs.contains(&keep),
                "shrink left an improvable candidate"
            );
        }
    }

    #[test]
    fn shrinking_is_deterministic() {
        let p = generate(9, &GenConfig::default());
        let f = |q: &Program| !oracle::analyze(q).pairs.is_empty();
        if !f(&p) {
            return; // nothing to shrink for this seed
        }
        assert_eq!(shrink(&p, f), shrink(&p, f));
    }

    #[test]
    fn candidates_stay_structurally_valid() {
        for seed in 0..20u64 {
            let p = generate(seed, &GenConfig::default());
            for cand in candidates(&p) {
                let text = cand.to_text();
                let back = Program::parse(&text)
                    .unwrap_or_else(|e| panic!("seed {seed}: invalid candidate: {e}\n{text}"));
                assert_eq!(back, cand);
                // And the oracle accepts it.
                let _ = oracle::analyze(&cand);
            }
        }
    }

    #[test]
    fn unused_buffers_are_dropped_and_renumbered() {
        let mut p = generate(4, &GenConfig::default());
        p.buffers.push(16); // guaranteed-unused extra buffer
        let q = drop_unused_buffers(&p).expect("extra buffer must be droppable");
        assert_eq!(q.buffers.len(), p.buffers.len() - 1);
        let max_buf = q.all_accesses().iter().map(|a| a.buf).max().unwrap_or(0);
        assert!((max_buf as usize) < q.buffers.len());
        // Element mapping is preserved for every access (same lengths).
        let po = oracle::analyze(&p);
        let qo = oracle::analyze(&q);
        assert_eq!(po.pairs, qo.pairs);
    }
}
