//! The differential driver: one generated program through every detector,
//! all verdicts reduced to statement pairs and diffed against the oracle.
//!
//! Contract checked per program:
//!
//! - SWORD batch analysis reports **exactly** the oracle's racy statement
//!   pairs (the oracle replays SWORD's semantics — same-thread skips,
//!   barrier-aware label comparison — so equality is sound, not just
//!   soundness/completeness bounds).
//! - SWORD live (incremental) analysis reports exactly what batch does.
//! - ARCHER reports a **subset** of the oracle (FastTrack-style shadow
//!   cells keep at most two access slots per element, so it may miss
//!   pairs, but must never invent one).
//! - Nothing panics, and no verdict ever names a PC outside the generated
//!   program's interned sites.
//!
//! Any violation is a [`CheckReport`] failure; [`run_fuzz`] then shrinks
//! the offending program to a minimal reproducer and persists it.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::io::{self, BufReader};
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::{fs, process};

use archer_sim::{ArcherConfig, ArcherTool};
use sword_offline::{analyze, AnalysisConfig, LiveAnalyzer};
use sword_ompsim::{OmpSim, SimConfig};
use sword_runtime::{run_collected, SwordConfig};
use sword_trace::{PcId, PcTable, SessionDir};

use crate::exec::run_program;
use crate::gen::{generate, GenConfig};
use crate::oracle::{self, Oracle};
use crate::program::{Program, SITE_FILE};

/// A race verdict reduced to the unordered pair of statement ids.
pub type StmtPair = (u32, u32);

static NEXT_DIR: AtomicU32 = AtomicU32::new(0);

/// A scratch directory under the system temp dir that is unique across
/// processes (pid) *and* within one (process-wide counter) — pid-only
/// names collide when one test binary checks many programs.
pub fn unique_dir(tag: &str) -> PathBuf {
    let n = NEXT_DIR.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("sword-fuzz-{tag}-{}-{n}", process::id()))
}

/// Every detector's verdict set for one program, as statement pairs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Verdicts {
    /// Ground truth from program structure.
    pub oracle: BTreeSet<StmtPair>,
    /// SWORD batch offline analysis.
    pub sword_batch: BTreeSet<StmtPair>,
    /// SWORD incremental (live) analysis of the same session.
    pub sword_live: BTreeSet<StmtPair>,
    /// ARCHER's shadow-cell verdicts.
    pub archer: BTreeSet<StmtPair>,
}

/// Outcome of one full differential check.
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    /// All verdict sets (best-effort: a stage that failed leaves its set
    /// empty).
    pub verdicts: Verdicts,
    /// Human-readable contract violations; empty means the program passed.
    pub failures: Vec<String>,
    /// Dynamic access instances the oracle planned.
    pub instances: usize,
}

impl CheckReport {
    /// `true` when every detector honored the contract.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// How a SWORD pipeline stage failed.
pub(crate) enum PipelineError {
    /// A clean `io::Error` — under fault injection this is acceptable
    /// degradation, on a pristine session it is a failure.
    Io(io::Error),
    /// A verdict named a PC that does not resolve to a generated site.
    /// Never acceptable: it means the analyzer fabricated evidence.
    BadPc(String),
}

impl PipelineError {
    fn describe(&self) -> String {
        match self {
            PipelineError::Io(e) => format!("i/o error: {e}"),
            PipelineError::BadPc(m) => format!("bad pc in verdict: {m}"),
        }
    }
}

impl From<io::Error> for PipelineError {
    fn from(e: io::Error) -> Self {
        PipelineError::Io(e)
    }
}

/// Runs `prog` through oracle, SWORD (batch + live) and ARCHER, diffing
/// all verdicts. With `fault_inject`, additionally re-analyzes corrupted
/// copies of the session (see [`crate::fault`]) asserting graceful
/// degradation. Always removes its scratch session directory.
pub fn check_program(prog: &Program, fault_inject: bool) -> CheckReport {
    let mut report = CheckReport::default();
    let oracle = match catch(|| oracle::analyze(prog)) {
        Ok(o) => o,
        Err(e) => {
            report.failures.push(format!("oracle panicked: {e}"));
            return report;
        }
    };
    report.instances = oracle.instances;
    report.verdicts.oracle.clone_from(&oracle.pairs);

    let dir = unique_dir("check");
    match catch(|| run_sword(prog, &oracle, &dir)) {
        Ok(Ok(out)) => {
            report.verdicts.sword_batch = out.batch;
            report.verdicts.sword_live = out.live;
            if report.verdicts.sword_batch != oracle.pairs {
                report.failures.push(diff_failure(
                    "sword batch != oracle",
                    &report.verdicts.sword_batch,
                    &oracle.pairs,
                ));
            }
            if report.verdicts.sword_live != report.verdicts.sword_batch {
                report.failures.push(diff_failure(
                    "sword live != sword batch",
                    &report.verdicts.sword_live,
                    &report.verdicts.sword_batch,
                ));
            }
            // Provenance must not depend on how the analysis was driven:
            // every race's full evidence chain (coordinates, label
            // derivation, solver witness, log byte ranges) is required to
            // be byte-identical between batch and live ingestion.
            if out.live_evidence != out.batch_evidence {
                report.failures.push(format!(
                    "sword live evidence != batch evidence\nbatch:\n{}\nlive:\n{}",
                    out.batch_evidence.join("---\n"),
                    out.live_evidence.join("---\n")
                ));
            }
            // The verdict cache may only change the work, never the
            // report: a cache-disabled batch run must match the default
            // run down to the rendered evidence bytes.
            if out.uncached_evidence != out.batch_evidence {
                report.failures.push(format!(
                    "sword cache-disabled evidence != batch evidence\nbatch:\n{}\nuncached:\n{}",
                    out.batch_evidence.join("---\n"),
                    out.uncached_evidence.join("---\n")
                ));
            }
            // The screening funnel may only skip work the solver would
            // reject anyway: masking every screen off must reproduce the
            // default run's evidence chains byte for byte.
            if out.nofunnel_evidence != out.batch_evidence {
                report.failures.push(format!(
                    "sword funnel-off evidence != batch evidence\nbatch:\n{}\nfunnel-off:\n{}",
                    out.batch_evidence.join("---\n"),
                    out.nofunnel_evidence.join("---\n")
                ));
            }
            if fault_inject {
                crate::fault::inject(
                    &oracle,
                    &SessionDir::new(&dir),
                    &report.verdicts.sword_batch.clone(),
                    &mut report,
                );
            }
        }
        Ok(Err(e)) => report.failures.push(format!("sword pipeline: {}", e.describe())),
        Err(e) => report.failures.push(format!("sword pipeline panicked: {e}")),
    }
    let _ = fs::remove_dir_all(&dir);

    match catch(|| run_archer(prog, &oracle)) {
        Ok(Ok(archer)) => {
            report.verdicts.archer = archer;
            let extra: Vec<&StmtPair> = report.verdicts.archer.difference(&oracle.pairs).collect();
            if !extra.is_empty() {
                report
                    .failures
                    .push(format!("archer reported pairs outside the oracle: {extra:?}"));
            }
        }
        Ok(Err(e)) => report.failures.push(format!("archer: {}", e.describe())),
        Err(e) => report.failures.push(format!("archer panicked: {e}")),
    }
    report
}

/// SWORD's verdicts plus the fully rendered evidence chain of every race,
/// in sorted race order, from both analysis modes.
struct SwordOutcome {
    batch: BTreeSet<StmtPair>,
    live: BTreeSet<StmtPair>,
    /// `render` + `render_evidence` per race — the exact text `sword
    /// explain` would print, used for batch/live byte-identity.
    batch_evidence: Vec<String>,
    live_evidence: Vec<String>,
    /// The same chains from a `with_verdict_cache(false)` batch run.
    uncached_evidence: Vec<String>,
    /// The same chains with every solver-funnel screen masked off.
    nofunnel_evidence: Vec<String>,
}

/// Collects a session for `prog` in `dir`, then analyzes it both in batch
/// and incrementally.
fn run_sword(
    prog: &Program,
    oracle: &Oracle,
    dir: &std::path::Path,
) -> Result<SwordOutcome, PipelineError> {
    let cfg = SwordConfig::new(dir).buffer_events(128).live();
    let ((), _stats) =
        run_collected(cfg, SimConfig::default(), |sim| run_program(sim, prog, &oracle.plan))?;
    let session = SessionDir::new(dir);
    let batch = analyze(&session, &AnalysisConfig::default())?;
    let batch_pairs = stmt_pairs(&session, batch.races.iter().map(|r| (r.key.pc_lo, r.key.pc_hi)))?;
    let uncached = analyze(&session, &AnalysisConfig::default().with_verdict_cache(false))?;
    let nofunnel = analyze(
        &session,
        &AnalysisConfig::default().with_funnel(sword_offline::FunnelConfig::NONE),
    )?;

    let live_cfg = AnalysisConfig::sequential();
    let mut live = LiveAnalyzer::new(&session, &live_cfg);
    let mut polls = 0u32;
    loop {
        let delta = live.poll()?;
        if delta.finished {
            break;
        }
        polls += 1;
        if polls > 64 {
            return Err(PipelineError::Io(io::Error::other(
                "live analyzer did not reach `finished` after 64 polls of a closed session",
            )));
        }
    }
    let live_result = live.into_result()?;
    let live_pairs =
        stmt_pairs(&session, live_result.races.iter().map(|r| (r.key.pc_lo, r.key.pc_hi)))?;
    let pcs = PcTable::read_from(BufReader::new(fs::File::open(session.pcs_path())?))?;
    let chain =
        |r: &sword_offline::Race| format!("{}\n{}", r.render(&pcs), r.render_evidence(&pcs));
    Ok(SwordOutcome {
        batch: batch_pairs,
        live: live_pairs,
        batch_evidence: batch.races.iter().map(chain).collect(),
        live_evidence: live_result.races.iter().map(chain).collect(),
        uncached_evidence: uncached.races.iter().map(chain).collect(),
        nofunnel_evidence: nofunnel.races.iter().map(chain).collect(),
    })
}

/// Runs `prog` under ARCHER and returns its verdicts as statement pairs.
fn run_archer(prog: &Program, oracle: &Oracle) -> Result<BTreeSet<StmtPair>, PipelineError> {
    let tool = Arc::new(ArcherTool::new(ArcherConfig::default()));
    let sim = OmpSim::with_tool(tool.clone());
    run_program(&sim, prog, &oracle.plan);
    let pcs = sim.export_pcs();
    let mut out = BTreeSet::new();
    for r in tool.races() {
        let a = stmt_of(&pcs, r.pc_lo).map_err(PipelineError::BadPc)?;
        let b = stmt_of(&pcs, r.pc_hi).map_err(PipelineError::BadPc)?;
        out.insert((a.min(b), a.max(b)));
    }
    Ok(out)
}

/// Maps `(pc_lo, pc_hi)` race keys to normalized statement pairs using
/// the session's PC table.
pub(crate) fn stmt_pairs(
    session: &SessionDir,
    pairs: impl IntoIterator<Item = (PcId, PcId)>,
) -> Result<BTreeSet<StmtPair>, PipelineError> {
    let pcs = PcTable::read_from(BufReader::new(fs::File::open(session.pcs_path())?))?;
    let mut out = BTreeSet::new();
    for (lo, hi) in pairs {
        let a = stmt_of(&pcs, lo).map_err(PipelineError::BadPc)?;
        let b = stmt_of(&pcs, hi).map_err(PipelineError::BadPc)?;
        out.insert((a.min(b), a.max(b)));
    }
    Ok(out)
}

/// Resolves a verdict PC to its generated statement id (`SITE_FILE` line
/// minus one). Unknown or foreign PCs are errors: a generated program
/// touches nothing outside its own sites.
fn stmt_of(pcs: &PcTable, pc: PcId) -> Result<u32, String> {
    let loc = pcs.resolve(pc).ok_or_else(|| format!("verdict names unknown pc {pc}"))?;
    if loc.file != SITE_FILE || loc.line == 0 {
        return Err(format!("verdict names foreign site {}:{}", loc.file, loc.line));
    }
    Ok(loc.line - 1)
}

fn diff_failure(name: &str, got: &BTreeSet<StmtPair>, want: &BTreeSet<StmtPair>) -> String {
    let missing: Vec<&StmtPair> = want.difference(got).collect();
    let extra: Vec<&StmtPair> = got.difference(want).collect();
    format!("{name}: missing {missing:?}, unexpected {extra:?}")
}

/// Runs `f`, converting a panic into its message.
pub(crate) fn catch<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    panic::catch_unwind(AssertUnwindSafe(f)).map_err(|e| {
        if let Some(s) = e.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = e.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    })
}

/// Fuzzing campaign options.
#[derive(Clone, Debug)]
pub struct FuzzOptions {
    /// Base seed; iteration `i` uses `seed.wrapping_add(i)`.
    pub seed: u64,
    /// Number of programs to generate and check.
    pub iters: u64,
    /// Top-level team sizes, cycled per iteration.
    pub teams: Vec<u64>,
    /// Also run session fault injection on every program.
    pub fault_inject: bool,
    /// Generate with the tasking-heavy profile
    /// ([`GenConfig::tasking_with_team`]): mostly tasks, depend chains,
    /// taskwait/taskgroup, and dynamic/guided/ordered loops.
    pub tasking: bool,
    /// Where to persist shrunk reproducers of failures.
    pub corpus_dir: Option<PathBuf>,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            seed: 1,
            iters: 100,
            teams: vec![2, 4, 8],
            fault_inject: false,
            tasking: false,
            corpus_dir: None,
        }
    }
}

/// One contract violation found by a campaign, shrunk.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// Seed of the original failing program.
    pub seed: u64,
    /// Top-level team size it ran with.
    pub team: u64,
    /// The violations, re-derived from the shrunk reproducer.
    pub failures: Vec<String>,
    /// Minimal reproducer.
    pub program: Program,
    /// Corpus file it was saved to, if a corpus dir was given.
    pub saved: Option<PathBuf>,
}

/// Campaign totals.
#[derive(Clone, Debug, Default)]
pub struct FuzzSummary {
    /// Programs checked.
    pub iters: u64,
    /// Programs whose oracle found at least one racy pair.
    pub programs_with_races: u64,
    /// Total oracle pairs across all programs.
    pub oracle_pairs: u64,
    /// Shrunk contract violations (empty = clean campaign).
    pub failures: Vec<FuzzFailure>,
}

impl FuzzSummary {
    /// One-line human rendering.
    pub fn render(&self) -> String {
        let mut s = format!(
            "{} programs checked, {} racy ({} oracle pairs), {} failure(s)",
            self.iters,
            self.programs_with_races,
            self.oracle_pairs,
            self.failures.len()
        );
        for f in &self.failures {
            let _ = write!(s, "\n  seed {} team {}: {}", f.seed, f.team, f.failures.join("; "));
            if let Some(p) = &f.saved {
                let _ = write!(s, " (saved to {})", p.display());
            }
        }
        s
    }
}

/// Runs a fuzzing campaign. `progress` is called after every iteration
/// with the 0-based index and the summary so far.
pub fn run_fuzz(opts: &FuzzOptions, mut progress: impl FnMut(u64, &FuzzSummary)) -> FuzzSummary {
    let teams = if opts.teams.is_empty() { vec![2, 4, 8] } else { opts.teams.clone() };
    let mut summary = FuzzSummary::default();
    for i in 0..opts.iters {
        let seed = opts.seed.wrapping_add(i);
        let team = teams[(i % teams.len() as u64) as usize];
        let cfg = if opts.tasking {
            GenConfig::tasking_with_team(team)
        } else {
            GenConfig::with_team(team)
        };
        let prog = generate(seed, &cfg);
        let report = check_program(&prog, opts.fault_inject);
        summary.iters += 1;
        if !report.verdicts.oracle.is_empty() {
            summary.programs_with_races += 1;
        }
        summary.oracle_pairs += report.verdicts.oracle.len() as u64;
        if !report.ok() {
            let shrunk =
                crate::shrink::shrink(&prog, |p| !check_program(p, opts.fault_inject).ok());
            let shrunk_report = check_program(&shrunk, opts.fault_inject);
            let failures = if shrunk_report.ok() {
                // Shrinking raced the failure away (flaky repro) — keep
                // the original evidence.
                report.failures.clone()
            } else {
                shrunk_report.failures.clone()
            };
            let saved = opts.corpus_dir.as_ref().and_then(|dir| {
                let mut notes = vec![format!(
                    "fuzz failure: seed {seed}, team {team} ({} violation(s))",
                    failures.len()
                )];
                notes.extend(failures.iter().cloned());
                notes.push("rust reproducer:".to_string());
                notes.extend(shrunk.to_rust().lines().map(str::to_string));
                crate::corpus::save(dir, &format!("failure-seed{seed}-team{team}"), &shrunk, &notes)
                    .ok()
            });
            summary.failures.push(FuzzFailure { seed, team, failures, program: shrunk, saved });
        }
        progress(i, &summary);
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Access, IndexExpr, Region, Stmt};
    use sword_trace::AccessKind;

    fn prog(regions: Vec<Region>) -> Program {
        Program { buffers: vec![4], regions }
    }

    fn write(id: u32, index: IndexExpr) -> Stmt {
        Stmt::Access(Access { id, buf: 0, kind: AccessKind::Write, index })
    }

    #[test]
    fn known_racy_program_agrees_across_detectors() {
        // Two threads both write element 0 with no synchronization.
        let p = prog(vec![Region { threads: 2, body: vec![write(0, IndexExpr::Const(0))] }]);
        let r = check_program(&p, false);
        assert!(r.ok(), "failures: {:?}", r.failures);
        assert_eq!(r.verdicts.oracle.iter().copied().collect::<Vec<_>>(), vec![(0, 0)]);
        assert_eq!(r.verdicts.sword_batch, r.verdicts.oracle);
        assert_eq!(r.verdicts.sword_live, r.verdicts.oracle);
        // ARCHER sees this one too: both accesses hit the same shadow cell.
        assert_eq!(r.verdicts.archer, r.verdicts.oracle);
    }

    #[test]
    fn known_race_free_program_is_silent_everywhere() {
        // Tid-strided writes partition the buffer; a barrier then a read
        // of a neighbor element is ordered.
        let p = prog(vec![Region {
            threads: 4,
            body: vec![
                write(0, IndexExpr::Tid { stride: 1, off: 0 }),
                Stmt::Barrier,
                Stmt::Access(Access {
                    id: 1,
                    buf: 0,
                    kind: AccessKind::Read,
                    index: IndexExpr::Tid { stride: 1, off: 1 },
                }),
            ],
        }]);
        let r = check_program(&p, false);
        assert!(r.ok(), "failures: {:?}", r.failures);
        assert!(r.verdicts.oracle.is_empty());
        assert!(r.verdicts.sword_batch.is_empty());
        assert!(r.verdicts.sword_live.is_empty());
        assert!(r.verdicts.archer.is_empty());
    }

    #[test]
    fn known_racy_tasking_program_agrees_across_detectors() {
        use crate::program::TaskBlock;
        // Two dependence-free sibling tasks of one creator write the same
        // element: a task-vs-task race every detector must see.
        let task = |id| {
            Stmt::Task(TaskBlock {
                deps: vec![],
                body: vec![Access {
                    id,
                    buf: 0,
                    kind: AccessKind::Write,
                    index: IndexExpr::Const(0),
                }],
            })
        };
        let p = prog(vec![Region { threads: 1, body: vec![task(0), task(1)] }]);
        let r = check_program(&p, false);
        assert!(r.ok(), "failures: {:?}", r.failures);
        assert_eq!(r.verdicts.oracle.iter().copied().collect::<Vec<_>>(), vec![(0, 1)]);
        assert_eq!(r.verdicts.sword_batch, r.verdicts.oracle);
        assert_eq!(r.verdicts.sword_live, r.verdicts.oracle);
    }

    #[test]
    fn known_race_free_tasking_program_is_silent_everywhere() {
        use crate::program::{DepKind, TaskBlock, TaskDep};
        // out → inout dependence chain, then a taskwait before the
        // continuation reads: fully ordered.
        let task = |id, kind| {
            Stmt::Task(TaskBlock {
                deps: vec![TaskDep { var: 0, kind }],
                body: vec![Access {
                    id,
                    buf: 0,
                    kind: AccessKind::Write,
                    index: IndexExpr::Const(0),
                }],
            })
        };
        let p = prog(vec![Region {
            threads: 2,
            body: vec![
                task(0, DepKind::Out),
                task(1, DepKind::InOut),
                Stmt::Taskwait,
                Stmt::Access(Access {
                    id: 2,
                    buf: 0,
                    kind: AccessKind::Read,
                    index: IndexExpr::Const(0),
                }),
            ],
        }]);
        let r = check_program(&p, false);
        assert!(r.ok(), "failures: {:?}", r.failures);
        // With two creators, dependence and taskwait only order *within*
        // a creator: cross-creator task pairs race, and each creator's
        // read — ordered against its own tasks — races the other's.
        assert_eq!(
            r.verdicts.oracle.iter().copied().collect::<Vec<_>>(),
            vec![(0, 0), (0, 1), (0, 2), (1, 1), (1, 2)]
        );
        assert_eq!(r.verdicts.sword_batch, r.verdicts.oracle);
        assert_eq!(r.verdicts.sword_live, r.verdicts.oracle);
        assert!(r.verdicts.archer.is_subset(&r.verdicts.oracle));

        // The genuinely quiet version: one creator.
        let p = prog(vec![Region {
            threads: 1,
            body: vec![
                task(0, DepKind::Out),
                task(1, DepKind::InOut),
                Stmt::Taskwait,
                Stmt::Access(Access {
                    id: 2,
                    buf: 0,
                    kind: AccessKind::Read,
                    index: IndexExpr::Const(0),
                }),
            ],
        }]);
        let r = check_program(&p, false);
        assert!(r.ok(), "failures: {:?}", r.failures);
        assert!(r.verdicts.oracle.is_empty(), "{:?}", r.verdicts.oracle);
        assert!(r.verdicts.sword_batch.is_empty());
        assert!(r.verdicts.sword_live.is_empty());
        assert!(r.verdicts.archer.is_empty());
    }

    #[test]
    fn ordered_dynamic_loop_is_silent_under_every_detector() {
        use crate::program::Sched;
        let p = prog(vec![Region {
            threads: 2,
            body: vec![Stmt::For {
                n: 4,
                nowait: false,
                sched: Sched::Dynamic { chunk: 1 },
                ordered: true,
                body: vec![Access {
                    id: 0,
                    buf: 0,
                    kind: AccessKind::Write,
                    index: IndexExpr::Const(0),
                }],
            }],
        }]);
        let r = check_program(&p, false);
        assert!(r.ok(), "failures: {:?}", r.failures);
        assert!(r.verdicts.oracle.is_empty());
        assert!(r.verdicts.sword_batch.is_empty());
        assert!(r.verdicts.archer.is_empty());
        // Drop the ordered clause and the same loop races everywhere.
        let Stmt::For { body, .. } = &p.regions[0].body[0] else { unreachable!() };
        let racy = prog(vec![Region {
            threads: 2,
            body: vec![Stmt::For {
                n: 4,
                nowait: false,
                sched: Sched::Dynamic { chunk: 1 },
                ordered: false,
                body: body.clone(),
            }],
        }]);
        let r = check_program(&racy, false);
        assert!(r.ok(), "failures: {:?}", r.failures);
        assert_eq!(r.verdicts.oracle.iter().copied().collect::<Vec<_>>(), vec![(0, 0)]);
        assert_eq!(r.verdicts.sword_batch, r.verdicts.oracle);
    }

    #[test]
    fn check_is_deterministic_for_generated_programs() {
        let p = generate(5, &GenConfig::default());
        let a = check_program(&p, false);
        let b = check_program(&p, false);
        assert!(a.ok(), "failures: {:?}", a.failures);
        assert_eq!(a.verdicts, b.verdicts);
    }

    #[test]
    fn fuzz_smoke_campaign_is_clean() {
        let opts = FuzzOptions { seed: 100, iters: 6, teams: vec![2, 4], ..Default::default() };
        let summary = run_fuzz(&opts, |_, _| {});
        assert_eq!(summary.iters, 6);
        assert!(summary.failures.is_empty(), "{}", summary.render());
    }

    #[test]
    fn tasking_fuzz_smoke_campaign_is_clean() {
        let opts = FuzzOptions {
            seed: 300,
            iters: 6,
            teams: vec![2, 4],
            tasking: true,
            ..Default::default()
        };
        let summary = run_fuzz(&opts, |_, _| {});
        assert_eq!(summary.iters, 6);
        assert!(summary.failures.is_empty(), "{}", summary.render());
    }

    #[test]
    fn unique_dirs_never_collide() {
        let a = unique_dir("t");
        let b = unique_dir("t");
        assert_ne!(a, b);
    }
}
