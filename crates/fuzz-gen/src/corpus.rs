//! Corpus persistence: minimized programs as `.prog` text files.
//!
//! A corpus file is the program's [`crate::program`] text form preceded by
//! `#`-comment lines (provenance, the violation text, a Rust rendering of
//! the reproducer). `tests/corpus/` at the repository root is seeded with
//! generator-minimized programs and replayed through every detector on
//! each `cargo test` run; fuzz campaigns append shrunk failures here.

use std::io;
use std::path::{Path, PathBuf};

use std::fs;

use crate::program::Program;

/// Writes `prog` as `dir/name.prog`, prefixing one `#` comment line per
/// entry of `notes` (multi-line notes are split). Creates `dir` as needed
/// and returns the file path.
pub fn save(dir: &Path, name: &str, prog: &Program, notes: &[String]) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.prog"));
    let mut text = String::new();
    for note in notes {
        for line in note.lines() {
            text.push_str("# ");
            text.push_str(line);
            text.push('\n');
        }
    }
    text.push_str(&prog.to_text());
    fs::write(&path, text)?;
    Ok(path)
}

/// Loads every `.prog` file in `dir`, sorted by file stem. Comment lines
/// are stripped by the program parser.
pub fn load_dir(dir: &Path) -> io::Result<Vec<(String, Program)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().is_none_or(|e| e != "prog") {
            continue;
        }
        let name = path.file_stem().map(|s| s.to_string_lossy().into_owned()).unwrap_or_default();
        let text = fs::read_to_string(&path)?;
        let prog = Program::parse(&text).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("{}: {e}", path.display()))
        })?;
        out.push((name, prog));
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

/// The checked-in seed corpus: ten generator-minimized programs mixing
/// racy/race-free and flat/nested shapes. Deterministic, so the files
/// under `tests/corpus/` can be regenerated and diffed.
pub fn seeded_entries() -> Vec<(String, Program)> {
    use crate::gen::{generate, GenConfig};
    use crate::oracle;
    use crate::shrink::shrink;

    let mut out = Vec::new();
    let mut racy = 0usize;
    let mut quiet = 0usize;
    // Walk seeds in order, keeping the first 5 racy and first 5 race-free
    // programs, each minimized while preserving its exact oracle verdict
    // set (so minimization cannot flip its class).
    for seed in 0u64..10_000 {
        if racy == 5 && quiet == 5 {
            break;
        }
        let team = [2u64, 4, 8][(seed % 3) as usize];
        let prog = generate(seed, &GenConfig::with_team(team));
        let pairs = oracle::analyze(&prog).pairs;
        let is_racy = !pairs.is_empty();
        if (is_racy && racy == 5) || (!is_racy && quiet == 5) {
            continue;
        }
        let small = shrink(&prog, |p| oracle::analyze(p).pairs == pairs);
        let class = if is_racy {
            racy += 1;
            "racy"
        } else {
            quiet += 1;
            "quiet"
        };
        let nested = if small.regions.iter().any(region_has_nesting) { "nested" } else { "flat" };
        out.push((format!("seed{seed:03}-team{team}-{class}-{nested}"), small));
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

fn region_has_nesting(r: &crate::program::Region) -> bool {
    r.body.iter().any(|s| matches!(s, crate::program::Stmt::Nested(_)))
}

/// Hand-written minimal tasking reproducers, one per tasking/scheduling
/// semantic the detectors must agree on. Checked into `tests/corpus/`
/// alongside the generator-seeded entries and replayed the same way.
///
/// - `taskwait-quiet`: taskwait orders a task before its continuation.
/// - `taskgroup-racy`: taskgroup syncs only tasks created inside it — a
///   pre-group sibling still races both the group's task and the
///   continuation.
/// - `depend-chain-quiet`: an out→inout depend chain serializes
///   conflicting sibling tasks.
/// - `siblings-racy`: undeferred sibling tasks with no ordering clause
///   race on a shared element.
/// - `dynamic-racy`: a dynamic-schedule loop spreads iterations across
///   slots, so a loop-invariant write races itself.
/// - `ordered-quiet`: the same dynamic loop under `ordered` is silenced
///   by the ordered-clause protocol (modeled as a per-loop lock).
pub fn tasking_entries() -> Vec<(String, Program)> {
    use sword_trace::AccessKind;

    use crate::program::{Access, DepKind, IndexExpr, Region, Sched, Stmt, TaskBlock, TaskDep};

    let w =
        |id, elem| Access { id, buf: 0, kind: AccessKind::Write, index: IndexExpr::Const(elem) };
    let task = |access| Stmt::Task(TaskBlock { deps: vec![], body: vec![access] });
    let dep_task = |access, kind| {
        Stmt::Task(TaskBlock { deps: vec![TaskDep { var: 0, kind }], body: vec![access] })
    };
    let flat =
        |threads, body| Program { buffers: vec![2], regions: vec![Region { threads, body }] };
    let dyn_loop = |access, ordered| Stmt::For {
        n: 4,
        nowait: false,
        sched: Sched::Dynamic { chunk: 1 },
        ordered,
        body: vec![access],
    };

    let mut out = vec![
        (
            "tasking-taskwait-quiet-flat".to_string(),
            flat(1, vec![task(w(0, 0)), Stmt::Taskwait, Stmt::Access(w(1, 0))]),
        ),
        (
            "tasking-taskgroup-racy-flat".to_string(),
            flat(
                1,
                vec![
                    task(w(0, 0)),
                    Stmt::Taskgroup {
                        tasks: vec![TaskBlock { deps: vec![], body: vec![w(1, 0)] }],
                    },
                    Stmt::Access(w(2, 0)),
                ],
            ),
        ),
        (
            "tasking-depend-chain-quiet-flat".to_string(),
            flat(1, vec![dep_task(w(0, 0), DepKind::Out), dep_task(w(1, 0), DepKind::InOut)]),
        ),
        ("tasking-siblings-racy-flat".to_string(), flat(1, vec![task(w(0, 0)), task(w(1, 0))])),
        ("tasking-dynamic-racy-flat".to_string(), flat(2, vec![dyn_loop(w(0, 0), false)])),
        ("tasking-ordered-quiet-flat".to_string(), flat(2, vec![dyn_loop(w(0, 0), true)])),
    ];
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::unique_dir;
    use crate::gen::{generate, GenConfig};

    #[test]
    fn save_then_load_roundtrips_with_notes() {
        let dir = unique_dir("corpus");
        let prog = generate(7, &GenConfig::default());
        let notes = vec!["first note".to_string(), "multi\nline\nnote".to_string()];
        let path = save(&dir, "case-a", &prog, &notes).unwrap();
        assert!(path.ends_with("case-a.prog"));
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].0, "case-a");
        assert_eq!(loaded[0].1, prog);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_dir_is_sorted_by_name() {
        let dir = unique_dir("corpus");
        for name in ["zz", "aa", "mm"] {
            save(&dir, name, &generate(1, &GenConfig::default()), &[]).unwrap();
        }
        let names: Vec<String> = load_dir(&dir).unwrap().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["aa", "mm", "zz"]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn seed_corpus_has_ten_programs_in_both_classes() {
        let entries = seeded_entries();
        assert_eq!(entries.len(), 10);
        let racy = entries.iter().filter(|(n, _)| n.contains("-racy-")).count();
        assert_eq!(racy, 5);
        // Deterministic across calls.
        assert_eq!(entries, seeded_entries());
    }

    #[test]
    fn tasking_corpus_names_match_their_oracle_class() {
        let entries = tasking_entries();
        assert_eq!(entries.len(), 6);
        for (name, prog) in &entries {
            let pairs = crate::oracle::analyze(prog).pairs;
            assert_eq!(
                name.contains("-racy-"),
                !pairs.is_empty(),
                "tasking entry `{name}`: oracle pairs {pairs:?} contradict its name"
            );
            // Every entry survives the text round-trip the corpus files
            // depend on.
            let back = Program::parse(&prog.to_text()).unwrap();
            assert_eq!(&back, prog, "tasking entry `{name}` does not round-trip");
        }
    }
}
