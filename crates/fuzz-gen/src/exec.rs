//! The schedule-pinned interpreter: replays a generated program on an
//! `ompsim` runtime, attributing every access to its statement's virtual
//! PC and taking sequencer turns in the oracle plan's ticket order.
//!
//! Each thread pops its vid's op list as it walks the AST, asserting that
//! the statement and element it is about to touch match what the oracle
//! planned — so a walk disagreement between oracle and runtime (chunking,
//! sections mapping, slot identity) fails loudly instead of silently
//! skewing verdicts.

use sword_ompsim::{Ctx, DepMode, OmpSim, OrderedLoop, Sequencer, TrackedBuf};
use sword_trace::{AccessKind, PcId};

use crate::oracle::{Plan, PlannedAccess, ThreadOp};
use crate::program::{Access, DepKind, Program, Region, Sched, Stmt, TaskBlock, SITE_FILE};

/// The `ompsim` named-lock name for generated lock id `lock`.
pub fn lock_name(lock: u32) -> String {
    format!("L{lock}")
}

/// Runs `prog` on `sim` (with whatever tool is attached) under `plan`'s
/// pinned schedule. Panics on any oracle/runtime walk disagreement.
pub fn run_program(sim: &OmpSim, prog: &Program, plan: &Plan) {
    let sites = prog.max_id().map_or(0, |m| m + 1);
    let pcs: Vec<PcId> = (0..sites).map(|id| sim.intern_site(SITE_FILE, id + 1)).collect();
    // Pre-register locks in id order so `MutexId` assignment does not
    // depend on which critical section runs first.
    for lock in prog.locks() {
        let _ = sim.named_lock(&lock_name(lock));
    }
    let bufs: Vec<TrackedBuf<u64>> =
        prog.buffers.iter().map(|&len| sim.alloc::<u64>(len.max(1), 0)).collect();
    let seq = Sequencer::new();
    let env = Env { plan, pcs: &pcs, bufs: &bufs, seq: &seq };
    sim.run(|ctx| {
        let mut master = Cursor::new(0, &plan.per_vid[0]);
        for region in &prog.regions {
            exec_fork(ctx, region, &mut master, &env);
        }
        master.assert_done();
    });
    assert_eq!(seq.current(), plan.total_tickets, "sequencer did not drain the plan");
}

struct PoisonOnPanic<'a>(&'a Sequencer);

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

struct Env<'a> {
    plan: &'a Plan,
    pcs: &'a [PcId],
    bufs: &'a [TrackedBuf<u64>],
    seq: &'a Sequencer,
}

/// One thread's position in its planned op list.
struct Cursor<'p> {
    vid: usize,
    ops: &'p [ThreadOp],
    pos: usize,
}

impl<'p> Cursor<'p> {
    fn new(vid: usize, ops: &'p [ThreadOp]) -> Self {
        Cursor { vid, ops, pos: 0 }
    }

    fn next_access(&mut self, a: &Access) -> PlannedAccess {
        match self.ops.get(self.pos) {
            Some(ThreadOp::Access(p)) if p.stmt == a.id => {
                self.pos += 1;
                *p
            }
            other => panic!(
                "vid {} op {}: runtime reached access s{} but the plan has {:?}",
                self.vid, self.pos, a.id, other
            ),
        }
    }

    fn next_task_create(&mut self) -> u64 {
        match self.ops.get(self.pos) {
            Some(&ThreadOp::TaskCreate { create_ticket }) => {
                self.pos += 1;
                create_ticket
            }
            other => panic!(
                "vid {} op {}: runtime reached a task creation but the plan has {:?}",
                self.vid, self.pos, other
            ),
        }
    }

    fn next_fork(&mut self) -> (usize, u64, u64) {
        match self.ops.get(self.pos) {
            Some(&ThreadOp::Fork { base_vid, fork_ticket, join_ticket }) => {
                self.pos += 1;
                (base_vid, fork_ticket, join_ticket)
            }
            other => panic!(
                "vid {} op {}: runtime reached a fork but the plan has {:?}",
                self.vid, self.pos, other
            ),
        }
    }

    fn assert_done(&self) {
        assert_eq!(
            self.pos,
            self.ops.len(),
            "vid {}: {} planned ops never executed",
            self.vid,
            self.ops.len() - self.pos
        );
    }
}

fn exec_fork(w: &Ctx<'_>, region: &Region, cur: &mut Cursor<'_>, env: &Env<'_>) {
    let (base_vid, fork_ticket, join_ticket) = cur.next_fork();
    // Hold the fork turn across tid acquisition: the new team's slot 0
    // advances it once the team exists, and the join turn is claimed only
    // after `parallel` returns (tids released). Sibling fork/join
    // lifecycles are thereby serialized, making pooled tid assignment the
    // deterministic function the oracle replays.
    env.seq.wait_for(fork_ticket);
    w.parallel(region.threads as usize, |c| {
        // If this thread dies mid-plan (walk assertion), poison the
        // turnstile so siblings blocked on later tickets drain and the
        // scope join can propagate the original panic instead of hanging.
        let _guard = PoisonOnPanic(env.seq);
        if c.team_index() == 0 {
            env.seq.advance();
        }
        let vid = base_vid + c.team_index() as usize;
        let mut cursor = Cursor::new(vid, &env.plan.per_vid[vid]);
        exec_body(c, &region.body, &mut cursor, env);
        cursor.assert_done();
    });
    env.seq.turn(join_ticket, || {});
}

fn exec_body(w: &Ctx<'_>, body: &[Stmt], cur: &mut Cursor<'_>, env: &Env<'_>) {
    for stmt in body {
        match stmt {
            Stmt::Access(a) => turn_access(w, a, 0, cur, env),
            Stmt::Barrier => w.barrier(),
            Stmt::For { n, nowait, sched, ordered, body } => {
                if *ordered {
                    // Body accesses run inside the ordered block: the
                    // runtime holds the loop's mutex around them, which
                    // is exactly what the oracle's synthetic ordered lock
                    // models. Ticket waits inside the turn are safe: the
                    // global ticket order is iteration order, which is
                    // the order the ordered protocol admits threads.
                    let run = &mut |i: u64, ol: &OrderedLoop, cur: &mut Cursor<'_>| {
                        w.ordered(ol, i, || {
                            for a in body {
                                turn_access(w, a, i, cur, env);
                            }
                        });
                    };
                    match sched {
                        Sched::Static => w.for_static_ordered(0..*n, |i, ol| run(i, ol, cur)),
                        Sched::Dynamic { chunk } => {
                            w.for_dynamic_pinned_ordered(0..*n, *chunk, |i, ol| run(i, ol, cur))
                        }
                        Sched::Guided { .. } => unreachable!("parser rejects guided ordered"),
                    }
                } else {
                    let run = &mut |i: u64, cur: &mut Cursor<'_>| {
                        for a in body {
                            turn_access(w, a, i, cur, env);
                        }
                    };
                    match sched {
                        Sched::Static if *nowait => w.for_static_nowait(0..*n, |i| run(i, cur)),
                        Sched::Static => w.for_static(0..*n, |i| run(i, cur)),
                        Sched::Dynamic { chunk } => {
                            w.for_dynamic_pinned(0..*n, *chunk, |i| run(i, cur))
                        }
                        Sched::Guided { min } => w.for_guided_pinned(0..*n, *min, |i| run(i, cur)),
                    }
                }
            }
            Stmt::Task(tb) => exec_task(w, tb, cur, env),
            Stmt::Taskwait => w.taskwait(),
            Stmt::Taskgroup { tasks } => w.taskgroup(|g| {
                for tb in tasks {
                    exec_task(g, tb, cur, env);
                }
            }),
            Stmt::Sections { count, body } => w.sections(*count as usize, |s| {
                for a in body {
                    turn_access(w, a, s as u64, cur, env);
                }
            }),
            Stmt::Master { body } => w.master(|| {
                for a in body {
                    turn_access(w, a, 0, cur, env);
                }
            }),
            Stmt::Single { nowait, body } => {
                let run = |cur: &mut Cursor<'_>| {
                    for a in body {
                        turn_access(w, a, 0, cur, env);
                    }
                };
                if *nowait {
                    w.single_nowait(|| run(cur));
                } else {
                    w.single(|| run(cur));
                }
            }
            Stmt::Critical { lock, body } => exec_critical(w, *lock, body, cur, env),
            Stmt::Nested(r) => exec_fork(w, r, cur, env),
        }
    }
}

fn exec_task(w: &Ctx<'_>, tb: &TaskBlock, cur: &mut Cursor<'_>, env: &Env<'_>) {
    let create_ticket = cur.next_task_create();
    let planned: Vec<PlannedAccess> = tb.body.iter().map(|a| cur.next_access(a)).collect();
    let deps: Vec<(u64, DepMode)> = tb
        .deps
        .iter()
        .map(|d| {
            let mode = match d.kind {
                DepKind::In => DepMode::In,
                DepKind::Out => DepMode::Out,
                DepKind::InOut => DepMode::InOut,
            };
            (d.var, mode)
        })
        .collect();
    // Hold the creation turn across the fresh-tid allocation inside
    // `task_depend`, releasing it at body entry — task tids then come off
    // the monotone counter in global ticket order, which is what the
    // oracle's pool simulation replays.
    env.seq.wait_for(create_ticket);
    w.task_depend(&deps, |t| {
        env.seq.advance();
        for (a, p) in tb.body.iter().zip(&planned) {
            let elem = checked_elem(t, a, 0, p, env);
            env.seq.turn(p.ticket, || raw_access(t, a, elem, env));
        }
    });
}

fn turn_access(w: &Ctx<'_>, a: &Access, var: u64, cur: &mut Cursor<'_>, env: &Env<'_>) {
    let p = cur.next_access(a);
    let elem = checked_elem(w, a, var, &p, env);
    env.seq.turn(p.ticket, || raw_access(w, a, elem, env));
}

fn exec_critical(w: &Ctx<'_>, lock: u32, body: &[Access], cur: &mut Cursor<'_>, env: &Env<'_>) {
    let planned: Vec<PlannedAccess> = body.iter().map(|a| cur.next_access(a)).collect();
    let name = lock_name(lock);
    let Some(first) = planned.first() else {
        w.critical(&name, || {});
        return;
    };
    // Wait for this thread's turn window BEFORE taking the lock: an
    // earlier-ticketed thread may still need the same lock, and taking it
    // while blocked on a later ticket would deadlock the turnstile.
    env.seq.wait_for(first.ticket);
    w.critical(&name, || {
        for (a, p) in body.iter().zip(&planned) {
            let elem = checked_elem(w, a, 0, p, env);
            raw_access(w, a, elem, env);
            env.seq.advance();
        }
    });
}

fn checked_elem(w: &Ctx<'_>, a: &Access, var: u64, p: &PlannedAccess, env: &Env<'_>) -> u64 {
    let len = env.bufs[a.buf as usize].len();
    let elem = a.index.eval(w.team_index(), var, len);
    assert_eq!(
        elem,
        p.elem,
        "s{} slot {}: runtime evaluated element {elem}, oracle planned {}",
        a.id,
        w.team_index(),
        p.elem
    );
    elem
}

fn raw_access(w: &Ctx<'_>, a: &Access, elem: u64, env: &Env<'_>) {
    let buf = &env.bufs[a.buf as usize];
    let pc = env.pcs[a.id as usize];
    match a.kind {
        AccessKind::Read => {
            let _ = w.read_pc(buf, elem, pc);
        }
        AccessKind::Write => w.write_pc(buf, elem, 1, pc),
        AccessKind::AtomicRead => {
            let _ = w.atomic_read_pc(buf, elem, pc);
        }
        AccessKind::AtomicWrite => w.atomic_write_pc(buf, elem, 1, pc),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use crate::gen::{generate, GenConfig};
    use crate::oracle;

    #[test]
    fn generated_programs_replay_cleanly_untooled() {
        for seed in 0..10u64 {
            let p = generate(seed, &GenConfig::default());
            let o = oracle::analyze(&p);
            let sim = OmpSim::new();
            run_program(&sim, &p, &o.plan);
        }
    }

    #[test]
    fn archer_verdicts_are_schedule_stable() {
        use archer_sim::{ArcherConfig, ArcherTool};
        let p = generate(23, &GenConfig::default());
        let o = oracle::analyze(&p);
        let run = || {
            let tool = Arc::new(ArcherTool::new(ArcherConfig::default()));
            let sim = OmpSim::with_tool(tool.clone());
            run_program(&sim, &p, &o.plan);
            let mut races: Vec<(u32, u32)> =
                tool.races().iter().map(|r| (r.pc_lo, r.pc_hi)).collect();
            races.sort_unstable();
            races
        };
        assert_eq!(run(), run(), "same plan must yield identical archer verdicts");
    }
}
