//! Generative differential testing for the SWORD reproduction.
//!
//! This crate closes the loop the unit suites cannot: instead of checking
//! detectors against hand-picked programs, it *generates* random
//! structured OpenMP-like programs ([`gen`]) — fork/join worksharing
//! with static/`nowait`/`dynamic`/`guided`/`ordered` loops, nesting,
//! mutexes/atomics, and (under the tasking profile,
//! [`GenConfig::tasking`]) `task`/`taskwait`/`taskgroup` with depend
//! clauses — computes their exact racy statement pairs from program
//! structure alone ([`oracle`] — offset-span concurrency with task-fork
//! label pairs, depend-edge and ordered-lock suppression, plus
//! access-set intersection, independent of either detector's
//! implementation), replays them deterministically on the `ompsim`
//! runtime ([`exec`] — ticketed sequencing covers task creation and the
//! pinned dynamic/guided chunk maps), and diffs every detector's
//! verdicts against the oracle ([`driver`]):
//!
//! - SWORD (collector → compressed session → offline analysis) must match
//!   the oracle **exactly**, in both batch and incremental (live) modes;
//! - ARCHER's shadow-cell verdicts must be a **subset** of the oracle
//!   (two-slot shadow cells forget accesses, but must never invent one).
//!
//! Failures shrink to minimal reproducers ([`shrink()`]) persisted as text
//! corpus entries ([`corpus`]). A fault-injection mode ([`fault`])
//! corrupts session files (truncation, header bit flips, record
//! reordering) and asserts graceful degradation: clean error or partial
//! report, never a wrong verdict, never a panic. [`adversarial`] builds
//! hostile compressed inputs straight from the stream grammar for the
//! decoder-hardening regression suite.
//!
//! Entry points: `sword fuzz` in the CLI, [`driver::run_fuzz`] from code,
//! and the `corpus_replay` / `compress_hardening` integration tests.

pub mod adversarial;
pub mod corpus;
pub mod driver;
pub mod exec;
pub mod fault;
pub mod gen;
pub mod oracle;
pub mod program;
pub mod shrink;

pub use driver::{check_program, run_fuzz, CheckReport, FuzzOptions, FuzzSummary, Verdicts};
pub use gen::{generate, GenConfig};
pub use oracle::Oracle;
pub use program::Program;
pub use shrink::shrink;
