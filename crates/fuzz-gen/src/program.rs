//! The generated-program AST and its two serializations: a line-oriented
//! corpus format (parsed back by [`Program::parse`]) and a re-runnable
//! Rust rendering for bug reports.
//!
//! Programs are deliberately a *structured* subset of what `ompsim` can
//! express: every construct's dynamic behaviour (which thread touches
//! which element, under which label and lock set) is a pure function of
//! the AST, which is what lets the oracle compute the exact racy-pair set
//! without running either detector. Nondeterministic constructs (the
//! free-running `for_dynamic`) are excluded by design; the *pinned*
//! dynamic/guided schedules, `ordered`, and explicit tasks with
//! `depend` clauses are all deterministic and in scope.

use sword_trace::AccessKind;

/// Virtual source file all generated statements are attributed to. Access
/// ids map to lines as `line = id + 1`, so detector reports resolve back
/// to statements.
pub const SITE_FILE: &str = "fuzz.gen";

/// A whole generated program: shared buffers plus a sequence of top-level
/// parallel regions executed from the master context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    /// Element counts of the shared `u64` buffers (`b0`, `b1`, …).
    pub buffers: Vec<u64>,
    /// Top-level parallel regions, run one after another.
    pub regions: Vec<Region>,
}

/// One parallel region: a team size and a statement list every team
/// member executes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Region {
    /// Team size (≥ 1; the generator emits ≥ 2).
    pub threads: u64,
    /// Body statements, executed in order by every member.
    pub body: Vec<Stmt>,
}

/// Dependence flavour of one `depend(...)` clause, mirroring
/// `ompsim::DepMode`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DepKind {
    /// `depend(in: v)`.
    In,
    /// `depend(out: v)`.
    Out,
    /// `depend(inout: v)`.
    InOut,
}

impl DepKind {
    /// Two clauses on the same variable order their tasks unless both
    /// only read — the same rule as `ompsim::DepMode::conflicts`.
    pub fn conflicts(self, other: DepKind) -> bool {
        !(self == DepKind::In && other == DepKind::In)
    }
}

/// One `depend(<kind>: v<var>)` clause on a task.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskDep {
    /// Dependence variable (an abstract id, not a buffer element).
    pub var: u64,
    /// Clause flavour.
    pub kind: DepKind,
}

/// One explicit task: its `depend` clauses plus a straight-line access
/// body. Every team member creates its own instance, so dependence edges
/// only form between tasks of the same creator (as in `ompsim`, where
/// each thread keeps a private outstanding-task list).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskBlock {
    /// `depend` clauses, matched against earlier sibling tasks.
    pub deps: Vec<TaskDep>,
    /// Body accesses, run by the task (which sees `var = 0`).
    pub body: Vec<Access>,
}

/// Loop schedule of a `for` statement. The dynamic and guided variants
/// are the *pinned* schedules (`for_dynamic_pinned`/`for_guided_pinned`):
/// chunk `g` always lands on slot `g % team`, so the iteration→thread map
/// stays a pure function of the AST.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sched {
    /// `schedule(static)`: one contiguous chunk per thread.
    Static,
    /// `schedule(dynamic, chunk)` with pinned chunk→slot assignment.
    Dynamic {
        /// Fixed chunk size (≥ 1).
        chunk: u64,
    },
    /// `schedule(guided, min)` with pinned chunk→slot assignment.
    Guided {
        /// Minimum chunk size (≥ 1).
        min: u64,
    },
}

/// A body statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// Every team member performs this access once.
    Access(Access),
    /// Explicit team barrier.
    Barrier,
    /// Worksharing loop over `0..n`; body accesses see the loop index as
    /// `var`. Implicit barrier unless `nowait` (`nowait` is only legal
    /// for unordered static loops; `ordered` never combines with
    /// `Guided`, matching the runtime's API surface).
    For { n: u64, nowait: bool, sched: Sched, ordered: bool, body: Vec<Access> },
    /// Every team member creates one instance of this task.
    Task(TaskBlock),
    /// Each member waits for its own outstanding tasks.
    Taskwait,
    /// `taskgroup` whose body creates the listed tasks; completion of the
    /// group is awaited at its end, without fencing older siblings.
    Taskgroup {
        /// Tasks created inside the group, in order.
        tasks: Vec<TaskBlock>,
    },
    /// `sections(count)`; body accesses see the section index as `var`.
    /// Implicit barrier.
    Sections { count: u64, body: Vec<Access> },
    /// Slot 0 only, no barrier.
    Master { body: Vec<Access> },
    /// Slot 0 only; implicit barrier unless `nowait`.
    Single { nowait: bool, body: Vec<Access> },
    /// Every member performs the accesses holding the named lock.
    Critical { lock: u32, body: Vec<Access> },
    /// A nested parallel region forked by every member.
    Nested(Region),
}

/// One instrumented access statement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    /// Statement id — the virtual line (`id + 1`) in [`SITE_FILE`].
    pub id: u32,
    /// Target buffer index.
    pub buf: u8,
    /// Read/write/atomic flavour.
    pub kind: AccessKind,
    /// Element index expression.
    pub index: IndexExpr,
}

/// Element index expressions, always reduced modulo the buffer length so
/// any generated expression is in bounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexExpr {
    /// The constant `k` — every evaluation collides.
    Const(u64),
    /// `team_index * stride + off` — disjoint per thread when the stride
    /// is non-zero and the buffer is wide enough.
    Tid { stride: u64, off: u64 },
    /// `var * stride + off` over the loop/section variable (0 outside
    /// loops and sections).
    Var { stride: u64, off: u64 },
}

impl IndexExpr {
    /// Evaluates to a concrete element index for a buffer of `len`
    /// elements.
    pub fn eval(&self, team_index: u64, var: u64, len: u64) -> u64 {
        let raw = match *self {
            IndexExpr::Const(k) => k,
            IndexExpr::Tid { stride, off } => team_index * stride + off,
            IndexExpr::Var { stride, off } => var * stride + off,
        };
        raw % len.max(1)
    }

    fn render(&self) -> String {
        match *self {
            IndexExpr::Const(k) => format!("c{k}"),
            IndexExpr::Tid { stride, off } => format!("tid*{stride}+{off}"),
            IndexExpr::Var { stride, off } => format!("var*{stride}+{off}"),
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        if let Some(k) = s.strip_prefix('c') {
            return Ok(IndexExpr::Const(parse_num(k)?));
        }
        let (base, rest) = if let Some(r) = s.strip_prefix("tid*") {
            (false, r)
        } else if let Some(r) = s.strip_prefix("var*") {
            (true, r)
        } else {
            return Err(format!("bad index expr `{s}`"));
        };
        let (stride, off) = rest.split_once('+').ok_or_else(|| format!("bad index expr `{s}`"))?;
        let (stride, off) = (parse_num(stride)?, parse_num(off)?);
        Ok(if base { IndexExpr::Var { stride, off } } else { IndexExpr::Tid { stride, off } })
    }
}

fn kind_token(kind: AccessKind) -> &'static str {
    match kind {
        AccessKind::Read => "r",
        AccessKind::Write => "w",
        AccessKind::AtomicRead => "ar",
        AccessKind::AtomicWrite => "aw",
    }
}

fn parse_kind(s: &str) -> Result<AccessKind, String> {
    Ok(match s {
        "r" => AccessKind::Read,
        "w" => AccessKind::Write,
        "ar" => AccessKind::AtomicRead,
        "aw" => AccessKind::AtomicWrite,
        other => return Err(format!("bad access kind `{other}`")),
    })
}

fn parse_num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad number `{s}`"))
}

fn dep_token(kind: DepKind) -> &'static str {
    match kind {
        DepKind::In => "in",
        DepKind::Out => "out",
        DepKind::InOut => "inout",
    }
}

fn parse_dep_kind(s: &str) -> Result<DepKind, String> {
    Ok(match s {
        "in" => DepKind::In,
        "out" => DepKind::Out,
        "inout" => DepKind::InOut,
        other => return Err(format!("bad dep kind `{other}`")),
    })
}

fn task_head(tb: &TaskBlock) -> String {
    let mut s = String::from("task");
    for d in &tb.deps {
        s.push_str(&format!(" dep {} {}", d.var, dep_token(d.kind)));
    }
    s
}

/// Parses the tail of a `task` head line: `dep <var> <kind>` triples.
fn parse_task_deps(toks: &[&str]) -> Result<Vec<TaskDep>, String> {
    let mut deps = Vec::new();
    let mut it = toks.iter();
    while let Some(tok) = it.next() {
        if *tok != "dep" {
            return Err(format!("task head wants `dep <var> <kind>` groups, got `{tok}`"));
        }
        let (var, kind) = match (it.next(), it.next()) {
            (Some(v), Some(k)) => (parse_num(v)?, parse_dep_kind(k)?),
            _ => return Err("truncated `dep <var> <kind>` clause".into()),
        };
        deps.push(TaskDep { var, kind });
    }
    Ok(deps)
}

impl Access {
    fn render(&self) -> String {
        format!(
            "access {} {} b{} {}",
            self.id,
            kind_token(self.kind),
            self.buf,
            self.index.render()
        )
    }

    fn parse(toks: &[&str]) -> Result<Self, String> {
        if toks.len() != 4 {
            return Err(format!("access wants `access <id> <kind> b<buf> <expr>`, got {toks:?}"));
        }
        let buf = toks[2].strip_prefix('b').ok_or_else(|| format!("bad buffer `{}`", toks[2]))?;
        Ok(Access {
            id: parse_num(toks[0])?,
            kind: parse_kind(toks[1])?,
            buf: parse_num(buf)?,
            index: IndexExpr::parse(toks[3])?,
        })
    }
}

impl Program {
    /// Largest access id in the program (`None` when it has no accesses).
    pub fn max_id(&self) -> Option<u32> {
        fn acc_max(body: &[Access]) -> Option<u32> {
            body.iter().map(|a| a.id).max()
        }
        fn stmt_max(s: &Stmt) -> Option<u32> {
            match s {
                Stmt::Access(a) => Some(a.id),
                Stmt::Barrier | Stmt::Taskwait => None,
                Stmt::For { body, .. }
                | Stmt::Sections { body, .. }
                | Stmt::Master { body }
                | Stmt::Single { body, .. }
                | Stmt::Critical { body, .. } => acc_max(body),
                Stmt::Task(tb) => acc_max(&tb.body),
                Stmt::Taskgroup { tasks } => tasks.iter().filter_map(|tb| acc_max(&tb.body)).max(),
                Stmt::Nested(r) => r.body.iter().filter_map(stmt_max).max(),
            }
        }
        self.regions.iter().flat_map(|r| r.body.iter()).filter_map(stmt_max).max()
    }

    /// All lock ids used by `Critical` statements, ascending and deduped.
    pub fn locks(&self) -> Vec<u32> {
        fn walk(body: &[Stmt], out: &mut Vec<u32>) {
            for s in body {
                match s {
                    Stmt::Critical { lock, .. } => out.push(*lock),
                    Stmt::Nested(r) => walk(&r.body, out),
                    _ => {}
                }
            }
        }
        let mut out = Vec::new();
        for r in &self.regions {
            walk(&r.body, &mut out);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Serializes to the line-oriented corpus format.
    pub fn to_text(&self) -> String {
        fn accesses(out: &mut String, body: &[Access], pad: &str) {
            for a in body {
                out.push_str(pad);
                out.push_str(&a.render());
                out.push('\n');
            }
        }
        fn stmts(out: &mut String, body: &[Stmt], depth: usize) {
            let pad = "  ".repeat(depth);
            let inner = "  ".repeat(depth + 1);
            for s in body {
                match s {
                    Stmt::Access(a) => {
                        out.push_str(&pad);
                        out.push_str(&a.render());
                        out.push('\n');
                    }
                    Stmt::Barrier => {
                        out.push_str(&format!("{pad}barrier\n"));
                    }
                    Stmt::For { n, nowait, sched, ordered, body } => {
                        let mut head = format!("{pad}for {n}");
                        match sched {
                            Sched::Static => {}
                            Sched::Dynamic { chunk } => head.push_str(&format!(" dynamic {chunk}")),
                            Sched::Guided { min } => head.push_str(&format!(" guided {min}")),
                        }
                        if *ordered {
                            head.push_str(" ordered");
                        }
                        if *nowait {
                            head.push_str(" nowait");
                        }
                        out.push_str(&head);
                        out.push('\n');
                        accesses(out, body, &inner);
                        out.push_str(&format!("{pad}end\n"));
                    }
                    Stmt::Task(tb) => {
                        out.push_str(&format!("{pad}{}\n", task_head(tb)));
                        accesses(out, &tb.body, &inner);
                        out.push_str(&format!("{pad}end\n"));
                    }
                    Stmt::Taskwait => {
                        out.push_str(&format!("{pad}taskwait\n"));
                    }
                    Stmt::Taskgroup { tasks } => {
                        out.push_str(&format!("{pad}taskgroup\n"));
                        let deeper = "  ".repeat(depth + 2);
                        for tb in tasks {
                            out.push_str(&format!("{inner}{}\n", task_head(tb)));
                            accesses(out, &tb.body, &deeper);
                            out.push_str(&format!("{inner}end\n"));
                        }
                        out.push_str(&format!("{pad}end\n"));
                    }
                    Stmt::Sections { count, body } => {
                        out.push_str(&format!("{pad}sections {count}\n"));
                        accesses(out, body, &inner);
                        out.push_str(&format!("{pad}end\n"));
                    }
                    Stmt::Master { body } => {
                        out.push_str(&format!("{pad}master\n"));
                        accesses(out, body, &inner);
                        out.push_str(&format!("{pad}end\n"));
                    }
                    Stmt::Single { nowait, body } => {
                        let tail = if *nowait { " nowait" } else { "" };
                        out.push_str(&format!("{pad}single{tail}\n"));
                        accesses(out, body, &inner);
                        out.push_str(&format!("{pad}end\n"));
                    }
                    Stmt::Critical { lock, body } => {
                        out.push_str(&format!("{pad}critical {lock}\n"));
                        accesses(out, body, &inner);
                        out.push_str(&format!("{pad}end\n"));
                    }
                    Stmt::Nested(r) => {
                        out.push_str(&format!("{pad}region {}\n", r.threads));
                        stmts(out, &r.body, depth + 1);
                        out.push_str(&format!("{pad}end\n"));
                    }
                }
            }
        }
        let mut out = String::from("fuzz-prog v1\n");
        for len in &self.buffers {
            out.push_str(&format!("buf {len}\n"));
        }
        for r in &self.regions {
            out.push_str(&format!("region {}\n", r.threads));
            stmts(&mut out, &r.body, 1);
            out.push_str("end\n");
        }
        out
    }

    /// Parses the corpus format. Lines starting with `#` are comments.
    pub fn parse(text: &str) -> Result<Program, String> {
        let mut lines =
            text.lines().map(str::trim).filter(|l| !l.is_empty() && !l.starts_with('#')).peekable();
        if lines.next() != Some("fuzz-prog v1") {
            return Err("missing `fuzz-prog v1` header".into());
        }
        let mut buffers = Vec::new();
        while let Some(line) = lines.peek() {
            let Some(len) = line.strip_prefix("buf ") else { break };
            buffers.push(parse_num(len.trim())?);
            lines.next();
        }

        // Accesses-only block bodies (for/sections/master/single/critical).
        fn access_block<'a>(
            lines: &mut std::iter::Peekable<impl Iterator<Item = &'a str>>,
        ) -> Result<Vec<Access>, String> {
            let mut body = Vec::new();
            loop {
                let Some(line) = lines.next() else {
                    return Err("unterminated block (missing `end`)".into());
                };
                if line == "end" {
                    return Ok(body);
                }
                let toks: Vec<&str> = line.split_whitespace().collect();
                match toks.first() {
                    Some(&"access") => body.push(Access::parse(&toks[1..])?),
                    _ => return Err(format!("expected `access …` or `end`, got `{line}`")),
                }
            }
        }

        fn stmt_block<'a>(
            lines: &mut std::iter::Peekable<impl Iterator<Item = &'a str>>,
        ) -> Result<Vec<Stmt>, String> {
            let mut body = Vec::new();
            loop {
                let Some(line) = lines.next() else {
                    return Err("unterminated region (missing `end`)".into());
                };
                if line == "end" {
                    return Ok(body);
                }
                let toks: Vec<&str> = line.split_whitespace().collect();
                match toks.first().copied() {
                    Some("access") => body.push(Stmt::Access(Access::parse(&toks[1..])?)),
                    Some("barrier") => body.push(Stmt::Barrier),
                    Some("for") if toks.len() >= 2 => {
                        let n = parse_num(toks[1])?;
                        let mut sched = Sched::Static;
                        let mut ordered = false;
                        let mut nowait = false;
                        let mut it = toks[2..].iter();
                        while let Some(tok) = it.next() {
                            match *tok {
                                "dynamic" => {
                                    let chunk = parse_num(
                                        it.next().ok_or("`dynamic` wants a chunk size")?,
                                    )?;
                                    sched = Sched::Dynamic { chunk };
                                }
                                "guided" => {
                                    let min = parse_num(
                                        it.next().ok_or("`guided` wants a min chunk size")?,
                                    )?;
                                    sched = Sched::Guided { min };
                                }
                                "ordered" => ordered = true,
                                "nowait" => nowait = true,
                                other => return Err(format!("bad for clause `{other}`")),
                            }
                        }
                        match sched {
                            Sched::Dynamic { chunk: 0 } => {
                                return Err("dynamic chunk must be ≥ 1".into())
                            }
                            Sched::Guided { min: 0 } => {
                                return Err("guided min chunk must be ≥ 1".into())
                            }
                            _ => {}
                        }
                        // Mirror the runtime's API surface: only unordered
                        // static loops have a nowait variant, and there is
                        // no guided ordered loop.
                        if nowait && (ordered || sched != Sched::Static) {
                            return Err("nowait needs an unordered static loop".into());
                        }
                        if ordered && matches!(sched, Sched::Guided { .. }) {
                            return Err("ordered cannot combine with guided".into());
                        }
                        body.push(Stmt::For {
                            n,
                            nowait,
                            sched,
                            ordered,
                            body: access_block(lines)?,
                        });
                    }
                    Some("task") => {
                        let deps = parse_task_deps(&toks[1..])?;
                        body.push(Stmt::Task(TaskBlock { deps, body: access_block(lines)? }));
                    }
                    Some("taskwait") => body.push(Stmt::Taskwait),
                    Some("taskgroup") => {
                        let mut tasks = Vec::new();
                        loop {
                            let Some(line) = lines.next() else {
                                return Err("unterminated taskgroup (missing `end`)".into());
                            };
                            if line == "end" {
                                break;
                            }
                            let toks: Vec<&str> = line.split_whitespace().collect();
                            match toks.first().copied() {
                                Some("task") => tasks.push(TaskBlock {
                                    deps: parse_task_deps(&toks[1..])?,
                                    body: access_block(lines)?,
                                }),
                                _ => {
                                    return Err(format!(
                                        "taskgroup bodies hold only `task …` blocks, got `{line}`"
                                    ))
                                }
                            }
                        }
                        body.push(Stmt::Taskgroup { tasks });
                    }
                    Some("sections") if toks.len() == 2 => {
                        let count = parse_num(toks[1])?;
                        body.push(Stmt::Sections { count, body: access_block(lines)? });
                    }
                    Some("master") => body.push(Stmt::Master { body: access_block(lines)? }),
                    Some("single") => {
                        let nowait = toks.get(1) == Some(&"nowait");
                        body.push(Stmt::Single { nowait, body: access_block(lines)? });
                    }
                    Some("critical") if toks.len() == 2 => {
                        let lock = parse_num(toks[1])?;
                        body.push(Stmt::Critical { lock, body: access_block(lines)? });
                    }
                    Some("region") if toks.len() == 2 => {
                        let threads = parse_num::<u64>(toks[1])?;
                        if threads == 0 {
                            return Err("region needs threads ≥ 1".into());
                        }
                        body.push(Stmt::Nested(Region { threads, body: stmt_block(lines)? }));
                    }
                    _ => return Err(format!("unrecognized statement `{line}`")),
                }
            }
        }

        let mut regions = Vec::new();
        while let Some(line) = lines.next() {
            let toks: Vec<&str> = line.split_whitespace().collect();
            match toks.as_slice() {
                ["region", threads] => {
                    let threads: u64 = parse_num(threads)?;
                    if threads == 0 {
                        return Err("region needs threads ≥ 1".into());
                    }
                    regions.push(Region { threads, body: stmt_block(&mut lines)? });
                }
                _ => return Err(format!("expected `region <threads>`, got `{line}`")),
            }
        }
        if buffers.is_empty() {
            return Err("program needs at least one buffer".into());
        }
        if buffers.contains(&0) {
            return Err("buffer length must be ≥ 1".into());
        }
        let prog = Program { buffers, regions };
        for a in prog.all_accesses() {
            if (a.buf as usize) >= prog.buffers.len() {
                return Err(format!("access {} targets missing buffer b{}", a.id, a.buf));
            }
        }
        Ok(prog)
    }

    /// Every access statement in the program, in syntactic order.
    pub fn all_accesses(&self) -> Vec<Access> {
        fn walk(body: &[Stmt], out: &mut Vec<Access>) {
            for s in body {
                match s {
                    Stmt::Access(a) => out.push(*a),
                    Stmt::Barrier | Stmt::Taskwait => {}
                    Stmt::For { body, .. }
                    | Stmt::Sections { body, .. }
                    | Stmt::Master { body }
                    | Stmt::Single { body, .. }
                    | Stmt::Critical { body, .. } => out.extend(body.iter().copied()),
                    Stmt::Task(tb) => out.extend(tb.body.iter().copied()),
                    Stmt::Taskgroup { tasks } => {
                        for tb in tasks {
                            out.extend(tb.body.iter().copied());
                        }
                    }
                    Stmt::Nested(r) => walk(&r.body, out),
                }
            }
        }
        let mut out = Vec::new();
        for r in &self.regions {
            walk(&r.body, &mut out);
        }
        out
    }

    /// Renders the program as a standalone Rust snippet over `ompsim`,
    /// suitable for pasting into a test when reproducing a divergence.
    pub fn to_rust(&self) -> String {
        fn index_rust(e: &IndexExpr, len: u64, var: &str, ctx: &str) -> String {
            match *e {
                IndexExpr::Const(k) => format!("{}", k % len.max(1)),
                IndexExpr::Tid { stride, off } => {
                    format!("({ctx}.team_index() * {stride} + {off}) % {len}")
                }
                IndexExpr::Var { stride, off } => format!("({var} * {stride} + {off}) % {len}"),
            }
        }
        fn access_rust(out: &mut String, a: &Access, lens: &[u64], pad: &str, var: &str) {
            access_rust_on(out, a, lens, pad, var, "w");
        }
        fn access_rust_on(
            out: &mut String,
            a: &Access,
            lens: &[u64],
            pad: &str,
            var: &str,
            ctx: &str,
        ) {
            let len = lens[a.buf as usize];
            let idx = index_rust(&a.index, len, var, ctx);
            let b = format!("b{}", a.buf);
            let line = match a.kind {
                AccessKind::Read => format!("let _ = {ctx}.read(&{b}, {idx});"),
                AccessKind::Write => format!("{ctx}.write(&{b}, {idx}, 1);"),
                AccessKind::AtomicRead => format!("let _ = {ctx}.atomic_read(&{b}, {idx});"),
                AccessKind::AtomicWrite => format!("{ctx}.atomic_write(&{b}, {idx}, 1);"),
            };
            out.push_str(&format!("{pad}{line} // s{}\n", a.id));
        }
        fn dep_rust(deps: &[TaskDep]) -> String {
            let clauses: Vec<String> = deps
                .iter()
                .map(|d| {
                    let mode = match d.kind {
                        DepKind::In => "DepMode::In",
                        DepKind::Out => "DepMode::Out",
                        DepKind::InOut => "DepMode::InOut",
                    };
                    format!("({}, {mode})", d.var)
                })
                .collect();
            format!("&[{}]", clauses.join(", "))
        }
        fn task_rust(
            out: &mut String,
            tb: &TaskBlock,
            lens: &[u64],
            pad: &str,
            inner: &str,
            ctx: &str,
        ) {
            out.push_str(&format!("{pad}{ctx}.task_depend({}, |t| {{\n", dep_rust(&tb.deps)));
            for a in &tb.body {
                access_rust_on(out, a, lens, inner, "0", "t");
            }
            out.push_str(&format!("{pad}}});\n"));
        }
        fn stmts_rust(out: &mut String, body: &[Stmt], lens: &[u64], depth: usize) {
            let pad = "    ".repeat(depth);
            let inner = "    ".repeat(depth + 1);
            for s in body {
                match s {
                    Stmt::Access(a) => access_rust(out, a, lens, &pad, "0"),
                    Stmt::Barrier => out.push_str(&format!("{pad}w.barrier();\n")),
                    Stmt::For { n, nowait, sched, ordered, body } => {
                        if *ordered {
                            let head = match sched {
                                Sched::Static => format!("w.for_static_ordered(0..{n}, |i, ol| {{"),
                                Sched::Dynamic { chunk } => format!(
                                    "w.for_dynamic_pinned_ordered(0..{n}, {chunk}, |i, ol| {{"
                                ),
                                Sched::Guided { .. } => {
                                    unreachable!("parser rejects guided ordered")
                                }
                            };
                            out.push_str(&format!("{pad}{head}\n"));
                            out.push_str(&format!("{inner}w.ordered(ol, i, || {{\n"));
                            let deeper = format!("{inner}    ");
                            for a in body {
                                access_rust(out, a, lens, &deeper, "i");
                            }
                            out.push_str(&format!("{inner}}});\n"));
                            out.push_str(&format!("{pad}}});\n"));
                        } else {
                            let head = match sched {
                                Sched::Static if *nowait => {
                                    format!("w.for_static_nowait(0..{n}, |i| {{")
                                }
                                Sched::Static => format!("w.for_static(0..{n}, |i| {{"),
                                Sched::Dynamic { chunk } => {
                                    format!("w.for_dynamic_pinned(0..{n}, {chunk}, |i| {{")
                                }
                                Sched::Guided { min } => {
                                    format!("w.for_guided_pinned(0..{n}, {min}, |i| {{")
                                }
                            };
                            out.push_str(&format!("{pad}{head}\n"));
                            for a in body {
                                access_rust(out, a, lens, &inner, "i");
                            }
                            out.push_str(&format!("{pad}}});\n"));
                        }
                    }
                    Stmt::Task(tb) => task_rust(out, tb, lens, &pad, &inner, "w"),
                    Stmt::Taskwait => out.push_str(&format!("{pad}w.taskwait();\n")),
                    Stmt::Taskgroup { tasks } => {
                        out.push_str(&format!("{pad}w.taskgroup(|g| {{\n"));
                        let deeper = format!("{inner}    ");
                        for tb in tasks {
                            task_rust(out, tb, lens, &inner, &deeper, "g");
                        }
                        out.push_str(&format!("{pad}}});\n"));
                    }
                    Stmt::Sections { count, body } => {
                        out.push_str(&format!("{pad}w.sections({count}, |s| {{\n"));
                        for a in body {
                            access_rust(out, a, lens, &inner, "(s as u64)");
                        }
                        out.push_str(&format!("{pad}}});\n"));
                    }
                    Stmt::Master { body } => {
                        out.push_str(&format!("{pad}w.master(|| {{\n"));
                        for a in body {
                            access_rust(out, a, lens, &inner, "0");
                        }
                        out.push_str(&format!("{pad}}});\n"));
                    }
                    Stmt::Single { nowait, body } => {
                        let call = if *nowait { "single_nowait" } else { "single" };
                        out.push_str(&format!("{pad}w.{call}(|| {{\n"));
                        for a in body {
                            access_rust(out, a, lens, &inner, "0");
                        }
                        out.push_str(&format!("{pad}}});\n"));
                    }
                    Stmt::Critical { lock, body } => {
                        out.push_str(&format!("{pad}w.critical(\"L{lock}\", || {{\n"));
                        for a in body {
                            access_rust(out, a, lens, &inner, "0");
                        }
                        out.push_str(&format!("{pad}}});\n"));
                    }
                    Stmt::Nested(r) => {
                        out.push_str(&format!("{pad}w.parallel({}, |w| {{\n", r.threads));
                        stmts_rust(out, &r.body, lens, depth + 1);
                        out.push_str(&format!("{pad}}});\n"));
                    }
                }
            }
        }
        let mut out = String::from("let sim = OmpSim::new(); // attach the detector under test\n");
        for (i, len) in self.buffers.iter().enumerate() {
            out.push_str(&format!("let b{i} = sim.alloc::<u64>({len}, 0);\n"));
        }
        out.push_str("sim.run(|ctx| {\n");
        for r in &self.regions {
            out.push_str(&format!("    ctx.parallel({}, |w| {{\n", r.threads));
            stmts_rust(&mut out, &r.body, &self.buffers, 2);
            out.push_str("    });\n");
        }
        out.push_str("});\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample() -> Program {
        Program {
            buffers: vec![8, 4],
            regions: vec![Region {
                threads: 2,
                body: vec![
                    Stmt::Access(Access {
                        id: 0,
                        buf: 0,
                        kind: AccessKind::Write,
                        index: IndexExpr::Tid { stride: 1, off: 0 },
                    }),
                    Stmt::Barrier,
                    Stmt::For {
                        n: 6,
                        nowait: true,
                        sched: Sched::Static,
                        ordered: false,
                        body: vec![Access {
                            id: 1,
                            buf: 0,
                            kind: AccessKind::Read,
                            index: IndexExpr::Var { stride: 1, off: 1 },
                        }],
                    },
                    Stmt::Critical {
                        lock: 0,
                        body: vec![Access {
                            id: 2,
                            buf: 1,
                            kind: AccessKind::Write,
                            index: IndexExpr::Const(3),
                        }],
                    },
                    Stmt::Nested(Region {
                        threads: 2,
                        body: vec![Stmt::Access(Access {
                            id: 3,
                            buf: 1,
                            kind: AccessKind::AtomicWrite,
                            index: IndexExpr::Const(0),
                        })],
                    }),
                    Stmt::Single {
                        nowait: false,
                        body: vec![Access {
                            id: 4,
                            buf: 0,
                            kind: AccessKind::Read,
                            index: IndexExpr::Const(2),
                        }],
                    },
                ],
            }],
        }
    }

    /// A program exercising every tasking and scheduling construct.
    pub(crate) fn tasking_sample() -> Program {
        let acc = |id: u32, kind, index| Access { id, buf: 0, kind, index };
        Program {
            buffers: vec![8],
            regions: vec![Region {
                threads: 2,
                body: vec![
                    Stmt::Task(TaskBlock {
                        deps: vec![
                            TaskDep { var: 0, kind: DepKind::Out },
                            TaskDep { var: 1, kind: DepKind::In },
                        ],
                        body: vec![acc(0, AccessKind::Write, IndexExpr::Const(0))],
                    }),
                    Stmt::Task(TaskBlock {
                        deps: vec![TaskDep { var: 0, kind: DepKind::InOut }],
                        body: vec![acc(1, AccessKind::Read, IndexExpr::Const(0))],
                    }),
                    Stmt::Taskwait,
                    Stmt::Taskgroup {
                        tasks: vec![
                            TaskBlock {
                                deps: vec![],
                                body: vec![acc(
                                    2,
                                    AccessKind::Write,
                                    IndexExpr::Tid { stride: 1, off: 2 },
                                )],
                            },
                            TaskBlock {
                                deps: vec![TaskDep { var: 2, kind: DepKind::Out }],
                                body: vec![acc(3, AccessKind::Read, IndexExpr::Const(1))],
                            },
                        ],
                    },
                    Stmt::Barrier,
                    Stmt::For {
                        n: 7,
                        nowait: false,
                        sched: Sched::Dynamic { chunk: 2 },
                        ordered: false,
                        body: vec![acc(4, AccessKind::Write, IndexExpr::Var { stride: 1, off: 0 })],
                    },
                    Stmt::For {
                        n: 5,
                        nowait: false,
                        sched: Sched::Guided { min: 1 },
                        ordered: false,
                        body: vec![acc(5, AccessKind::Read, IndexExpr::Var { stride: 1, off: 0 })],
                    },
                    Stmt::For {
                        n: 4,
                        nowait: false,
                        sched: Sched::Dynamic { chunk: 1 },
                        ordered: true,
                        body: vec![acc(6, AccessKind::Write, IndexExpr::Const(3))],
                    },
                ],
            }],
        }
    }

    #[test]
    fn text_roundtrip() {
        let p = sample();
        let text = p.to_text();
        assert_eq!(Program::parse(&text).unwrap(), p);
    }

    #[test]
    fn tasking_text_roundtrip() {
        let p = tasking_sample();
        let text = p.to_text();
        assert_eq!(Program::parse(&text).unwrap(), p, "text:\n{text}");
    }

    #[test]
    fn parse_rejects_illegal_loop_clause_combinations() {
        let prog = |head: &str| format!("fuzz-prog v1\nbuf 4\nregion 2\n{head}\nend\nend\n");
        assert!(Program::parse(&prog("for 4 dynamic 2 nowait")).is_err(), "dynamic nowait");
        assert!(Program::parse(&prog("for 4 guided 1 ordered")).is_err(), "guided ordered");
        assert!(Program::parse(&prog("for 4 ordered nowait")).is_err(), "ordered nowait");
        assert!(Program::parse(&prog("for 4 dynamic 0")).is_err(), "zero chunk");
        assert!(Program::parse(&prog("for 4 dynamic 2 ordered")).is_ok(), "dynamic ordered");
    }

    #[test]
    fn parse_rejects_malformed_task_blocks() {
        let p = "fuzz-prog v1\nbuf 4\nregion 2\ntask dep 0\nend\nend\n";
        assert!(Program::parse(p).is_err(), "truncated dep clause");
        let p = "fuzz-prog v1\nbuf 4\nregion 2\ntaskgroup\nbarrier\nend\nend\n";
        assert!(Program::parse(p).is_err(), "non-task inside taskgroup");
        let p = "fuzz-prog v1\nbuf 4\nregion 2\ntask dep 1 inout\naccess 0 w b0 c0\nend\nend\n";
        assert!(Program::parse(p).is_ok(), "well-formed task");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Program::parse("").is_err());
        assert!(Program::parse("fuzz-prog v1\nbuf 4\nregion 2\n").is_err(), "missing end");
        assert!(Program::parse("fuzz-prog v1\nregion 2\nend\n").is_err(), "no buffers");
        assert!(
            Program::parse("fuzz-prog v1\nbuf 4\nregion 2\naccess 0 w b9 c0\nend\n").is_err(),
            "buffer out of range"
        );
        assert!(Program::parse("fuzz-prog v1\nbuf 4\nregion 0\nend\n").is_err(), "zero team");
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let mut text = String::from("# seed 7\n\n");
        text.push_str(&sample().to_text());
        assert_eq!(Program::parse(&text).unwrap(), sample());
    }

    #[test]
    fn index_eval_wraps_modulo_len() {
        assert_eq!(IndexExpr::Const(11).eval(0, 0, 8), 3);
        assert_eq!(IndexExpr::Tid { stride: 2, off: 1 }.eval(3, 0, 4), 3);
        assert_eq!(IndexExpr::Var { stride: 1, off: 0 }.eval(0, 9, 8), 1);
    }

    #[test]
    fn helpers_see_every_access() {
        let p = sample();
        assert_eq!(p.max_id(), Some(4));
        assert_eq!(p.locks(), vec![0]);
        assert_eq!(p.all_accesses().len(), 5);
    }

    #[test]
    fn rust_rendering_mentions_every_statement() {
        let rust = sample().to_rust();
        for id in 0..5 {
            assert!(rust.contains(&format!("// s{id}")), "statement {id} missing:\n{rust}");
        }
        assert!(rust.contains("ctx.parallel(2"));
        assert!(rust.contains("w.critical(\"L0\""));
    }

    #[test]
    fn tasking_rust_rendering_uses_the_runtime_task_api() {
        let rust = tasking_sample().to_rust();
        for id in 0..7 {
            assert!(rust.contains(&format!("// s{id}")), "statement {id} missing:\n{rust}");
        }
        assert!(rust.contains("w.task_depend(&[(0, DepMode::Out), (1, DepMode::In)]"));
        assert!(rust.contains("w.taskwait();"));
        assert!(rust.contains("w.taskgroup(|g| {"));
        assert!(rust.contains("g.task_depend(&[], |t| {"));
        assert!(rust.contains("w.for_dynamic_pinned(0..7, 2"));
        assert!(rust.contains("w.for_guided_pinned(0..5, 1"));
        assert!(rust.contains("w.for_dynamic_pinned_ordered(0..4, 1"));
        assert!(rust.contains("w.ordered(ol, i, || {"));
    }

    #[test]
    fn tasking_helpers_see_every_access() {
        let p = tasking_sample();
        assert_eq!(p.max_id(), Some(6));
        assert_eq!(p.all_accesses().len(), 7);
        assert!(p.locks().is_empty());
    }
}
