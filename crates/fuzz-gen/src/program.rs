//! The generated-program AST and its two serializations: a line-oriented
//! corpus format (parsed back by [`Program::parse`]) and a re-runnable
//! Rust rendering for bug reports.
//!
//! Programs are deliberately a *structured* subset of what `ompsim` can
//! express: every construct's dynamic behaviour (which thread touches
//! which element, under which label and lock set) is a pure function of
//! the AST, which is what lets the oracle compute the exact racy-pair set
//! without running either detector. Nondeterministic constructs
//! (`for_dynamic`) are excluded by design.

use sword_trace::AccessKind;

/// Virtual source file all generated statements are attributed to. Access
/// ids map to lines as `line = id + 1`, so detector reports resolve back
/// to statements.
pub const SITE_FILE: &str = "fuzz.gen";

/// A whole generated program: shared buffers plus a sequence of top-level
/// parallel regions executed from the master context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    /// Element counts of the shared `u64` buffers (`b0`, `b1`, …).
    pub buffers: Vec<u64>,
    /// Top-level parallel regions, run one after another.
    pub regions: Vec<Region>,
}

/// One parallel region: a team size and a statement list every team
/// member executes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Region {
    /// Team size (≥ 1; the generator emits ≥ 2).
    pub threads: u64,
    /// Body statements, executed in order by every member.
    pub body: Vec<Stmt>,
}

/// A body statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// Every team member performs this access once.
    Access(Access),
    /// Explicit team barrier.
    Barrier,
    /// `for schedule(static)` over `0..n`; body accesses see the loop
    /// index as `var`. Implicit barrier unless `nowait`.
    For { n: u64, nowait: bool, body: Vec<Access> },
    /// `sections(count)`; body accesses see the section index as `var`.
    /// Implicit barrier.
    Sections { count: u64, body: Vec<Access> },
    /// Slot 0 only, no barrier.
    Master { body: Vec<Access> },
    /// Slot 0 only; implicit barrier unless `nowait`.
    Single { nowait: bool, body: Vec<Access> },
    /// Every member performs the accesses holding the named lock.
    Critical { lock: u32, body: Vec<Access> },
    /// A nested parallel region forked by every member.
    Nested(Region),
}

/// One instrumented access statement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    /// Statement id — the virtual line (`id + 1`) in [`SITE_FILE`].
    pub id: u32,
    /// Target buffer index.
    pub buf: u8,
    /// Read/write/atomic flavour.
    pub kind: AccessKind,
    /// Element index expression.
    pub index: IndexExpr,
}

/// Element index expressions, always reduced modulo the buffer length so
/// any generated expression is in bounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexExpr {
    /// The constant `k` — every evaluation collides.
    Const(u64),
    /// `team_index * stride + off` — disjoint per thread when the stride
    /// is non-zero and the buffer is wide enough.
    Tid { stride: u64, off: u64 },
    /// `var * stride + off` over the loop/section variable (0 outside
    /// loops and sections).
    Var { stride: u64, off: u64 },
}

impl IndexExpr {
    /// Evaluates to a concrete element index for a buffer of `len`
    /// elements.
    pub fn eval(&self, team_index: u64, var: u64, len: u64) -> u64 {
        let raw = match *self {
            IndexExpr::Const(k) => k,
            IndexExpr::Tid { stride, off } => team_index * stride + off,
            IndexExpr::Var { stride, off } => var * stride + off,
        };
        raw % len.max(1)
    }

    fn render(&self) -> String {
        match *self {
            IndexExpr::Const(k) => format!("c{k}"),
            IndexExpr::Tid { stride, off } => format!("tid*{stride}+{off}"),
            IndexExpr::Var { stride, off } => format!("var*{stride}+{off}"),
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        if let Some(k) = s.strip_prefix('c') {
            return Ok(IndexExpr::Const(parse_num(k)?));
        }
        let (base, rest) = if let Some(r) = s.strip_prefix("tid*") {
            (false, r)
        } else if let Some(r) = s.strip_prefix("var*") {
            (true, r)
        } else {
            return Err(format!("bad index expr `{s}`"));
        };
        let (stride, off) = rest.split_once('+').ok_or_else(|| format!("bad index expr `{s}`"))?;
        let (stride, off) = (parse_num(stride)?, parse_num(off)?);
        Ok(if base { IndexExpr::Var { stride, off } } else { IndexExpr::Tid { stride, off } })
    }
}

fn kind_token(kind: AccessKind) -> &'static str {
    match kind {
        AccessKind::Read => "r",
        AccessKind::Write => "w",
        AccessKind::AtomicRead => "ar",
        AccessKind::AtomicWrite => "aw",
    }
}

fn parse_kind(s: &str) -> Result<AccessKind, String> {
    Ok(match s {
        "r" => AccessKind::Read,
        "w" => AccessKind::Write,
        "ar" => AccessKind::AtomicRead,
        "aw" => AccessKind::AtomicWrite,
        other => return Err(format!("bad access kind `{other}`")),
    })
}

fn parse_num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad number `{s}`"))
}

impl Access {
    fn render(&self) -> String {
        format!(
            "access {} {} b{} {}",
            self.id,
            kind_token(self.kind),
            self.buf,
            self.index.render()
        )
    }

    fn parse(toks: &[&str]) -> Result<Self, String> {
        if toks.len() != 4 {
            return Err(format!("access wants `access <id> <kind> b<buf> <expr>`, got {toks:?}"));
        }
        let buf = toks[2].strip_prefix('b').ok_or_else(|| format!("bad buffer `{}`", toks[2]))?;
        Ok(Access {
            id: parse_num(toks[0])?,
            kind: parse_kind(toks[1])?,
            buf: parse_num(buf)?,
            index: IndexExpr::parse(toks[3])?,
        })
    }
}

impl Program {
    /// Largest access id in the program (`None` when it has no accesses).
    pub fn max_id(&self) -> Option<u32> {
        fn acc_max(body: &[Access]) -> Option<u32> {
            body.iter().map(|a| a.id).max()
        }
        fn stmt_max(s: &Stmt) -> Option<u32> {
            match s {
                Stmt::Access(a) => Some(a.id),
                Stmt::Barrier => None,
                Stmt::For { body, .. }
                | Stmt::Sections { body, .. }
                | Stmt::Master { body }
                | Stmt::Single { body, .. }
                | Stmt::Critical { body, .. } => acc_max(body),
                Stmt::Nested(r) => r.body.iter().filter_map(stmt_max).max(),
            }
        }
        self.regions.iter().flat_map(|r| r.body.iter()).filter_map(stmt_max).max()
    }

    /// All lock ids used by `Critical` statements, ascending and deduped.
    pub fn locks(&self) -> Vec<u32> {
        fn walk(body: &[Stmt], out: &mut Vec<u32>) {
            for s in body {
                match s {
                    Stmt::Critical { lock, .. } => out.push(*lock),
                    Stmt::Nested(r) => walk(&r.body, out),
                    _ => {}
                }
            }
        }
        let mut out = Vec::new();
        for r in &self.regions {
            walk(&r.body, &mut out);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Serializes to the line-oriented corpus format.
    pub fn to_text(&self) -> String {
        fn accesses(out: &mut String, body: &[Access], pad: &str) {
            for a in body {
                out.push_str(pad);
                out.push_str(&a.render());
                out.push('\n');
            }
        }
        fn stmts(out: &mut String, body: &[Stmt], depth: usize) {
            let pad = "  ".repeat(depth);
            let inner = "  ".repeat(depth + 1);
            for s in body {
                match s {
                    Stmt::Access(a) => {
                        out.push_str(&pad);
                        out.push_str(&a.render());
                        out.push('\n');
                    }
                    Stmt::Barrier => {
                        out.push_str(&format!("{pad}barrier\n"));
                    }
                    Stmt::For { n, nowait, body } => {
                        let tail = if *nowait { " nowait" } else { "" };
                        out.push_str(&format!("{pad}for {n}{tail}\n"));
                        accesses(out, body, &inner);
                        out.push_str(&format!("{pad}end\n"));
                    }
                    Stmt::Sections { count, body } => {
                        out.push_str(&format!("{pad}sections {count}\n"));
                        accesses(out, body, &inner);
                        out.push_str(&format!("{pad}end\n"));
                    }
                    Stmt::Master { body } => {
                        out.push_str(&format!("{pad}master\n"));
                        accesses(out, body, &inner);
                        out.push_str(&format!("{pad}end\n"));
                    }
                    Stmt::Single { nowait, body } => {
                        let tail = if *nowait { " nowait" } else { "" };
                        out.push_str(&format!("{pad}single{tail}\n"));
                        accesses(out, body, &inner);
                        out.push_str(&format!("{pad}end\n"));
                    }
                    Stmt::Critical { lock, body } => {
                        out.push_str(&format!("{pad}critical {lock}\n"));
                        accesses(out, body, &inner);
                        out.push_str(&format!("{pad}end\n"));
                    }
                    Stmt::Nested(r) => {
                        out.push_str(&format!("{pad}region {}\n", r.threads));
                        stmts(out, &r.body, depth + 1);
                        out.push_str(&format!("{pad}end\n"));
                    }
                }
            }
        }
        let mut out = String::from("fuzz-prog v1\n");
        for len in &self.buffers {
            out.push_str(&format!("buf {len}\n"));
        }
        for r in &self.regions {
            out.push_str(&format!("region {}\n", r.threads));
            stmts(&mut out, &r.body, 1);
            out.push_str("end\n");
        }
        out
    }

    /// Parses the corpus format. Lines starting with `#` are comments.
    pub fn parse(text: &str) -> Result<Program, String> {
        let mut lines =
            text.lines().map(str::trim).filter(|l| !l.is_empty() && !l.starts_with('#')).peekable();
        if lines.next() != Some("fuzz-prog v1") {
            return Err("missing `fuzz-prog v1` header".into());
        }
        let mut buffers = Vec::new();
        while let Some(line) = lines.peek() {
            let Some(len) = line.strip_prefix("buf ") else { break };
            buffers.push(parse_num(len.trim())?);
            lines.next();
        }

        // Accesses-only block bodies (for/sections/master/single/critical).
        fn access_block<'a>(
            lines: &mut std::iter::Peekable<impl Iterator<Item = &'a str>>,
        ) -> Result<Vec<Access>, String> {
            let mut body = Vec::new();
            loop {
                let Some(line) = lines.next() else {
                    return Err("unterminated block (missing `end`)".into());
                };
                if line == "end" {
                    return Ok(body);
                }
                let toks: Vec<&str> = line.split_whitespace().collect();
                match toks.first() {
                    Some(&"access") => body.push(Access::parse(&toks[1..])?),
                    _ => return Err(format!("expected `access …` or `end`, got `{line}`")),
                }
            }
        }

        fn stmt_block<'a>(
            lines: &mut std::iter::Peekable<impl Iterator<Item = &'a str>>,
        ) -> Result<Vec<Stmt>, String> {
            let mut body = Vec::new();
            loop {
                let Some(line) = lines.next() else {
                    return Err("unterminated region (missing `end`)".into());
                };
                if line == "end" {
                    return Ok(body);
                }
                let toks: Vec<&str> = line.split_whitespace().collect();
                match toks.first().copied() {
                    Some("access") => body.push(Stmt::Access(Access::parse(&toks[1..])?)),
                    Some("barrier") => body.push(Stmt::Barrier),
                    Some("for") if toks.len() >= 2 => {
                        let nowait = toks.get(2) == Some(&"nowait");
                        let n = parse_num(toks[1])?;
                        body.push(Stmt::For { n, nowait, body: access_block(lines)? });
                    }
                    Some("sections") if toks.len() == 2 => {
                        let count = parse_num(toks[1])?;
                        body.push(Stmt::Sections { count, body: access_block(lines)? });
                    }
                    Some("master") => body.push(Stmt::Master { body: access_block(lines)? }),
                    Some("single") => {
                        let nowait = toks.get(1) == Some(&"nowait");
                        body.push(Stmt::Single { nowait, body: access_block(lines)? });
                    }
                    Some("critical") if toks.len() == 2 => {
                        let lock = parse_num(toks[1])?;
                        body.push(Stmt::Critical { lock, body: access_block(lines)? });
                    }
                    Some("region") if toks.len() == 2 => {
                        let threads = parse_num::<u64>(toks[1])?;
                        if threads == 0 {
                            return Err("region needs threads ≥ 1".into());
                        }
                        body.push(Stmt::Nested(Region { threads, body: stmt_block(lines)? }));
                    }
                    _ => return Err(format!("unrecognized statement `{line}`")),
                }
            }
        }

        let mut regions = Vec::new();
        while let Some(line) = lines.next() {
            let toks: Vec<&str> = line.split_whitespace().collect();
            match toks.as_slice() {
                ["region", threads] => {
                    let threads: u64 = parse_num(threads)?;
                    if threads == 0 {
                        return Err("region needs threads ≥ 1".into());
                    }
                    regions.push(Region { threads, body: stmt_block(&mut lines)? });
                }
                _ => return Err(format!("expected `region <threads>`, got `{line}`")),
            }
        }
        if buffers.is_empty() {
            return Err("program needs at least one buffer".into());
        }
        if buffers.contains(&0) {
            return Err("buffer length must be ≥ 1".into());
        }
        let prog = Program { buffers, regions };
        for a in prog.all_accesses() {
            if (a.buf as usize) >= prog.buffers.len() {
                return Err(format!("access {} targets missing buffer b{}", a.id, a.buf));
            }
        }
        Ok(prog)
    }

    /// Every access statement in the program, in syntactic order.
    pub fn all_accesses(&self) -> Vec<Access> {
        fn walk(body: &[Stmt], out: &mut Vec<Access>) {
            for s in body {
                match s {
                    Stmt::Access(a) => out.push(*a),
                    Stmt::Barrier => {}
                    Stmt::For { body, .. }
                    | Stmt::Sections { body, .. }
                    | Stmt::Master { body }
                    | Stmt::Single { body, .. }
                    | Stmt::Critical { body, .. } => out.extend(body.iter().copied()),
                    Stmt::Nested(r) => walk(&r.body, out),
                }
            }
        }
        let mut out = Vec::new();
        for r in &self.regions {
            walk(&r.body, &mut out);
        }
        out
    }

    /// Renders the program as a standalone Rust snippet over `ompsim`,
    /// suitable for pasting into a test when reproducing a divergence.
    pub fn to_rust(&self) -> String {
        fn index_rust(e: &IndexExpr, len: u64, var: &str) -> String {
            match *e {
                IndexExpr::Const(k) => format!("{}", k % len.max(1)),
                IndexExpr::Tid { stride, off } => {
                    format!("(w.team_index() * {stride} + {off}) % {len}")
                }
                IndexExpr::Var { stride, off } => format!("({var} * {stride} + {off}) % {len}"),
            }
        }
        fn access_rust(out: &mut String, a: &Access, lens: &[u64], pad: &str, var: &str) {
            let len = lens[a.buf as usize];
            let idx = index_rust(&a.index, len, var);
            let b = format!("b{}", a.buf);
            let line = match a.kind {
                AccessKind::Read => format!("let _ = w.read(&{b}, {idx});"),
                AccessKind::Write => format!("w.write(&{b}, {idx}, 1);"),
                AccessKind::AtomicRead => format!("let _ = w.atomic_read(&{b}, {idx});"),
                AccessKind::AtomicWrite => format!("w.atomic_write(&{b}, {idx}, 1);"),
            };
            out.push_str(&format!("{pad}{line} // s{}\n", a.id));
        }
        fn stmts_rust(out: &mut String, body: &[Stmt], lens: &[u64], depth: usize) {
            let pad = "    ".repeat(depth);
            let inner = "    ".repeat(depth + 1);
            for s in body {
                match s {
                    Stmt::Access(a) => access_rust(out, a, lens, &pad, "0"),
                    Stmt::Barrier => out.push_str(&format!("{pad}w.barrier();\n")),
                    Stmt::For { n, nowait, body } => {
                        let call = if *nowait { "for_static_nowait" } else { "for_static" };
                        out.push_str(&format!("{pad}w.{call}(0..{n}, |i| {{\n"));
                        for a in body {
                            access_rust(out, a, lens, &inner, "i");
                        }
                        out.push_str(&format!("{pad}}});\n"));
                    }
                    Stmt::Sections { count, body } => {
                        out.push_str(&format!("{pad}w.sections({count}, |s| {{\n"));
                        for a in body {
                            access_rust(out, a, lens, &inner, "(s as u64)");
                        }
                        out.push_str(&format!("{pad}}});\n"));
                    }
                    Stmt::Master { body } => {
                        out.push_str(&format!("{pad}w.master(|| {{\n"));
                        for a in body {
                            access_rust(out, a, lens, &inner, "0");
                        }
                        out.push_str(&format!("{pad}}});\n"));
                    }
                    Stmt::Single { nowait, body } => {
                        let call = if *nowait { "single_nowait" } else { "single" };
                        out.push_str(&format!("{pad}w.{call}(|| {{\n"));
                        for a in body {
                            access_rust(out, a, lens, &inner, "0");
                        }
                        out.push_str(&format!("{pad}}});\n"));
                    }
                    Stmt::Critical { lock, body } => {
                        out.push_str(&format!("{pad}w.critical(\"L{lock}\", || {{\n"));
                        for a in body {
                            access_rust(out, a, lens, &inner, "0");
                        }
                        out.push_str(&format!("{pad}}});\n"));
                    }
                    Stmt::Nested(r) => {
                        out.push_str(&format!("{pad}w.parallel({}, |w| {{\n", r.threads));
                        stmts_rust(out, &r.body, lens, depth + 1);
                        out.push_str(&format!("{pad}}});\n"));
                    }
                }
            }
        }
        let mut out = String::from("let sim = OmpSim::new(); // attach the detector under test\n");
        for (i, len) in self.buffers.iter().enumerate() {
            out.push_str(&format!("let b{i} = sim.alloc::<u64>({len}, 0);\n"));
        }
        out.push_str("sim.run(|ctx| {\n");
        for r in &self.regions {
            out.push_str(&format!("    ctx.parallel({}, |w| {{\n", r.threads));
            stmts_rust(&mut out, &r.body, &self.buffers, 2);
            out.push_str("    });\n");
        }
        out.push_str("});\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample() -> Program {
        Program {
            buffers: vec![8, 4],
            regions: vec![Region {
                threads: 2,
                body: vec![
                    Stmt::Access(Access {
                        id: 0,
                        buf: 0,
                        kind: AccessKind::Write,
                        index: IndexExpr::Tid { stride: 1, off: 0 },
                    }),
                    Stmt::Barrier,
                    Stmt::For {
                        n: 6,
                        nowait: true,
                        body: vec![Access {
                            id: 1,
                            buf: 0,
                            kind: AccessKind::Read,
                            index: IndexExpr::Var { stride: 1, off: 1 },
                        }],
                    },
                    Stmt::Critical {
                        lock: 0,
                        body: vec![Access {
                            id: 2,
                            buf: 1,
                            kind: AccessKind::Write,
                            index: IndexExpr::Const(3),
                        }],
                    },
                    Stmt::Nested(Region {
                        threads: 2,
                        body: vec![Stmt::Access(Access {
                            id: 3,
                            buf: 1,
                            kind: AccessKind::AtomicWrite,
                            index: IndexExpr::Const(0),
                        })],
                    }),
                    Stmt::Single {
                        nowait: false,
                        body: vec![Access {
                            id: 4,
                            buf: 0,
                            kind: AccessKind::Read,
                            index: IndexExpr::Const(2),
                        }],
                    },
                ],
            }],
        }
    }

    #[test]
    fn text_roundtrip() {
        let p = sample();
        let text = p.to_text();
        assert_eq!(Program::parse(&text).unwrap(), p);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Program::parse("").is_err());
        assert!(Program::parse("fuzz-prog v1\nbuf 4\nregion 2\n").is_err(), "missing end");
        assert!(Program::parse("fuzz-prog v1\nregion 2\nend\n").is_err(), "no buffers");
        assert!(
            Program::parse("fuzz-prog v1\nbuf 4\nregion 2\naccess 0 w b9 c0\nend\n").is_err(),
            "buffer out of range"
        );
        assert!(Program::parse("fuzz-prog v1\nbuf 4\nregion 0\nend\n").is_err(), "zero team");
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let mut text = String::from("# seed 7\n\n");
        text.push_str(&sample().to_text());
        assert_eq!(Program::parse(&text).unwrap(), sample());
    }

    #[test]
    fn index_eval_wraps_modulo_len() {
        assert_eq!(IndexExpr::Const(11).eval(0, 0, 8), 3);
        assert_eq!(IndexExpr::Tid { stride: 2, off: 1 }.eval(3, 0, 4), 3);
        assert_eq!(IndexExpr::Var { stride: 1, off: 0 }.eval(0, 9, 8), 1);
    }

    #[test]
    fn helpers_see_every_access() {
        let p = sample();
        assert_eq!(p.max_id(), Some(4));
        assert_eq!(p.locks(), vec![0]);
        assert_eq!(p.all_accesses().len(), 5);
    }

    #[test]
    fn rust_rendering_mentions_every_statement() {
        let rust = sample().to_rust();
        for id in 0..5 {
            assert!(rust.contains(&format!("// s{id}")), "statement {id} missing:\n{rust}");
        }
        assert!(rust.contains("ctx.parallel(2"));
        assert!(rust.contains("w.critical(\"L0\""));
    }
}
