//! Session fault injection: re-analyze deliberately corrupted copies of a
//! collected session and assert graceful degradation.
//!
//! The contract (ISSUE §fault-injection): a truncated, bit-flipped or
//! reordered session file may produce a **clean error** or a **partial
//! report**, but never a wrong verdict (a statement pair outside the
//! oracle's set, or a PC that resolves outside the generated program) and
//! never a panic.
//!
//! Fault catalogue — all deterministic, no RNG:
//!
//! - `truncate-log`: byte-truncate the largest thread log to half.
//! - `truncate-meta`: keep only the first half of the largest thread
//!   meta's lines.
//! - `truncate-regions`: keep only the first half of the region table.
//! - `reverse-meta`: reverse the largest thread meta's lines. Metadata
//!   records carry absolute byte ranges, so grouping is order-insensitive
//!   and this fault must yield **exactly** the pristine verdicts.
//! - `flip-header-N`: XOR one byte of the first frame header of the
//!   largest log (magic / raw_len / payload_len low byte — never the high
//!   payload-length bytes, which would merely force a huge bounded
//!   allocation instead of exercising a validation path).

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::Path;

use sword_offline::{analyze, AnalysisConfig, LiveAnalyzer};
use sword_trace::{ReadMode, SessionDir};

use crate::driver::{catch, stmt_pairs, CheckReport, PipelineError, StmtPair};
use crate::oracle::Oracle;

/// How a fault's verdicts must relate to the pristine run's.
enum Expect {
    /// Partial report: pairs must be a subset of the oracle's.
    SubsetOfOracle,
    /// Content-preserving permutation: pairs must equal the pristine
    /// batch verdicts exactly.
    EqualToPristine,
}

/// Applies a corruption to a session copy rooted at the given path.
type ApplyFn = Box<dyn Fn(&SessionDir) -> io::Result<()>>;

struct Fault {
    name: String,
    expect: Expect,
    apply: ApplyFn,
}

/// Runs the whole fault catalogue against `pristine`, appending any
/// contract violation to `report.failures`.
pub fn inject(
    oracle: &Oracle,
    pristine: &SessionDir,
    pristine_batch: &BTreeSet<StmtPair>,
    report: &mut CheckReport,
) {
    let faults = match catalogue(pristine) {
        Ok(f) => f,
        Err(e) => {
            report.failures.push(format!("fault setup: could not inspect session: {e}"));
            return;
        }
    };
    for fault in faults {
        if let Err(e) = run_fault(oracle, pristine, pristine_batch, &fault, report) {
            report.failures.push(format!("fault {}: harness i/o error: {e}", fault.name));
        }
    }
}

fn run_fault(
    oracle: &Oracle,
    pristine: &SessionDir,
    pristine_batch: &BTreeSet<StmtPair>,
    fault: &Fault,
    report: &mut CheckReport,
) -> io::Result<()> {
    let copy_root = crate::driver::unique_dir("fault");
    copy_session(pristine.path(), &copy_root)?;
    let copy = SessionDir::new(&copy_root);
    (fault.apply)(&copy)?;

    // The two log readers must degrade identically on the same corrupted
    // bytes: same verdicts, or a clean error from each.
    let mapped = catch(|| batch_pairs(&copy, ReadMode::Mapped));
    let buffered = catch(|| batch_pairs(&copy, ReadMode::Buffered));
    let shape = |o: &Result<Result<BTreeSet<StmtPair>, PipelineError>, String>| match o {
        Ok(Ok(pairs)) => format!("verdicts {pairs:?}"),
        Ok(Err(_)) => "clean error".to_string(),
        Err(_) => "panic".to_string(),
    };
    if shape(&mapped) != shape(&buffered) {
        report.failures.push(format!(
            "fault {}: mapped and buffered readers diverge: {} vs {}",
            fault.name,
            shape(&mapped),
            shape(&buffered)
        ));
    }

    for (stage, outcome) in [
        ("batch-mapped", mapped),
        ("batch-buffered", buffered),
        ("live", catch(|| live_pairs(&copy))),
    ] {
        match outcome {
            Err(panic_msg) => report
                .failures
                .push(format!("fault {}: {stage} analyzer panicked: {panic_msg}", fault.name)),
            Ok(Err(PipelineError::Io(_))) => {} // clean refusal — graceful
            Ok(Err(PipelineError::BadPc(m))) => report.failures.push(format!(
                "fault {}: {stage} verdict resolved outside the program: {m}",
                fault.name
            )),
            Ok(Ok(pairs)) => {
                let bad = match fault.expect {
                    Expect::SubsetOfOracle => !pairs.is_subset(&oracle.pairs),
                    Expect::EqualToPristine => &pairs != pristine_batch,
                };
                if bad {
                    report.failures.push(format!(
                        "fault {}: {stage} produced wrong verdicts {:?} (oracle {:?}, pristine {:?})",
                        fault.name, pairs, oracle.pairs, pristine_batch
                    ));
                }
            }
        }
    }
    fs::remove_dir_all(&copy_root)
}

fn batch_pairs(session: &SessionDir, mode: ReadMode) -> Result<BTreeSet<StmtPair>, PipelineError> {
    let result = analyze(session, &AnalysisConfig::sequential().with_read_mode(mode))?;
    stmt_pairs(session, result.races.iter().map(|r| (r.key.pc_lo, r.key.pc_hi)))
}

fn live_pairs(session: &SessionDir) -> Result<BTreeSet<StmtPair>, PipelineError> {
    let cfg = AnalysisConfig::sequential();
    let mut live = LiveAnalyzer::new(session, &cfg);
    let mut polls = 0u32;
    loop {
        let delta = live.poll()?;
        if delta.finished {
            break;
        }
        polls += 1;
        if polls > 64 {
            // The session is closed; a live analyzer that never converges
            // on it is refusing, not looping — treat as a clean error.
            return Err(PipelineError::Io(io::Error::other("live analyzer never finished")));
        }
    }
    let result = live.into_result()?;
    stmt_pairs(session, result.races.iter().map(|r| (r.key.pc_lo, r.key.pc_hi)))
}

/// Builds the fault list for this session. Targets are the *largest* log
/// and meta files (ties broken by smaller tid) so the corruption lands on
/// real content.
fn catalogue(session: &SessionDir) -> io::Result<Vec<Fault>> {
    let mut faults = Vec::new();
    let Some(log_tid) = largest(session, |s, t| s.thread_log(t))? else {
        return Ok(faults);
    };
    let meta_tid = largest(session, |s, t| s.thread_meta(t))?.unwrap_or(log_tid);

    faults.push(Fault {
        name: "truncate-log".into(),
        expect: Expect::SubsetOfOracle,
        apply: Box::new(move |s| truncate_file(&s.thread_log(log_tid))),
    });
    faults.push(Fault {
        name: "truncate-meta".into(),
        expect: Expect::SubsetOfOracle,
        apply: Box::new(move |s| keep_first_half_lines(&s.thread_meta(meta_tid))),
    });
    faults.push(Fault {
        name: "truncate-regions".into(),
        expect: Expect::SubsetOfOracle,
        apply: Box::new(|s| keep_first_half_lines(&s.regions_path())),
    });
    faults.push(Fault {
        name: "reverse-meta".into(),
        expect: Expect::EqualToPristine,
        apply: Box::new(move |s| reverse_lines(&s.thread_meta(meta_tid))),
    });
    // Frame-header bit flips: magic, raw_len, payload_len low byte.
    for (byte, mask) in [(0usize, 0xFFu8), (5, 0xFF), (8, 0x55)] {
        faults.push(Fault {
            name: format!("flip-header-{byte}"),
            expect: Expect::SubsetOfOracle,
            apply: Box::new(move |s| flip_byte(&s.thread_log(log_tid), byte, mask)),
        });
    }
    Ok(faults)
}

/// The tid whose file (per `path_of`) is largest; `None` if the session
/// has no threads or only empty files.
fn largest(
    session: &SessionDir,
    path_of: impl Fn(&SessionDir, u32) -> std::path::PathBuf,
) -> io::Result<Option<u32>> {
    let mut best: Option<(u64, u32)> = None;
    for tid in session.thread_ids()? {
        let len = fs::metadata(path_of(session, tid)).map(|m| m.len()).unwrap_or(0);
        if len > 0 && best.is_none_or(|(blen, btid)| len > blen || (len == blen && tid < btid)) {
            best = Some((len, tid));
        }
    }
    Ok(best.map(|(_, tid)| tid))
}

fn copy_session(from: &Path, to: &Path) -> io::Result<()> {
    fs::create_dir_all(to)?;
    for entry in fs::read_dir(from)? {
        let entry = entry?;
        if entry.file_type()?.is_file() {
            fs::copy(entry.path(), to.join(entry.file_name()))?;
        }
    }
    Ok(())
}

fn truncate_file(path: &Path) -> io::Result<()> {
    let len = fs::metadata(path)?.len();
    let f = fs::OpenOptions::new().write(true).open(path)?;
    f.set_len(len / 2)
}

fn keep_first_half_lines(path: &Path) -> io::Result<()> {
    let text = fs::read_to_string(path)?;
    let lines: Vec<&str> = text.lines().collect();
    let keep = &lines[..lines.len() / 2];
    let mut out = keep.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    fs::write(path, out)
}

fn reverse_lines(path: &Path) -> io::Result<()> {
    let text = fs::read_to_string(path)?;
    let mut lines: Vec<&str> = text.lines().collect();
    lines.reverse();
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    fs::write(path, out)
}

fn flip_byte(path: &Path, byte: usize, mask: u8) -> io::Result<()> {
    let mut data = fs::read(path)?;
    if let Some(b) = data.get_mut(byte) {
        *b ^= mask;
    }
    fs::write(path, data)
}

#[cfg(test)]
mod tests {
    use crate::driver::check_program;
    use crate::gen::{generate, GenConfig};
    use crate::program::{Access, IndexExpr, Program, Region, Stmt};
    use sword_trace::AccessKind;

    #[test]
    fn fault_injection_is_clean_on_a_racy_program() {
        let p = Program {
            buffers: vec![2],
            regions: vec![Region {
                threads: 4,
                body: vec![
                    Stmt::Access(Access {
                        id: 0,
                        buf: 0,
                        kind: AccessKind::Write,
                        index: IndexExpr::Const(0),
                    }),
                    Stmt::Barrier,
                    Stmt::Access(Access {
                        id: 1,
                        buf: 0,
                        kind: AccessKind::Write,
                        index: IndexExpr::Const(1),
                    }),
                ],
            }],
        };
        let r = check_program(&p, true);
        assert!(r.ok(), "failures: {:?}", r.failures);
        assert!(!r.verdicts.oracle.is_empty());
    }

    #[test]
    fn fault_injection_is_clean_on_generated_programs() {
        for seed in [2u64, 11, 29] {
            let p = generate(seed, &GenConfig::with_team(2));
            let r = check_program(&p, true);
            assert!(r.ok(), "seed {seed} failures: {:?}", r.failures);
        }
    }

    #[test]
    fn fault_injection_is_clean_on_a_tasking_session() {
        use crate::program::{DepKind, Sched, TaskBlock, TaskDep};
        // A session whose logs and metadata carry task-fork records, dep
        // edges, and dynamic/ordered loop regions — corruption must land
        // on those record kinds too. The sibling tasks race (same
        // element, concurrent task labels), so `SubsetOfOracle` faults
        // have a non-trivial verdict to shrink from; the dep chain and
        // the ordered loop contribute race-free task/loop records that a
        // truncation may cut mid-record without inventing races.
        let w = |id, elem| Access {
            id,
            buf: 0,
            kind: AccessKind::Write,
            index: IndexExpr::Const(elem),
        };
        let p = Program {
            buffers: vec![4],
            regions: vec![Region {
                threads: 2,
                body: vec![
                    Stmt::Task(TaskBlock { deps: vec![], body: vec![w(0, 0)] }),
                    Stmt::Task(TaskBlock { deps: vec![], body: vec![w(1, 0)] }),
                    Stmt::Taskwait,
                    Stmt::Task(TaskBlock {
                        deps: vec![TaskDep { var: 0, kind: DepKind::Out }],
                        body: vec![w(2, 1)],
                    }),
                    Stmt::Task(TaskBlock {
                        deps: vec![TaskDep { var: 0, kind: DepKind::InOut }],
                        body: vec![w(3, 1)],
                    }),
                    Stmt::Taskgroup {
                        tasks: vec![TaskBlock { deps: vec![], body: vec![w(4, 2)] }],
                    },
                    Stmt::Barrier,
                    Stmt::For {
                        n: 4,
                        nowait: false,
                        sched: Sched::Dynamic { chunk: 1 },
                        ordered: true,
                        body: vec![w(5, 3)],
                    },
                ],
            }],
        };
        let r = check_program(&p, true);
        assert!(r.ok(), "failures: {:?}", r.failures);
        // Depend clauses and taskgroup scope are per-creator, so with two
        // creators every task statement races its cross-creator twin; the
        // dep chain and taskgroup silence only the same-creator pairs.
        // The ordered loop and the barrier-separated accesses stay
        // race-free.
        assert_eq!(
            r.verdicts.oracle,
            std::collections::BTreeSet::from([
                (0, 0),
                (0, 1),
                (1, 1),
                (2, 2),
                (2, 3),
                (3, 3),
                (4, 4)
            ]),
        );
    }
}
