//! The ground-truth oracle: computes, from the program AST alone, the
//! exact racy statement-pair set the detectors are checked against, plus
//! the schedule plan the interpreter replays.
//!
//! ## Independence
//!
//! The oracle never touches collector, log, or analyzer code. It walks the
//! AST structurally, maintaining per-virtual-thread offset-span labels via
//! `sword_osl` exactly as the runtime/collector pair does (fork at region
//! entry; barrier bumps for access intervals; join bumps only for nested
//! fork labels — see the internal `Member` state), evaluates every index expression to a
//! concrete element, and then applies the textbook race definition to the flat
//! access set: two accesses race iff they hit the same element, at least
//! one writes, they are not both atomic, they hold no common lock, their
//! labels compare concurrent — and they run on *different pooled thread
//! ids* (see below). Everything is computed from first principles over
//! `Vec`/`BTreeSet`; the only shared code is the `Label` arithmetic
//! itself, which is the property under test.
//!
//! ## Schedule pinning and thread-id reuse
//!
//! The plan assigns every dynamic access a global ticket (statement-major:
//! per statement, per team slot, per iteration), and every region fork a
//! fork/join ticket pair so whole nested-region lifecycles — including
//! pooled thread-id acquire/release — are serialized. That makes runtime
//! tid assignment a deterministic function of the AST, which the oracle
//! replays with its own tid-pool simulation. The payoff: sibling nested
//! teams deterministically *reuse* pooled tids, and accesses sharing a tid
//! are invisible as races to any per-thread-log detector (SWORD pairs
//! distinct logs; ARCHER's clocks collapse same-tid accesses). The oracle
//! therefore reports the racy pairs of the *pinned schedule* — the exact
//! set a sound-and-complete detector observes in this run.

use std::collections::{BTreeSet, HashMap};

use sword_osl::{Label, Ordering as OslOrdering, TASK_SPAN};
use sword_trace::AccessKind;

use crate::program::{Access, Program, Region, Sched, Stmt, TaskBlock, TaskDep};

/// Base of the synthetic lock-id namespace the oracle assigns to
/// `ordered` clauses (one fresh lock per ordered loop, far above any
/// `critical` lock id the generator emits). Mirrors the runtime, where
/// `Ctx::ordered` runs each iteration under the loop's dedicated mutex:
/// every within-loop pair shares that lock, so the lockset rule — not
/// label comparison — is what makes ordered loops race-free.
const ORDERED_LOCK_BASE: u32 = 1 << 16;

/// One planned dynamic access of one virtual thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlannedAccess {
    /// Global schedule ticket.
    pub ticket: u64,
    /// Statement id.
    pub stmt: u32,
    /// Target buffer.
    pub buf: u8,
    /// Concrete element index.
    pub elem: u64,
    /// Access flavour.
    pub kind: AccessKind,
}

/// One op in a virtual thread's program-order op list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThreadOp {
    /// Perform the access at its ticket.
    Access(PlannedAccess),
    /// Fork a region whose members are vids `base_vid..base_vid + span`.
    /// The forker waits for `fork_ticket` before forking (the new team's
    /// slot 0 advances it once spawned) and claims `join_ticket` after
    /// the join, serializing sibling fork/join lifecycles.
    Fork {
        /// First member vid.
        base_vid: usize,
        /// Ticket gating the fork (and its tid acquisition).
        fork_ticket: u64,
        /// Ticket claimed after the join (and its tid release).
        join_ticket: u64,
    },
    /// Create an explicit task. The creator waits for `create_ticket`
    /// before entering `task_depend` (serializing the fresh task-tid
    /// allocation) and releases the turn at task-body entry; the task's
    /// body accesses follow as ordinary [`ThreadOp::Access`] ops on the
    /// same vid, because `ompsim` runs task bodies inline (undeferred)
    /// on the creating thread.
    TaskCreate {
        /// Ticket gating task creation.
        create_ticket: u64,
    },
}

/// The full execution plan: per-vid op lists in program order. Vid 0 is
/// the master context; member vids are assigned contiguously at each fork
/// in slot order.
#[derive(Clone, Debug, Default)]
pub struct Plan {
    /// Op list per virtual thread.
    pub per_vid: Vec<Vec<ThreadOp>>,
    /// One past the last ticket; the sequencer must land here.
    pub total_tickets: u64,
}

/// Oracle output for one program.
#[derive(Clone, Debug)]
pub struct Oracle {
    /// The schedule plan for the interpreter.
    pub plan: Plan,
    /// Ground-truth racy statement pairs, unordered (`lo ≤ hi`;
    /// `lo == hi` means two dynamic instances of the same statement).
    pub pairs: BTreeSet<(u32, u32)>,
    /// Total dynamic access instances.
    pub instances: usize,
    /// Pooled thread ids the team threads use (master's excluded),
    /// ascending — the predicted set of per-thread session logs.
    pub tids: Vec<u32>,
}

/// One dynamic access instance with everything the race rule needs.
struct Instance {
    stmt: u32,
    tid: u32,
    buf: u8,
    elem: u64,
    kind: AccessKind,
    lock: Option<u32>,
    label: Label,
    /// Global task id when the access runs inside an explicit task.
    task: Option<usize>,
}

/// Mirror of `OmpSim`'s pooled thread-id allocator (sorted free list,
/// monotone fresh counter). Valid because the plan's fork/join tickets
/// serialize every acquire/release.
#[derive(Default)]
struct TidPool {
    free: Vec<u32>,
    next: u32,
    used: BTreeSet<u32>,
}

impl TidPool {
    fn acquire(&mut self, n: u64) -> Vec<u32> {
        self.free.sort_unstable();
        let take = (n as usize).min(self.free.len());
        let mut ids: Vec<u32> = self.free.drain(..take).collect();
        while ids.len() < n as usize {
            ids.push(self.next);
            self.next += 1;
        }
        self.used.extend(ids.iter().copied());
        ids
    }

    fn release(&mut self, ids: &[u32]) {
        self.free.extend_from_slice(ids);
    }

    /// A fresh, never-pooled tid — task tids come straight off the
    /// monotone counter in `OmpSim` and are never recycled, so each task
    /// owns its per-thread log forever.
    fn fresh(&mut self) -> u32 {
        let t = self.next;
        self.next += 1;
        self.used.insert(t);
        t
    }
}

/// One live team member during the walk.
///
/// `label` mirrors both the runtime `Ctx` label and the interval label
/// SWORD reconstructs from the member's meta rows
/// (`fork_label · [slot + bid·span, span]`): it bumps only at barriers.
/// Joins are tracked by `forks` instead — the member's `k`-th nested fork
/// gets fork label `label.fork_point(k)`, whose span-1 pair orders the
/// member's sequential teams without making a join look like a barrier to
/// sibling members (the unsoundness an earlier fuzz campaign exposed).
struct Member {
    vid: usize,
    slot: u64,
    tid: u32,
    /// Interval base label: bumps only at barriers.
    label: Label,
    /// Current chain label — where accesses, task forks, and nested
    /// forks happen. Diverges from `label` while tasks are outstanding
    /// (each creation moves it to the continuation label) and snaps back
    /// at task-sync points, exactly like the runtime `Ctx` label.
    cur: Label,
    /// Fork-sequence counter, shared by nested-region forks *and* task
    /// creations (one `fork_seq` in the runtime).
    forks: u64,
    /// Tasks created and not yet synced, with their `depend` clauses.
    outstanding: Vec<OutstandingTask>,
}

/// One unsynced task on a member's outstanding list.
struct OutstandingTask {
    /// Global task id (index into `Walker::task_preds`).
    id: usize,
    /// Its `depend` clauses, matched against later siblings.
    deps: Vec<TaskDep>,
}

struct Walker<'p> {
    buffers: &'p [u64],
    per_vid: Vec<Vec<ThreadOp>>,
    instances: Vec<Instance>,
    next_ticket: u64,
    pool: TidPool,
    /// Dependence predecessors per task (global task ids).
    task_preds: Vec<Vec<usize>>,
    /// Fresh synthetic lock ids for `ordered` clauses.
    ordered_locks: u32,
}

/// Runs the oracle on `prog`.
pub fn analyze(prog: &Program) -> Oracle {
    let mut w = Walker {
        buffers: &prog.buffers,
        per_vid: vec![Vec::new()],
        instances: Vec::new(),
        next_ticket: 0,
        pool: TidPool::default(),
        task_preds: Vec::new(),
        ordered_locks: 0,
    };
    let master_tid = w.pool.acquire(1)[0];
    let master_label = Label::root();
    for (k, region) in prog.regions.iter().enumerate() {
        w.fork_region(0, &master_label.fork_point(k as u64), region);
    }
    w.pool.release(&[master_tid]);

    let pairs = racy_pairs(&w.instances, &w.task_preds);
    let tids = w.pool.used.iter().copied().filter(|&t| t != master_tid).collect();
    Oracle {
        instances: w.instances.len(),
        pairs,
        tids,
        plan: Plan { per_vid: w.per_vid, total_tickets: w.next_ticket },
    }
}

impl Walker<'_> {
    fn take_ticket(&mut self) -> u64 {
        let t = self.next_ticket;
        self.next_ticket += 1;
        t
    }

    fn fork_region(&mut self, parent_vid: usize, fork_label: &Label, region: &Region) {
        let fork_ticket = self.take_ticket();
        let tids = self.pool.acquire(region.threads);
        let base_vid = self.per_vid.len();
        let mut members: Vec<Member> = (0..region.threads)
            .map(|i| {
                self.per_vid.push(Vec::new());
                let label = fork_label.fork(i, region.threads);
                Member {
                    vid: base_vid + i as usize,
                    slot: i,
                    tid: tids[i as usize],
                    cur: label.clone(),
                    label,
                    forks: 0,
                    outstanding: Vec::new(),
                }
            })
            .collect();
        for stmt in &region.body {
            self.stmt(stmt, region.threads, &mut members);
        }
        let join_ticket = self.take_ticket();
        self.pool.release(&tids);
        self.per_vid[parent_vid].push(ThreadOp::Fork { base_vid, fork_ticket, join_ticket });
    }

    fn stmt(&mut self, stmt: &Stmt, span: u64, members: &mut [Member]) {
        match stmt {
            Stmt::Access(a) => {
                for m in members.iter() {
                    self.record(m, a, 0, None);
                }
            }
            Stmt::Barrier => barrier(members),
            Stmt::For { n, nowait, sched, ordered, body } => {
                let parts = schedule_parts(*sched, *n, span);
                if *ordered {
                    // One fresh synthetic lock per ordered loop; tickets
                    // iteration-major (the parts ascend by start, so part
                    // order *is* global iteration order), matching the
                    // ordered protocol's turn-taking.
                    let lock = ORDERED_LOCK_BASE + self.ordered_locks;
                    self.ordered_locks += 1;
                    for (slot, range) in &parts {
                        for v in range.clone() {
                            for a in body {
                                self.record(&members[*slot as usize], a, v, Some(lock));
                            }
                        }
                    }
                } else {
                    // Slot-major: each member runs its own chunks in
                    // ascending order, concurrently with other slots.
                    for m in members.iter() {
                        for (slot, range) in &parts {
                            if *slot != m.slot {
                                continue;
                            }
                            for v in range.clone() {
                                for a in body {
                                    self.record(m, a, v, None);
                                }
                            }
                        }
                    }
                }
                if !*nowait {
                    barrier(members);
                }
            }
            Stmt::Sections { count, body } => {
                for m in members.iter() {
                    let mut s = m.slot;
                    while s < *count {
                        for a in body {
                            self.record(m, a, s, None);
                        }
                        s += span;
                    }
                }
                barrier(members);
            }
            Stmt::Master { body } => {
                for a in body {
                    self.record(&members[0], a, 0, None);
                }
            }
            Stmt::Single { nowait, body } => {
                for a in body {
                    self.record(&members[0], a, 0, None);
                }
                if !*nowait {
                    barrier(members);
                }
            }
            Stmt::Critical { lock, body } => {
                for m in members.iter() {
                    for a in body {
                        self.record(m, a, 0, Some(*lock));
                    }
                }
            }
            Stmt::Task(tb) => {
                for m in members.iter_mut() {
                    self.create_task(m, tb);
                }
            }
            Stmt::Taskwait => {
                for m in members.iter_mut() {
                    sync_tasks(m);
                }
            }
            Stmt::Taskgroup { tasks } => {
                for m in members.iter_mut() {
                    // The group awaits only the tasks it created: older
                    // siblings stay outstanding, and the chain label
                    // rewinds to the group entry point — exactly the
                    // runtime's GroupFrame restore.
                    let entry_cur = m.cur.clone();
                    let mark = m.outstanding.len();
                    for tb in tasks {
                        self.create_task(m, tb);
                    }
                    if m.outstanding.len() > mark {
                        m.outstanding.truncate(mark);
                        m.cur = entry_cur;
                    }
                }
            }
            Stmt::Nested(r) => {
                for m in members.iter_mut() {
                    // The runtime forks from the *current* (continuation)
                    // label, sharing one fork-sequence counter with task
                    // creation.
                    let fl = m.cur.fork_point(m.forks);
                    self.fork_region(m.vid, &fl, r);
                    // The join advances the fork sequence only; the
                    // member's own label is untouched (a join is not a
                    // barrier — it orders nothing for siblings).
                    m.forks += 1;
                }
            }
        }
    }

    /// Mirrors `Ctx::task_depend`: chain the creator's label through a
    /// task fork point, give the task a fresh never-pooled tid, and wire
    /// dependence edges to every outstanding sibling with a conflicting
    /// clause on a shared variable. The body runs inline on the creator,
    /// so its ops land on the creator's vid right after the create op.
    fn create_task(&mut self, m: &mut Member, tb: &TaskBlock) {
        let e = m.forks;
        m.forks += 1;
        let fork_label = m.cur.task_fork(e);
        let task_label = fork_label.fork(1, TASK_SPAN);
        m.cur = fork_label.fork(0, TASK_SPAN);
        let tid = self.pool.fresh();
        let id = self.task_preds.len();
        let preds: Vec<usize> = m
            .outstanding
            .iter()
            .filter(|t| {
                t.deps
                    .iter()
                    .any(|d| tb.deps.iter().any(|d2| d.var == d2.var && d.kind.conflicts(d2.kind)))
            })
            .map(|t| t.id)
            .collect();
        self.task_preds.push(preds);
        m.outstanding.push(OutstandingTask { id, deps: tb.deps.clone() });
        let create_ticket = self.take_ticket();
        self.per_vid[m.vid].push(ThreadOp::TaskCreate { create_ticket });
        for a in &tb.body {
            let len = self.buffers[a.buf as usize];
            // Task contexts report team index 1 (their private span is
            // TASK_SPAN wide), so Tid expressions evaluate with 1.
            let elem = a.index.eval(1, 0, len);
            let ticket = self.take_ticket();
            self.per_vid[m.vid].push(ThreadOp::Access(PlannedAccess {
                ticket,
                stmt: a.id,
                buf: a.buf,
                elem,
                kind: a.kind,
            }));
            self.instances.push(Instance {
                stmt: a.id,
                tid,
                buf: a.buf,
                elem,
                kind: a.kind,
                lock: None,
                label: task_label.clone(),
                task: Some(id),
            });
        }
    }

    fn record(&mut self, m: &Member, a: &Access, var: u64, lock: Option<u32>) {
        let len = self.buffers[a.buf as usize];
        let elem = a.index.eval(m.slot, var, len);
        let ticket = self.take_ticket();
        self.per_vid[m.vid].push(ThreadOp::Access(PlannedAccess {
            ticket,
            stmt: a.id,
            buf: a.buf,
            elem,
            kind: a.kind,
        }));
        self.instances.push(Instance {
            stmt: a.id,
            tid: m.tid,
            buf: a.buf,
            elem,
            kind: a.kind,
            lock,
            label: m.cur.clone(),
            task: None,
        });
    }
}

/// Task-sync point (taskwait, or the implicit sync at barriers): forget
/// the outstanding tasks and snap the chain label back to the interval
/// base.
fn sync_tasks(m: &mut Member) {
    if !m.outstanding.is_empty() {
        m.outstanding.clear();
        m.cur = m.label.clone();
    }
}

/// Team barrier: implicit task sync, then a generation bump on the base.
fn barrier(members: &mut [Member]) {
    for m in members {
        sync_tasks(m);
        m.label.bump_in_place();
        m.cur = m.label.clone();
    }
}

/// slot → iteration-range partition of `0..n`, mirroring the runtime's
/// `for_static` chunking and the *pinned* dynamic/guided assignments
/// (chunk `g` lands on slot `g % span`). Reimplemented from first
/// principles — the interpreter's per-element assertions catch any drift
/// from the runtime's partition. Parts ascend by range start.
fn schedule_parts(sched: Sched, n: u64, span: u64) -> Vec<(u64, std::ops::Range<u64>)> {
    let mut parts = Vec::new();
    match sched {
        Sched::Static => {
            let chunk = n.div_ceil(span);
            for slot in 0..span {
                let lo = (slot * chunk).min(n);
                let hi = ((slot + 1) * chunk).min(n);
                if lo < hi {
                    parts.push((slot, lo..hi));
                }
            }
        }
        Sched::Dynamic { chunk } => {
            let (mut pos, mut g) = (0, 0u64);
            while pos < n {
                let hi = (pos + chunk.max(1)).min(n);
                parts.push((g % span, pos..hi));
                pos = hi;
                g += 1;
            }
        }
        Sched::Guided { min } => {
            let (mut pos, mut g) = (0, 0u64);
            while pos < n {
                let remaining = n - pos;
                let size = (remaining / span).max(min.max(1)).min(remaining);
                parts.push((g % span, pos..pos + size));
                pos += size;
                g += 1;
            }
        }
    }
    parts
}

/// The race rule over the flat instance set. Accesses are all 8-byte
/// aligned `u64` elements, so "overlapping addresses" degenerates to
/// "same (buffer, element)" and instances are bucketed accordingly.
fn racy_pairs(instances: &[Instance], task_preds: &[Vec<usize>]) -> BTreeSet<(u32, u32)> {
    let mut buckets: HashMap<(u8, u64), Vec<usize>> = HashMap::new();
    for (i, inst) in instances.iter().enumerate() {
        buckets.entry((inst.buf, inst.elem)).or_default().push(i);
    }
    let mut pairs = BTreeSet::new();
    for idxs in buckets.values() {
        for (k, &i) in idxs.iter().enumerate() {
            for &j in &idxs[k + 1..] {
                let (a, b) = (&instances[i], &instances[j]);
                // Same pooled tid ⇒ same log ⇒ sequential to every
                // per-thread detector (covers same-vid trivially).
                if a.tid == b.tid {
                    continue;
                }
                if !(a.kind.is_write() || b.kind.is_write()) {
                    continue;
                }
                if a.kind.is_atomic() && b.kind.is_atomic() {
                    continue;
                }
                if a.lock.is_some() && a.lock == b.lock {
                    continue;
                }
                // `depend` clauses order sibling tasks even though their
                // labels compare concurrent — same rule the analyzer
                // applies from the logged dependence edges.
                if let (Some(x), Some(y)) = (a.task, b.task) {
                    if dep_reachable(task_preds, x, y) || dep_reachable(task_preds, y, x) {
                        continue;
                    }
                }
                if a.label.compare_barrier_aware(&b.label) == OslOrdering::Concurrent {
                    pairs.insert((a.stmt.min(b.stmt), a.stmt.max(b.stmt)));
                }
            }
        }
    }
    pairs
}

/// Is task `from` ordered before-or-equal task `to` through the
/// dependence DAG? Edges point from a task to its predecessors, so we
/// search backwards from `to`.
fn dep_reachable(preds: &[Vec<usize>], from: usize, to: usize) -> bool {
    if from == to {
        return true;
    }
    let mut stack = vec![to];
    let mut seen = vec![false; preds.len()];
    while let Some(t) = stack.pop() {
        if t == from {
            return true;
        }
        if std::mem::replace(&mut seen[t], true) {
            continue;
        }
        stack.extend(preds[t].iter().copied());
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::IndexExpr;

    fn prog(threads: u64, body: Vec<Stmt>) -> Program {
        Program { buffers: vec![8], regions: vec![Region { threads, body }] }
    }

    fn acc(id: u32, kind: AccessKind, index: IndexExpr) -> Access {
        Access { id, buf: 0, kind, index }
    }

    fn pairs_of(p: &Program) -> Vec<(u32, u32)> {
        analyze(p).pairs.into_iter().collect()
    }

    #[test]
    fn shared_constant_write_races() {
        let p = prog(2, vec![Stmt::Access(acc(0, AccessKind::Write, IndexExpr::Const(0)))]);
        assert_eq!(pairs_of(&p), vec![(0, 0)]);
    }

    #[test]
    fn tid_strided_writes_are_race_free() {
        let p = prog(
            4,
            vec![Stmt::Access(acc(0, AccessKind::Write, IndexExpr::Tid { stride: 1, off: 0 }))],
        );
        assert_eq!(pairs_of(&p), vec![]);
    }

    #[test]
    fn barrier_orders_write_against_later_read() {
        let p = prog(
            2,
            vec![
                Stmt::Access(acc(0, AccessKind::Write, IndexExpr::Const(0))),
                Stmt::Barrier,
                Stmt::Access(acc(1, AccessKind::Read, IndexExpr::Const(0))),
            ],
        );
        // The writes race with each other; reads don't race with anything.
        assert_eq!(pairs_of(&p), vec![(0, 0)]);
    }

    #[test]
    fn same_lock_protects_different_locks_do_not() {
        let w = |id, lock| Stmt::Critical {
            lock,
            body: vec![acc(id, AccessKind::Write, IndexExpr::Const(0))],
        };
        assert_eq!(pairs_of(&prog(2, vec![w(0, 0)])), vec![]);
        assert_eq!(pairs_of(&prog(2, vec![w(0, 0), w(1, 1)])), vec![(0, 1)]);
    }

    #[test]
    fn atomic_pairs_are_silent_mixed_pairs_race() {
        let aw = Stmt::Access(acc(0, AccessKind::AtomicWrite, IndexExpr::Const(0)));
        assert_eq!(pairs_of(&prog(2, vec![aw.clone()])), vec![]);
        let w = Stmt::Access(acc(1, AccessKind::Write, IndexExpr::Const(0)));
        assert_eq!(pairs_of(&prog(2, vec![aw, w])), vec![(0, 1), (1, 1)]);
    }

    #[test]
    fn single_nowait_races_single_does_not() {
        let body = |id| vec![acc(id, AccessKind::Write, IndexExpr::Const(0))];
        let read = Stmt::Access(acc(1, AccessKind::Read, IndexExpr::Const(0)));
        let with_barrier =
            prog(2, vec![Stmt::Single { nowait: false, body: body(0) }, read.clone()]);
        assert_eq!(pairs_of(&with_barrier), vec![]);
        let nowait = prog(2, vec![Stmt::Single { nowait: true, body: body(0) }, read]);
        // Slot 0's own read shares its tid; only the other slot's pairs.
        assert_eq!(pairs_of(&nowait), vec![(0, 1)]);
    }

    #[test]
    fn static_chunks_partition_iterations() {
        // 8 iterations over 4 threads, elem = iteration: disjoint chunks.
        let p = prog(
            4,
            vec![Stmt::For {
                n: 8,
                nowait: false,
                sched: Sched::Static,
                ordered: false,
                body: vec![acc(0, AccessKind::Write, IndexExpr::Var { stride: 1, off: 0 })],
            }],
        );
        assert_eq!(pairs_of(&p), vec![]);
    }

    #[test]
    fn pinned_schedules_partition_iterations_and_interleave_slots() {
        // Disjoint elements stay race-free under every schedule…
        for sched in
            [Sched::Dynamic { chunk: 1 }, Sched::Dynamic { chunk: 3 }, Sched::Guided { min: 2 }]
        {
            let p = prog(
                3,
                vec![Stmt::For {
                    n: 8,
                    nowait: false,
                    sched,
                    ordered: false,
                    body: vec![acc(0, AccessKind::Write, IndexExpr::Var { stride: 1, off: 0 })],
                }],
            );
            assert_eq!(pairs_of(&p), vec![], "{sched:?}");
        }
        // …while a shared element races exactly when two slots run.
        let p = prog(
            2,
            vec![Stmt::For {
                n: 4,
                nowait: false,
                sched: Sched::Dynamic { chunk: 1 },
                ordered: false,
                body: vec![acc(0, AccessKind::Write, IndexExpr::Const(0))],
            }],
        );
        assert_eq!(pairs_of(&p), vec![(0, 0)]);
    }

    #[test]
    fn schedule_parts_cover_every_iteration_exactly_once() {
        for sched in [
            Sched::Static,
            Sched::Dynamic { chunk: 1 },
            Sched::Dynamic { chunk: 4 },
            Sched::Guided { min: 1 },
            Sched::Guided { min: 3 },
        ] {
            for n in [0u64, 1, 5, 16, 17] {
                for span in [1u64, 2, 3, 8] {
                    let parts = schedule_parts(sched, n, span);
                    let mut covered = Vec::new();
                    let mut prev_end = 0;
                    for (slot, r) in &parts {
                        assert!(*slot < span);
                        assert!(r.start == prev_end, "parts must ascend contiguously");
                        prev_end = r.end;
                        covered.extend(r.clone());
                    }
                    assert_eq!(covered, (0..n).collect::<Vec<_>>(), "{sched:?} n={n} span={span}");
                }
            }
        }
    }

    #[test]
    fn ordered_clause_silences_loop_races() {
        let body = vec![acc(0, AccessKind::Write, IndexExpr::Const(0))];
        for sched in [Sched::Static, Sched::Dynamic { chunk: 1 }] {
            let p = prog(
                2,
                vec![Stmt::For { n: 4, nowait: false, sched, ordered: true, body: body.clone() }],
            );
            assert_eq!(pairs_of(&p), vec![], "{sched:?}");
        }
        // Two distinct ordered loops use distinct locks: cross-loop pairs
        // are ordered by the implicit barrier instead, so still quiet —
        // but a nowait write before an ordered loop does race into it.
        let p = prog(
            2,
            vec![
                Stmt::Single {
                    nowait: true,
                    body: vec![acc(1, AccessKind::Write, IndexExpr::Const(0))],
                },
                Stmt::For {
                    n: 4,
                    nowait: false,
                    sched: Sched::Static,
                    ordered: true,
                    body: body.clone(),
                },
            ],
        );
        // Slot 0's single shares its tid with slot 0's iterations; the
        // cross-thread pairs (single vs slot 1's iterations) race.
        assert_eq!(pairs_of(&p), vec![(0, 1)]);
    }

    #[test]
    fn sibling_tasks_race_and_taskwait_orders_them() {
        let task = |id| {
            Stmt::Task(TaskBlock {
                deps: vec![],
                body: vec![acc(id, AccessKind::Write, IndexExpr::Const(0))],
            })
        };
        // One creator, two dependence-free sibling tasks: they race with
        // each other (fresh tids, concurrent chain labels).
        let p = prog(1, vec![task(0), task(1)]);
        assert_eq!(pairs_of(&p), vec![(0, 1)]);
        // Taskwait between them orders creation: task 1 chains after the
        // sync point… but the *first* task is still concurrent with the
        // second (the wait only orders task 0 before the continuation).
        let p = prog(1, vec![task(0), Stmt::Taskwait, task(1)]);
        assert_eq!(pairs_of(&p), vec![]);
        // Continuation access after taskwait is ordered; without it races.
        let cont = Stmt::Access(acc(2, AccessKind::Write, IndexExpr::Const(0)));
        let p = prog(1, vec![task(0), Stmt::Taskwait, cont.clone()]);
        assert_eq!(pairs_of(&p), vec![]);
        let p = prog(1, vec![task(0), cont]);
        assert_eq!(pairs_of(&p), vec![(0, 2)]);
    }

    #[test]
    fn depend_clauses_order_conflicting_siblings_only() {
        let task = |id, deps| {
            Stmt::Task(TaskBlock {
                deps,
                body: vec![acc(id, AccessKind::Write, IndexExpr::Const(0))],
            })
        };
        let dep = |var, kind| TaskDep { var, kind };
        use crate::program::DepKind::*;
        // out → inout chain on v0: ordered.
        let p = prog(1, vec![task(0, vec![dep(0, Out)]), task(1, vec![dep(0, InOut)])]);
        assert_eq!(pairs_of(&p), vec![]);
        // Transitively through a third task.
        let p = prog(
            1,
            vec![
                task(0, vec![dep(0, Out)]),
                task(1, vec![dep(0, InOut), dep(1, Out)]),
                task(2, vec![dep(1, In)]),
            ],
        );
        assert_eq!(pairs_of(&p), vec![]);
        // in/in on the same var does not order.
        let p = prog(1, vec![task(0, vec![dep(0, In)]), task(1, vec![dep(0, In)])]);
        assert_eq!(pairs_of(&p), vec![(0, 1)]);
        // Different vars do not order.
        let p = prog(1, vec![task(0, vec![dep(0, Out)]), task(1, vec![dep(1, Out)])]);
        assert_eq!(pairs_of(&p), vec![(0, 1)]);
    }

    #[test]
    fn taskgroup_scopes_its_sync_to_member_created_tasks() {
        let task = |id| TaskBlock {
            deps: vec![],
            body: vec![acc(id, AccessKind::Write, IndexExpr::Const(0))],
        };
        // A task inside a group is awaited at group end: the continuation
        // access after the group is ordered against it.
        let cont = Stmt::Access(acc(2, AccessKind::Write, IndexExpr::Const(0)));
        let p = prog(1, vec![Stmt::Taskgroup { tasks: vec![task(0)] }, cont.clone()]);
        assert_eq!(pairs_of(&p), vec![]);
        // …but an *older sibling* created before the group is not fenced
        // by it: it races both the group's task (the group does not wait
        // for it) and the post-group access.
        let p = prog(1, vec![Stmt::Task(task(1)), Stmt::Taskgroup { tasks: vec![task(0)] }, cont]);
        assert_eq!(pairs_of(&p), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn cross_thread_task_accesses_race() {
        // Every member creates the same task writing a shared element:
        // tasks of different creators always race (fresh tids, disjoint
        // label subtrees under a common generation).
        let p = prog(
            2,
            vec![Stmt::Task(TaskBlock {
                deps: vec![TaskDep { var: 0, kind: crate::program::DepKind::Out }],
                body: vec![acc(0, AccessKind::Write, IndexExpr::Const(0))],
            })],
        );
        assert_eq!(pairs_of(&p), vec![(0, 0)]);
        // Barrier syncs tasks: write-then-read across it is quiet (one
        // creator, so no cross-thread task-vs-task pair muddies it).
        let p = prog(
            1,
            vec![
                Stmt::Task(TaskBlock {
                    deps: vec![],
                    body: vec![acc(0, AccessKind::Write, IndexExpr::Const(3))],
                }),
                Stmt::Barrier,
                Stmt::Access(acc(1, AccessKind::Read, IndexExpr::Const(3))),
            ],
        );
        assert_eq!(pairs_of(&p), vec![]);
    }

    #[test]
    fn sibling_nested_teams_reuse_tids_and_mask_races() {
        // Two outer threads each fork a 1-thread nested team writing
        // b[0]. The teams are label-concurrent, but the serialized
        // fork/join lifecycle reuses the same pooled tid for both, so no
        // detector can see the pair — and the oracle must agree.
        let inner = Region {
            threads: 1,
            body: vec![Stmt::Access(acc(0, AccessKind::Write, IndexExpr::Const(0)))],
        };
        let p = prog(2, vec![Stmt::Nested(inner)]);
        let o = analyze(&p);
        assert_eq!(o.pairs, BTreeSet::new());
        // master=0 held throughout; outer team takes 1,2; both nested
        // teams take 3.
        assert_eq!(o.tids, vec![1, 2, 3]);
    }

    #[test]
    fn nested_teams_race_across_levels_and_with_each_other() {
        // Outer slot 0 writes b[0] (master); every outer slot then forks a
        // 2-thread team writing b[0]. The master write is ordered against
        // slot 0's own team (label prefix) but races slot 1's team; the
        // team members race within and across sibling teams (the sibling
        // teams share the pooled tid *set* {3,4} but pair cross-wise on
        // distinct tids).
        let inner = Region {
            threads: 2,
            body: vec![Stmt::Access(acc(1, AccessKind::Write, IndexExpr::Const(0)))],
        };
        let p = prog(
            2,
            vec![
                Stmt::Master { body: vec![acc(0, AccessKind::Write, IndexExpr::Const(0))] },
                Stmt::Nested(inner),
            ],
        );
        let o = analyze(&p);
        assert_eq!(o.pairs.into_iter().collect::<Vec<_>>(), vec![(0, 1), (1, 1)]);
    }

    #[test]
    fn plan_tickets_are_a_permutation_and_ops_are_ordered() {
        let p = crate::gen::generate(11, &crate::gen::GenConfig::default());
        let o = analyze(&p);
        let mut tickets = Vec::new();
        for ops in &o.plan.per_vid {
            let mut prev = None;
            for op in ops {
                let first = match op {
                    ThreadOp::Access(a) => {
                        tickets.push(a.ticket);
                        a.ticket
                    }
                    ThreadOp::Fork { fork_ticket, join_ticket, base_vid } => {
                        assert!(*base_vid < o.plan.per_vid.len());
                        tickets.push(*fork_ticket);
                        tickets.push(*join_ticket);
                        *fork_ticket
                    }
                    ThreadOp::TaskCreate { create_ticket } => {
                        tickets.push(*create_ticket);
                        *create_ticket
                    }
                };
                assert!(prev.is_none_or(|p| p < first), "per-vid ops out of ticket order");
                prev = Some(first);
            }
        }
        tickets.sort_unstable();
        let expect: Vec<u64> = (0..o.plan.total_tickets).collect();
        assert_eq!(tickets, expect, "tickets must be a permutation of 0..total");
    }

    #[test]
    fn oracle_is_deterministic() {
        let p = crate::gen::generate(5, &crate::gen::GenConfig::default());
        let (a, b) = (analyze(&p), analyze(&p));
        assert_eq!(a.pairs, b.pairs);
        assert_eq!(a.tids, b.tids);
        assert_eq!(a.plan.total_tickets, b.plan.total_tickets);
    }
}
