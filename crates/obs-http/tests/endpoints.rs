//! Endpoint behavior: golden responses for `/metrics`, `/status`,
//! `/healthz`, SSE framing, and snapshot consistency under concurrent
//! registry mutation.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sword_obs::json::{self, Value};
use sword_obs::{Layer, Obs};
use sword_obs_http::{http_get, JsonFn, ServerConfig, TelemetryHandles, TelemetryServer};

const GET_TIMEOUT: Duration = Duration::from_secs(5);

fn start(obs: &Obs, config: ServerConfig, handles: TelemetryHandles) -> (TelemetryServer, String) {
    let _ = obs;
    let server = TelemetryServer::start(config, handles).expect("bind");
    let addr = server.local_addr().to_string();
    (server, addr)
}

#[test]
fn metrics_endpoint_serves_prometheus_with_quantiles() {
    let obs = Obs::new();
    obs.registry.counter("sword_flushes_total", "flushes").add(7);
    obs.registry.gauge("sword_writer_queue_depth", "depth").set(3);
    let h = obs.registry.histogram("sword_solver_call_nanos", "solver latency");
    for v in [100, 200, 400, 100_000] {
        h.record(v);
    }
    let (server, addr) =
        start(&obs, ServerConfig::bind("127.0.0.1:0"), TelemetryHandles::new(obs.clone()));

    let body = http_get(&addr, "/metrics", GET_TIMEOUT).unwrap();
    assert!(body.contains("# TYPE sword_flushes_total counter"), "{body}");
    assert!(body.contains("sword_flushes_total 7"), "{body}");
    assert!(body.contains("sword_writer_queue_depth 3"), "{body}");
    assert!(body.contains("sword_solver_call_nanos_count 4"), "{body}");
    assert!(body.contains("sword_solver_call_nanos{quantile=\"0.5\"}"), "{body}");
    assert!(body.contains("sword_solver_call_nanos{quantile=\"0.95\"}"), "{body}");
    assert!(body.contains("sword_solver_call_nanos{quantile=\"0.99\"}"), "{body}");
    // The exporter meters itself in the same registry it serves.
    let again = http_get(&addr, "/metrics", GET_TIMEOUT).unwrap();
    assert!(again.contains("sword_exporter_requests_total"), "{again}");
    server.shutdown();
}

#[test]
fn status_endpoint_merges_provider_fields_and_groups_views() {
    let obs = Obs::new();
    obs.registry.gauge("sword_flush_queue_depth", "depth").set(5);
    let h = obs.registry.histogram("sword_stage_wait_nanos", "wait");
    h.record(1000);
    let status: JsonFn = Arc::new(|| {
        Value::Obj(vec![
            ("session".to_string(), Value::Str("/tmp/s".to_string())),
            ("races".to_string(), Value::Num(2.0)),
            ("generation".to_string(), Value::Num(9.0)),
        ])
    });
    let handles = TelemetryHandles::new(obs.clone()).with_status(status);
    let (server, addr) = start(&obs, ServerConfig::bind("127.0.0.1:0"), handles);

    let body = http_get(&addr, "/status", GET_TIMEOUT).unwrap();
    let doc = json::parse(&body).expect("status is valid JSON");
    assert_eq!(doc.get("ok"), Some(&Value::Bool(true)));
    assert_eq!(doc.get("session").and_then(Value::as_str), Some("/tmp/s"));
    assert_eq!(doc.get("races").and_then(Value::as_u64), Some(2));
    assert_eq!(doc.get("generation").and_then(Value::as_u64), Some(9));
    // Grouped views: queue gauges and histogram quantiles.
    let queues = doc.get("queues").unwrap();
    assert_eq!(queues.get("sword_flush_queue_depth").and_then(Value::as_u64), Some(5));
    let hists = doc.get("histograms").unwrap().as_arr().unwrap();
    assert!(hists
        .iter()
        .any(|r| r.get("name").and_then(Value::as_str) == Some("sword_stage_wait_nanos")));
    // Full flat snapshot rides along for delta-based dashboards.
    let metrics = doc.get("metrics").unwrap();
    assert!(metrics.get("sword_stage_wait_nanos_p95").is_some());
    server.shutdown();
}

#[test]
fn healthz_and_races_and_unknown_paths() {
    let obs = Obs::new();
    let races: JsonFn = Arc::new(|| {
        Value::Arr(vec![Value::Obj(vec![
            ("id".to_string(), Value::Num(0.0)),
            ("evidence".to_string(), Value::Str("a.rs:1|a.rs:2".to_string())),
        ])])
    });
    let handles = TelemetryHandles::new(obs.clone()).with_races(races);
    let (server, addr) = start(&obs, ServerConfig::bind("127.0.0.1:0"), handles);

    let health = http_get(&addr, "/healthz", GET_TIMEOUT).unwrap();
    let doc = json::parse(&health).unwrap();
    assert_eq!(doc.get("ok"), Some(&Value::Bool(true)));
    assert_eq!(doc.get("overload"), Some(&Value::Bool(false)));
    assert!(doc.get("sse_clients").is_some());
    assert!(doc.get("shed_total").is_some());

    let races = http_get(&addr, "/races", GET_TIMEOUT).unwrap();
    let doc = json::parse(&races).unwrap();
    assert_eq!(doc.as_arr().unwrap().len(), 1);
    assert_eq!(
        doc.as_arr().unwrap()[0].get("evidence").and_then(Value::as_str),
        Some("a.rs:1|a.rs:2")
    );

    assert!(http_get(&addr, "/nope", GET_TIMEOUT).is_err());
    server.shutdown();
}

#[test]
fn sse_streams_framed_journal_events_with_layer_filter() {
    let obs = Obs::new();
    let handles = TelemetryHandles::new(obs.clone());
    let (server, addr) = start(&obs, ServerConfig::bind("127.0.0.1:0"), handles);

    // Open the SSE stream: runtime layer only, close after 2 events.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .write_all(
            format!("GET /events?layer=runtime&limit=2 HTTP/1.1\r\nHost: {addr}\r\n\r\n")
                .as_bytes(),
        )
        .unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    // Wait for the subscription to land, then record and drain (the
    // tap forwards at drain time, like the periodic journal sink).
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let health = http_get(&addr, "/healthz", GET_TIMEOUT).unwrap();
        let doc = json::parse(&health).unwrap();
        if doc.get("sse_clients").and_then(Value::as_u64) == Some(1) {
            break;
        }
        assert!(Instant::now() < deadline, "SSE client never registered");
        std::thread::sleep(Duration::from_millis(10));
    }
    let rt = obs.journal.for_thread(Layer::Runtime, "app-0");
    let off = obs.journal.for_thread(Layer::Offline, "oa");
    rt.instant("flush-a", vec![("bytes".to_string(), 64.0)]);
    off.instant("discover", vec![]); // filtered out
    rt.instant("flush-b", vec![]);
    obs.journal.drain();

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    // Skip response head.
    loop {
        line.clear();
        reader.read_line(&mut line).unwrap();
        if line == "\r\n" {
            break;
        }
    }
    let mut events = Vec::new();
    while events.len() < 2 {
        line.clear();
        if reader.read_line(&mut line).unwrap() == 0 {
            break;
        }
        if line.starts_with(": keepalive") {
            continue;
        }
        if line.trim() == "event: journal" {
            let mut data = String::new();
            reader.read_line(&mut data).unwrap();
            let payload = data.strip_prefix("data: ").expect("data line follows event line");
            let doc = json::parse(payload.trim()).expect("SSE payload is one JSON event");
            events.push(doc);
        }
    }
    assert_eq!(events.len(), 2);
    assert_eq!(events[0].get("name").and_then(Value::as_str), Some("flush-a"));
    assert_eq!(events[0].get("layer").and_then(Value::as_str), Some("runtime"));
    assert_eq!(events[1].get("name").and_then(Value::as_str), Some("flush-b"));
    server.shutdown();
}

#[test]
fn snapshots_stay_consistent_under_concurrent_mutation() {
    let obs = Obs::new();
    let counter = obs.registry.counter("sword_mut_total", "mutated");
    let hist = obs.registry.histogram("sword_mut_nanos", "mutated");
    let handles = TelemetryHandles::new(obs.clone());
    // TTL 0 disables the cache so every read hits the live registry.
    let mut config = ServerConfig::bind("127.0.0.1:0");
    config.cache_ms = 0;
    let (server, addr) = start(&obs, config, handles);

    let stop = Arc::new(AtomicBool::new(false));
    let mut mutators = Vec::new();
    for t in 0..4 {
        let stop = Arc::clone(&stop);
        let counter = counter.clone();
        let hist = hist.clone();
        let registry = obs.registry.clone();
        mutators.push(std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                counter.inc();
                hist.record(i % 4096 + 1);
                if i.is_multiple_of(64) {
                    // Metric registration races against snapshot reads.
                    registry.gauge(&format!("sword_mut_gauge_{t}"), "registered live").set(i);
                }
                i += 1;
            }
        }));
    }

    let mut last_count = 0u64;
    for _ in 0..30 {
        let metrics = http_get(&addr, "/metrics", GET_TIMEOUT).unwrap();
        let count = metrics
            .lines()
            .find_map(|l| l.strip_prefix("sword_mut_total "))
            .and_then(|v| v.parse::<u64>().ok())
            .expect("counter line present");
        assert!(count >= last_count, "counter went backwards: {count} < {last_count}");
        last_count = count;

        let status = http_get(&addr, "/status", GET_TIMEOUT).unwrap();
        let doc = json::parse(&status).expect("status stays parseable under mutation");
        let m = doc.get("metrics").unwrap();
        let hist_count = m.get("sword_mut_nanos_count").and_then(Value::as_u64).unwrap();
        let hist_p50 = m.get("sword_mut_nanos_p50").and_then(Value::as_u64).unwrap();
        if hist_count > 0 {
            assert!(hist_p50 >= 1, "histogram quantile inconsistent: {hist_p50}");
        }
    }
    stop.store(true, Ordering::Relaxed);
    for m in mutators {
        m.join().unwrap();
    }
    server.shutdown();
}

#[test]
fn sse_client_cap_sheds_with_503_and_overload_is_reported() {
    let obs = Obs::new();
    let mut config = ServerConfig::bind("127.0.0.1:0");
    config.max_sse_clients = 1;
    let (server, addr) = start(&obs, config, TelemetryHandles::new(obs.clone()));

    let mut first = TcpStream::connect(&addr).unwrap();
    first.write_all(format!("GET /events HTTP/1.1\r\nHost: {addr}\r\n\r\n").as_bytes()).unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let health = http_get(&addr, "/healthz", GET_TIMEOUT).unwrap();
        let doc = json::parse(&health).unwrap();
        if doc.get("sse_clients").and_then(Value::as_u64) == Some(1) {
            assert_eq!(doc.get("overload"), Some(&Value::Bool(true)));
            break;
        }
        assert!(Instant::now() < deadline, "first SSE client never registered");
        std::thread::sleep(Duration::from_millis(10));
    }
    // The second client is shed, and the shed shows up in /healthz.
    assert!(http_get(&addr, "/events", GET_TIMEOUT).is_err());
    let health = http_get(&addr, "/healthz", GET_TIMEOUT).unwrap();
    let doc = json::parse(&health).unwrap();
    assert!(doc.get("shed_total").and_then(Value::as_u64).unwrap() >= 1);
    drop(first);
    server.shutdown();
}
