//! Minimal HTTP/1.1 request parsing and response writing over
//! `std::net::TcpStream`.
//!
//! The exporter speaks just enough HTTP for scrapers, dashboards, and
//! `curl`: GET requests, a handful of response headers, and
//! `Connection: close` semantics (one request per connection keeps the
//! bounded worker pool's accounting trivial).

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (request line + headers). Anything
/// larger is rejected; the exporter never needs bodies.
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// A parsed request line: method, path, and decoded query pairs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// HTTP method (`GET` for every endpoint we serve).
    pub method: String,
    /// Path without the query string (e.g. `/metrics`).
    pub path: String,
    /// Query pairs in order (`?layer=runtime&limit=10`).
    pub query: Vec<(String, String)>,
}

impl Request {
    /// First value of a query parameter.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// Reads and parses one request head from the stream. Returns `None`
/// for a malformed or oversized head (the caller answers 400).
pub fn read_request(stream: &mut TcpStream) -> io::Result<Option<Request>> {
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Ok(None);
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
        if head.len() > MAX_HEAD_BYTES {
            return Ok(None);
        }
    }
    let head = String::from_utf8_lossy(&head);
    let line = head.lines().next().unwrap_or("");
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return Ok(None);
    };
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let mut query = Vec::new();
    for pair in query_str.split('&').filter(|s| !s.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        query.push((percent_decode(k), percent_decode(v)));
    }
    Ok(Some(Request { method: method.to_string(), path: path.to_string(), query }))
}

// Decodes %XX escapes and '+' (space); bad escapes pass through.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let hex = |b: u8| (b as char).to_digit(16).map(|d| d as u8);
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' if i + 2 < bytes.len() => match (hex(bytes[i + 1]), hex(bytes[i + 2])) {
                (Some(hi), Some(lo)) => {
                    out.push(hi * 16 + lo);
                    i += 2;
                }
                _ => out.push(b'%'),
            },
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Writes a complete response with a body and closes the exchange.
/// Returns the number of bytes written (for the exporter's own byte
/// counter).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> io::Result<usize> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status,
        status_text(status),
        content_type,
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    Ok(head.len() + body.len())
}

/// Writes just the head of a streaming (SSE) response; the body follows
/// incrementally and the connection stays open until the server or the
/// client hangs up.
pub fn write_stream_head(stream: &mut TcpStream) -> io::Result<()> {
    stream.write_all(
        b"HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\nConnection: close\r\n\r\n",
    )?;
    stream.flush()
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a+b"), "a b");
        assert_eq!(percent_decode("runtime%2Coffline"), "runtime,offline");
        assert_eq!(percent_decode("bad%zz"), "bad%zz");
        assert_eq!(percent_decode("trail%2"), "trail%2");
    }
}
