//! Embedded HTTP telemetry plane for live SWORD sessions.
//!
//! A small blocking HTTP/1.1 server over `std::net::TcpListener` — no
//! external crates, in keeping with the workspace's std-only
//! discipline — that any long-running mode (`sword run --live`,
//! `sword watch`, `sword analyze`) mounts with `--listen ADDR`:
//!
//! | endpoint    | payload |
//! |-------------|---------|
//! | `/metrics`  | Prometheus text exposition straight from the live [`Registry`] |
//! | `/status`   | JSON snapshot: watermark, queue depths, races so far, memory vs. the paper bound |
//! | `/races`    | current race list with evidence ids |
//! | `/healthz`  | liveness + overload/backpressure state |
//! | `/events`   | SSE stream of journal events (`?layer=` filters, `?limit=` one-shot reads) |
//!
//! The exporter obeys the discipline it reports on: a bounded worker
//! pool and accept queue (overflow answers 503 and counts a shed),
//! snapshot responses cached for a short TTL so scrape storms cannot
//! amplify registry reads, per-client bounded SSE taps that drop events
//! rather than buffer, and its own cost metered into the registry it
//! serves (`sword_exporter_*`).

#![forbid(unsafe_code)]

pub mod http;
pub mod sse;

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sword_obs::json::Value;
use sword_obs::{Counter, Gauge, Histogram, Layer, Obs};

use http::{read_request, write_response, Request};
use sse::{stream_events, SseClient};

/// A provider of one JSON document (status extras, race lists). Called
/// on demand from exporter worker threads; must only *read* shared
/// state so telemetry can never perturb analysis results.
pub type JsonFn = Arc<dyn Fn() -> Value + Send + Sync>;

/// What the server serves: an observability context plus optional
/// mode-specific providers.
#[derive(Clone)]
pub struct TelemetryHandles {
    /// Journal (SSE source) and registry (/metrics, /status).
    pub obs: Obs,
    /// Extra top-level `/status` fields (session path, watermark,
    /// races-so-far, thread count) merged into the snapshot.
    pub status: Option<JsonFn>,
    /// The `/races` document; `[]` when absent (e.g. collector-only
    /// modes that never analyze).
    pub races: Option<JsonFn>,
}

impl TelemetryHandles {
    /// Handles over one observability context, no extra providers.
    pub fn new(obs: Obs) -> TelemetryHandles {
        TelemetryHandles { obs, status: None, races: None }
    }

    /// Attaches a `/status` extras provider.
    pub fn with_status(mut self, f: JsonFn) -> TelemetryHandles {
        self.status = Some(f);
        self
    }

    /// Attaches a `/races` provider.
    pub fn with_races(mut self, f: JsonFn) -> TelemetryHandles {
        self.races = Some(f);
        self
    }
}

/// Server tuning knobs. Defaults are sized so the exporter's footprint
/// stays far below one collector thread's budget: 2 workers, a
/// 32-connection accept queue, 8 SSE clients × 1024-event taps.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:9464` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads serving snapshot endpoints.
    pub workers: usize,
    /// Accept-queue bound; connections beyond it are shed with 503.
    pub pending: usize,
    /// Snapshot cache TTL in milliseconds for `/metrics` and `/status`.
    pub cache_ms: u64,
    /// Per-SSE-client tap capacity (events buffered before shedding).
    pub sse_queue: usize,
    /// Concurrent SSE client cap; further clients are shed with 503.
    pub max_sse_clients: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            pending: 32,
            cache_ms: 100,
            sse_queue: 1024,
            max_sse_clients: 8,
        }
    }
}

impl ServerConfig {
    /// Config bound to `addr` with default tuning.
    pub fn bind(addr: impl Into<String>) -> ServerConfig {
        ServerConfig { addr: addr.into(), ..ServerConfig::default() }
    }
}

// Exporter self-metering handles, registered into the registry the
// exporter itself serves — its cost is visible on every scrape.
struct ExporterMetrics {
    requests: Counter,
    request_nanos: Histogram,
    bytes: Counter,
    shed: Counter,
    sse_clients: Gauge,
    sse_dropped_events: Counter,
    sse_dropped_clients: Counter,
}

impl ExporterMetrics {
    fn register(obs: &Obs) -> ExporterMetrics {
        let r = &obs.registry;
        ExporterMetrics {
            requests: r.counter("sword_exporter_requests_total", "telemetry requests served"),
            request_nanos: r
                .histogram("sword_exporter_request_nanos", "telemetry request service time"),
            bytes: r.counter("sword_exporter_bytes_total", "telemetry response bytes written"),
            shed: r.counter(
                "sword_exporter_shed_total",
                "telemetry connections shed under overload (503)",
            ),
            sse_clients: r.gauge("sword_exporter_sse_clients", "connected SSE event streams"),
            sse_dropped_events: r.counter(
                "sword_exporter_sse_dropped_events_total",
                "SSE events dropped for slow clients",
            ),
            sse_dropped_clients: r.counter(
                "sword_exporter_sse_dropped_clients_total",
                "SSE clients disconnected for stalling",
            ),
        }
    }
}

struct Shared {
    handles: TelemetryHandles,
    metrics: ExporterMetrics,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    started: Instant,
    cache: Mutex<HashMap<&'static str, (Instant, String)>>,
    sse_active: AtomicUsize,
}

/// A running telemetry server. Dropping it without [`shutdown`] leaves
/// the threads serving until process exit (fine for run-to-completion
/// CLI modes); `shutdown` stops them deterministically.
///
/// [`shutdown`]: TelemetryServer::shutdown
pub struct TelemetryServer {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl TelemetryServer {
    /// Binds and starts serving. Endpoint threads hold only clones of
    /// the registry/journal handles, so everything served reflects live
    /// state without copying it.
    pub fn start(config: ServerConfig, handles: TelemetryHandles) -> io::Result<TelemetryServer> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let metrics = ExporterMetrics::register(&handles.obs);
        let shutdown = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Shared {
            handles,
            metrics,
            config,
            shutdown: Arc::clone(&shutdown),
            started: Instant::now(),
            cache: Mutex::new(HashMap::new()),
            sse_active: AtomicUsize::new(0),
        });

        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(shared.config.pending.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::new();
        for i in 0..shared.config.workers.max(1) {
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("obs-http-{i}"))
                    .spawn(move || worker_loop(rx, shared))?,
            );
        }
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("obs-http-accept".to_string())
                .spawn(move || accept_loop(listener, tx, shared))?
        };
        Ok(TelemetryServer { local_addr, shared, acceptor: Some(acceptor), workers })
    }

    /// The bound address (resolves `:0` to the chosen port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, drains the worker pool, and joins every server
    /// thread. SSE clients observe the flag within their keep-alive
    /// interval and disconnect.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Give detached SSE threads a bounded window to observe the
        // flag so their taps unsubscribe before the journal's next use.
        let deadline = Instant::now() + Duration::from_secs(2);
        while self.shared.sse_active.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

fn accept_loop(listener: TcpListener, tx: SyncSender<TcpStream>, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        match tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(mut stream)) => {
                // Overload: shed at the door rather than queue without
                // bound. The client gets an honest 503.
                shared.metrics.shed.inc();
                let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
                let _ = write_response(
                    &mut stream,
                    503,
                    "application/json",
                    "{\"ok\":false,\"error\":\"overloaded\"}",
                );
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
}

fn worker_loop(rx: Arc<Mutex<Receiver<TcpStream>>>, shared: Arc<Shared>) {
    loop {
        let stream = {
            let rx = rx.lock().expect("worker queue lock");
            rx.recv()
        };
        let Ok(stream) = stream else { break };
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        handle_connection(stream, &shared);
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    let t0 = Instant::now();
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let request = match read_request(&mut stream) {
        Ok(Some(request)) => request,
        Ok(None) => {
            let _ = write_response(&mut stream, 400, "text/plain", "bad request\n");
            return;
        }
        Err(_) => return,
    };
    shared.metrics.requests.inc();
    if request.method != "GET" {
        let _ = write_response(&mut stream, 405, "text/plain", "only GET is served\n");
        return;
    }
    let written = match request.path.as_str() {
        "/events" => {
            serve_sse(stream, &request, shared);
            shared.metrics.request_nanos.record(t0.elapsed().as_nanos() as u64);
            return;
        }
        "/metrics" => {
            let body =
                cached(shared, "/metrics", || shared.handles.obs.registry.render_prometheus());
            write_response(&mut stream, 200, "text/plain; version=0.0.4", &body)
        }
        "/status" => {
            let body = cached(shared, "/status", || status_json(shared).render());
            write_response(&mut stream, 200, "application/json", &body)
        }
        "/races" => {
            let body = match &shared.handles.races {
                Some(f) => f().render(),
                None => "[]".to_string(),
            };
            write_response(&mut stream, 200, "application/json", &body)
        }
        "/healthz" => write_response(&mut stream, 200, "application/json", &healthz_json(shared)),
        _ => write_response(&mut stream, 404, "text/plain", "unknown endpoint\n"),
    };
    if let Ok(n) = written {
        shared.metrics.bytes.add(n as u64);
    }
    shared.metrics.request_nanos.record(t0.elapsed().as_nanos() as u64);
}

// SSE clients park for the life of the stream, so they get their own
// thread instead of occupying the bounded snapshot pool; the count is
// capped and excess clients are shed.
fn serve_sse(mut stream: TcpStream, request: &Request, shared: &Arc<Shared>) {
    let cap = shared.config.max_sse_clients.max(1);
    if shared.sse_active.fetch_add(1, Ordering::SeqCst) >= cap {
        shared.sse_active.fetch_sub(1, Ordering::SeqCst);
        shared.metrics.shed.inc();
        let _ = write_response(
            &mut stream,
            503,
            "application/json",
            "{\"ok\":false,\"error\":\"sse client limit\"}",
        );
        return;
    }
    shared.metrics.sse_clients.set(shared.sse_active.load(Ordering::SeqCst) as u64);
    let layers: Vec<Layer> = request
        .query_param("layer")
        .map(|v| v.split(',').filter_map(Layer::from_name).collect())
        .unwrap_or_default();
    let limit = request.query_param("limit").and_then(|v| v.parse().ok()).unwrap_or(0);
    let client = SseClient {
        tap: shared.handles.obs.journal.tap(shared.config.sse_queue),
        layers,
        limit,
        dropped_events: shared.metrics.sse_dropped_events.clone(),
    };
    let thread_shared = Arc::clone(shared);
    let spawned = std::thread::Builder::new().name("obs-http-sse".to_string()).spawn(move || {
        let result = stream_events(&mut stream, client, &thread_shared.shutdown);
        match result {
            Ok(n) => thread_shared.metrics.bytes.add(n as u64),
            Err(_) => thread_shared.metrics.sse_dropped_clients.inc(),
        }
        thread_shared.sse_active.fetch_sub(1, Ordering::SeqCst);
        thread_shared
            .metrics
            .sse_clients
            .set(thread_shared.sse_active.load(Ordering::SeqCst) as u64);
    });
    if spawned.is_err() {
        shared.sse_active.fetch_sub(1, Ordering::SeqCst);
    }
}

// Serves a cached snapshot when it is younger than the TTL; otherwise
// recomputes. Under a scrape storm each window costs one registry read.
fn cached(shared: &Shared, key: &'static str, render: impl FnOnce() -> String) -> String {
    let ttl = Duration::from_millis(shared.config.cache_ms);
    let mut cache = shared.cache.lock().expect("cache lock");
    if let Some((at, body)) = cache.get(key) {
        if at.elapsed() < ttl {
            return body.clone();
        }
    }
    let body = render();
    cache.insert(key, (Instant::now(), body.clone()));
    body
}

fn status_json(shared: &Shared) -> Value {
    let obs = &shared.handles.obs;
    let mut pairs = vec![
        ("ok".to_string(), Value::Bool(true)),
        ("now_us".to_string(), Value::Num(obs.journal.now_us() as f64)),
        ("uptime_us".to_string(), Value::Num(shared.started.elapsed().as_micros() as f64)),
        ("journal_dropped_events".to_string(), Value::Num(obs.journal.dropped_events() as f64)),
        ("sse_clients".to_string(), Value::Num(shared.sse_active.load(Ordering::SeqCst) as f64)),
    ];
    if let Some(f) = &shared.handles.status {
        if let Value::Obj(extra) = f() {
            pairs.extend(extra);
        }
    }
    let snapshot = obs.registry.snapshot();
    let metrics: Vec<(String, Value)> =
        snapshot.iter().map(|(k, v)| (k.clone(), Value::Num(*v))).collect();
    // Pre-grouped views so dashboards need no name parsing: every
    // `*_queue_depth` gauge, and quantiles per histogram family.
    let queues: Vec<(String, Value)> = snapshot
        .iter()
        .filter(|(k, _)| k.ends_with("_queue_depth"))
        .map(|(k, v)| (k.clone(), Value::Num(*v)))
        .collect();
    let stages: Vec<Value> = sword_obs::histogram_rows(&snapshot)
        .into_iter()
        .map(|row| {
            Value::Obj(vec![
                ("name".to_string(), Value::Str(row.name)),
                ("count".to_string(), Value::Num(row.count as f64)),
                ("p50".to_string(), Value::Num(row.p50 as f64)),
                ("p95".to_string(), Value::Num(row.p95 as f64)),
                ("p99".to_string(), Value::Num(row.p99 as f64)),
                ("max".to_string(), Value::Num(row.max as f64)),
            ])
        })
        .collect();
    pairs.push(("queues".to_string(), Value::Obj(queues)));
    pairs.push(("histograms".to_string(), Value::Arr(stages)));
    pairs.push(("metrics".to_string(), Value::Obj(metrics)));
    Value::Obj(pairs)
}

fn healthz_json(shared: &Shared) -> String {
    let overload = shared.sse_active.load(Ordering::SeqCst) >= shared.config.max_sse_clients.max(1);
    Value::Obj(vec![
        ("ok".to_string(), Value::Bool(true)),
        ("overload".to_string(), Value::Bool(overload)),
        ("sse_clients".to_string(), Value::Num(shared.sse_active.load(Ordering::SeqCst) as f64)),
        ("shed_total".to_string(), Value::Num(shared.metrics.shed.get() as f64)),
        ("workers".to_string(), Value::Num(shared.config.workers as f64)),
        ("uptime_us".to_string(), Value::Num(shared.started.elapsed().as_micros() as f64)),
    ])
    .render()
}

/// Minimal blocking HTTP GET against a telemetry endpoint; returns the
/// response body. Shared by `sword top` and the tests — the same
/// zero-dependency discipline as the server side.
pub fn http_get(addr: &str, path: &str, timeout: Duration) -> io::Result<String> {
    use std::io::{Read, Write};
    let sock_addr: SocketAddr = addr
        .parse()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, format!("bad address: {e}")))?;
    let mut stream = TcpStream::connect_timeout(&sock_addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let Some(split) = response.find("\r\n\r\n") else {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "no response head"));
    };
    let head = &response[..split];
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no status line"))?;
    if status != 200 {
        return Err(io::Error::other(format!("HTTP {status} from {path}")));
    }
    Ok(response[split + 4..].to_string())
}
