//! Server-sent-events streaming of journal events.
//!
//! Each `/events` client gets its own bounded [`JournalTap`]; events are
//! forwarded at journal-drain time, so the stream rides the same
//! periodic pass that persists `obs.jsonl` and never touches recording
//! hot paths. Two layers of shedding keep slow clients from growing
//! memory: the tap drops (and counts) events when its channel fills,
//! and a client whose socket stalls past the write timeout is
//! disconnected outright.

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sword_obs::journal::JournalTap;
use sword_obs::{Counter, Layer};

/// How long to wait for the next event before emitting a keep-alive
/// comment (also the shutdown-flag polling cadence).
const KEEPALIVE: Duration = Duration::from_millis(500);

/// Per-client stream parameters.
pub struct SseClient {
    /// The subscribed tap.
    pub tap: JournalTap,
    /// Only forward events from these layers; empty means all.
    pub layers: Vec<Layer>,
    /// Close the stream after this many events (0 = unlimited). Lets
    /// tests and one-shot `curl` invocations terminate cleanly.
    pub limit: u64,
    /// Events shed because a tap channel filled (shared exporter
    /// counter).
    pub dropped_events: Counter,
}

/// Streams journal events to one client until the limit is reached, the
/// client hangs up, or the server shuts down. Returns bytes written.
pub fn stream_events(
    stream: &mut TcpStream,
    client: SseClient,
    shutdown: &Arc<AtomicBool>,
) -> std::io::Result<usize> {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    crate::http::write_stream_head(stream)?;
    let mut written = 0usize;
    let mut sent = 0u64;
    let mut reported_drops = 0u64;
    while !shutdown.load(Ordering::Relaxed) {
        let Some(event) = client.tap.recv_timeout(KEEPALIVE) else {
            // Keep-alive comment: detects dead clients between events.
            stream.write_all(b": keepalive\n\n")?;
            stream.flush()?;
            written += 13;
            continue;
        };
        if !client.layers.is_empty() && !client.layers.contains(&event.layer) {
            continue;
        }
        let drops = client.tap.dropped();
        if drops > reported_drops {
            client.dropped_events.add(drops - reported_drops);
            reported_drops = drops;
        }
        let frame = format!("event: journal\ndata: {}\n\n", event.to_json().render());
        stream.write_all(frame.as_bytes())?;
        stream.flush()?;
        written += frame.len();
        sent += 1;
        if client.limit > 0 && sent >= client.limit {
            break;
        }
    }
    Ok(written)
}
