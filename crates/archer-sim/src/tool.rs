//! The ARCHER detector as an `ompsim` tool.

use std::collections::HashMap;

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sword_metrics::MemGauge;
use sword_ompsim::{ParallelBeginInfo, TaskCreateInfo, TaskUid, ThreadContext, Tool};
use sword_trace::{MemAccess, MutexId, PcId, PcTable, RegionId, ThreadId};

use crate::shadow::{ShadowWord, StoreOutcome, MODELED_BYTES_PER_WORD};
use crate::vc::VectorClock;
use crate::ShadowCell;

/// How a full shadow word picks its eviction victim.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Deterministic rotating cursor per word (default; reproducible
    /// tables).
    RoundRobin,
    /// Seeded pseudo-random victim, closer to TSan's behaviour (used by
    /// the eviction ablation bench).
    Random(u64),
}

/// ARCHER configuration.
#[derive(Clone, Debug)]
pub struct ArcherConfig {
    /// The paper's "flush shadow" option ("archer-low"): clear shadow
    /// memory between independent top-level parallel regions.
    pub flush_shadow: bool,
    /// Node memory budget in bytes: when baseline + modeled tool memory
    /// exceeds it, the run is marked OOM and detection stops (the process
    /// would have been killed). `None` disables the model.
    pub node_budget: Option<u64>,
    /// Shadow-cell eviction victim selection.
    pub eviction: EvictionPolicy,
    /// Live gauge of modeled tool memory (fixed arena + shadow words +
    /// vector clocks), updated on every accounting pass. Share a clone
    /// with a metrics registry so the Figure 6–8 memory rows read the
    /// same measured value the node model charges.
    pub mem_gauge: MemGauge,
}

impl Default for ArcherConfig {
    fn default() -> Self {
        ArcherConfig {
            flush_shadow: false,
            node_budget: None,
            eviction: EvictionPolicy::RoundRobin,
            mem_gauge: MemGauge::new(),
        }
    }
}

/// One deduplicated race report (unordered source-line pair).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArcherRace {
    /// Smaller PC.
    pub pc_lo: PcId,
    /// Larger PC.
    pub pc_hi: PcId,
    /// Whether each side wrote (aligned with pc order).
    pub writes: (bool, bool),
    /// A racing address witness.
    pub addr: u64,
    /// Dynamic occurrences.
    pub occurrences: u64,
}

impl ArcherRace {
    /// Renders with resolved source locations.
    pub fn render(&self, pcs: &PcTable) -> String {
        format!(
            "archer race: {} (write={}) <-> {} (write={}) at {:#x} [seen {}x]",
            pcs.display(self.pc_lo),
            self.writes.0,
            pcs.display(self.pc_hi),
            self.writes.1,
            self.addr,
            self.occurrences
        )
    }
}

/// Modeled fixed footprint of the TSan-style engine at paper scale: the
/// runtime reserves its internal arenas (allocator regions, thread
/// registry, stack-trace storage) up front, before any application word
/// is shadowed. 16 MB is a conservative stand-in for TSan's fixed
/// reservation; it is what keeps ARCHER's memory above SWORD's bounded
/// buffers even on tiny benchmarks (the paper's Figure 6).
pub const ARCHER_FIXED_BYTES: u64 = 16 << 20;

/// Run statistics and memory accounting.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ArcherStats {
    /// Accesses processed (drops after OOM are not counted).
    pub accesses: u64,
    /// Distinct application words with live shadow state.
    pub shadow_words: u64,
    /// Peak distinct shadow words over the run (survives flushes).
    pub peak_shadow_words: u64,
    /// Evictions performed — each one is potential §II information loss.
    pub evictions: u64,
    /// Shadow flushes (archer-low).
    pub flushes: u64,
    /// Modeled tool bytes at paper scale (peak): shadow words × 32 +
    /// vector-clock state.
    pub modeled_tool_bytes: u64,
    /// `true` when the node model killed the run.
    pub oom: bool,
    /// Distinct races found.
    pub races: u64,
}

impl ArcherStats {
    /// Total modeled tool memory at paper scale: the fixed runtime arena
    /// plus the footprint-proportional shadow/clock state. This is the
    /// quantity the figures plot and the node model charges.
    pub fn modeled_total_bytes(&self) -> u64 {
        ARCHER_FIXED_BYTES + self.modeled_tool_bytes
    }
}

struct ThreadState {
    vc: VectorClock,
    epoch: u64,
}

#[derive(Default)]
struct RegionSync {
    fork_vc: VectorClock,
    join_vc: VectorClock,
    level: u32,
}

#[derive(Default)]
struct BarrierSync {
    acc: VectorClock,
    adopted: u64,
    span: u64,
}

/// Per-task synchronization state, keyed by [`TaskUid`].
#[derive(Default)]
struct TaskSync {
    /// Creator's clock at the creation point (the task body's floor).
    create_vc: VectorClock,
    /// Predecessor tasks this one `depend`s on (uids — the runtime's
    /// pseudo-region ids double as task uids).
    preds: Vec<TaskUid>,
    /// Executing thread's clock when the body finished; joined by
    /// dependent successors at their begin and by the creator at the
    /// next task synchronization point.
    end_vc: Option<VectorClock>,
}

struct State {
    threads: HashMap<ThreadId, ThreadState>,
    locks: HashMap<MutexId, VectorClock>,
    regions: HashMap<RegionId, RegionSync>,
    barriers: HashMap<(RegionId, u32), BarrierSync>,
    tasks: HashMap<TaskUid, TaskSync>,
    shadow: HashMap<u64, ShadowWord>,
    races: HashMap<(PcId, PcId), ArcherRace>,
    rng: SmallRng,
    baseline_bytes: u64,
    baseline_source: Option<std::sync::Arc<std::sync::atomic::AtomicU64>>,
    stats: ArcherStats,
}

/// The ARCHER happens-before detector. Attach to an
/// [`sword_ompsim::OmpSim`] as its tool.
///
/// The engine serializes on one lock, like TSan's per-access shadow
/// synchronization collapsed to a single point — the (substantial) online
/// slowdown this causes is part of what the paper measures against.
pub struct ArcherTool {
    config: ArcherConfig,
    state: Mutex<State>,
}

impl ArcherTool {
    /// Creates a detector.
    pub fn new(config: ArcherConfig) -> Self {
        let seed = match config.eviction {
            EvictionPolicy::Random(seed) => seed,
            EvictionPolicy::RoundRobin => 0,
        };
        ArcherTool {
            config,
            state: Mutex::new(State {
                threads: HashMap::new(),
                locks: HashMap::new(),
                regions: HashMap::new(),
                barriers: HashMap::new(),
                tasks: HashMap::new(),
                shadow: HashMap::new(),
                races: HashMap::new(),
                rng: SmallRng::seed_from_u64(seed),
                baseline_bytes: 0,
                baseline_source: None,
                stats: ArcherStats::default(),
            }),
        }
    }

    /// Default configuration.
    pub fn with_defaults() -> Self {
        Self::new(ArcherConfig::default())
    }

    /// Declares the application's baseline footprint for the node-budget
    /// model (call after allocating workload buffers).
    pub fn set_baseline_bytes(&self, bytes: u64) {
        self.state.lock().baseline_bytes = bytes;
    }

    /// Attaches a live baseline counter (e.g.
    /// `OmpSim::footprint_handle()`), so the node-budget model tracks the
    /// application footprint as it grows.
    pub fn attach_baseline_source(&self, source: std::sync::Arc<std::sync::atomic::AtomicU64>) {
        self.state.lock().baseline_source = Some(source);
    }

    /// `true` once the node model has killed the run.
    pub fn is_oom(&self) -> bool {
        self.state.lock().stats.oom
    }

    /// Deduplicated races sorted by source pair. Empty if the run OOMed
    /// before completion... exactly as a killed process reports nothing —
    /// races found *before* the kill are still returned, matching how a
    /// user would read partial tool output.
    pub fn races(&self) -> Vec<ArcherRace> {
        let state = self.state.lock();
        let mut v: Vec<ArcherRace> = state.races.values().cloned().collect();
        v.sort_by_key(|r| (r.pc_lo, r.pc_hi));
        v
    }

    /// Run statistics.
    pub fn stats(&self) -> ArcherStats {
        let state = self.state.lock();
        let mut stats = state.stats.clone();
        stats.shadow_words = state.shadow.len() as u64;
        stats.races = state.races.len() as u64;
        stats
    }

    fn thread_mut(state: &mut State, tid: ThreadId) -> &mut ThreadState {
        state.threads.entry(tid).or_insert_with(|| {
            let mut vc = VectorClock::new();
            let epoch = vc.tick(tid);
            ThreadState { vc, epoch }
        })
    }

    fn tick(state: &mut State, tid: ThreadId) {
        let ts = Self::thread_mut(state, tid);
        ts.epoch = ts.vc.tick(tid);
    }

    /// Updates modeled memory and applies the node budget.
    fn account(state: &mut State, config: &ArcherConfig) {
        let words = state.shadow.len() as u64;
        if words > state.stats.peak_shadow_words {
            state.stats.peak_shadow_words = words;
        }
        let vc_bytes: u64 = state.threads.values().map(|t| t.vc.heap_bytes()).sum();
        let modeled = words * MODELED_BYTES_PER_WORD + vc_bytes;
        if modeled > state.stats.modeled_tool_bytes {
            state.stats.modeled_tool_bytes = modeled;
        }
        // The gauge tracks the figures' quantity (fixed arena included):
        // its live value falls on shadow flushes, its peak is what the
        // memory rows report.
        config.mem_gauge.set(ARCHER_FIXED_BYTES + modeled);
        if let Some(budget) = config.node_budget {
            let baseline = match &state.baseline_source {
                Some(src) => src.load(std::sync::atomic::Ordering::Relaxed),
                None => state.baseline_bytes,
            };
            if baseline + ARCHER_FIXED_BYTES + modeled > budget {
                state.stats.oom = true;
            }
        }
    }
}

impl Tool for ArcherTool {
    fn parallel_begin(&self, info: &ParallelBeginInfo<'_>) {
        let mut state = self.state.lock();
        let fork_vc = {
            let ts = Self::thread_mut(&mut state, info.fork_tid);
            ts.vc.clone()
        };
        state.regions.insert(
            info.region,
            RegionSync { fork_vc, join_vc: VectorClock::new(), level: info.level },
        );
        Self::tick(&mut state, info.fork_tid);
    }

    fn parallel_end(&self, region: RegionId, fork_tid: ThreadId) {
        let mut state = self.state.lock();
        if let Some(sync) = state.regions.remove(&region) {
            let join = sync.join_vc;
            let ts = Self::thread_mut(&mut state, fork_tid);
            ts.vc.join(&join);
            Self::tick(&mut state, fork_tid);
            // archer-low: release shadow pages between independent
            // top-level regions.
            if self.config.flush_shadow && sync.level == 1 {
                state.shadow.clear();
                state.shadow.shrink_to_fit();
                state.stats.flushes += 1;
            }
        }
    }

    fn thread_begin(&self, ctx: &ThreadContext<'_>) {
        let mut state = self.state.lock();
        let fork_vc = state.regions.get(&ctx.region).map(|r| r.fork_vc.clone());
        let ts = Self::thread_mut(&mut state, ctx.tid);
        if let Some(fork_vc) = fork_vc {
            ts.vc.join(&fork_vc);
        }
        Self::tick(&mut state, ctx.tid);
    }

    fn thread_end(&self, ctx: &ThreadContext<'_>) {
        let mut state = self.state.lock();
        let vc = Self::thread_mut(&mut state, ctx.tid).vc.clone();
        if let Some(sync) = state.regions.get_mut(&ctx.region) {
            sync.join_vc.join(&vc);
        }
        Self::tick(&mut state, ctx.tid);
    }

    fn barrier_begin(&self, ctx: &ThreadContext<'_>) {
        let mut state = self.state.lock();
        let vc = Self::thread_mut(&mut state, ctx.tid).vc.clone();
        let sync = state.barriers.entry((ctx.region, ctx.bid)).or_insert_with(|| BarrierSync {
            acc: VectorClock::new(),
            adopted: 0,
            span: ctx.span,
        });
        sync.acc.join(&vc);
    }

    fn barrier_end(&self, ctx: &ThreadContext<'_>) {
        let mut state = self.state.lock();
        // `ctx.bid` was already advanced past the barrier we crossed.
        let key = (ctx.region, ctx.bid - 1);
        let (acc, done) = match state.barriers.get_mut(&key) {
            Some(sync) => {
                sync.adopted += 1;
                (sync.acc.clone(), sync.adopted == sync.span)
            }
            None => return,
        };
        if done {
            state.barriers.remove(&key);
        }
        let ts = Self::thread_mut(&mut state, ctx.tid);
        ts.vc.join(&acc);
        Self::tick(&mut state, ctx.tid);
    }

    fn task_create(&self, outer: &ThreadContext<'_>, info: &TaskCreateInfo<'_>) {
        let mut state = self.state.lock();
        let create_vc = Self::thread_mut(&mut state, outer.tid).vc.clone();
        state
            .tasks
            .insert(info.uid, TaskSync { create_vc, preds: info.preds.to_vec(), end_vc: None });
        Self::tick(&mut state, outer.tid);
    }

    fn task_begin(&self, _outer: &ThreadContext<'_>, task: &ThreadContext<'_>, uid: TaskUid) {
        let mut state = self.state.lock();
        // The body's clock floor: the creation point joined with every
        // `depend` predecessor's completion.
        let mut floor = match state.tasks.get(&uid) {
            Some(sync) => sync.create_vc.clone(),
            None => VectorClock::new(),
        };
        let preds: Vec<TaskUid> =
            state.tasks.get(&uid).map(|s| s.preds.clone()).unwrap_or_default();
        for pred in preds {
            if let Some(end) = state.tasks.get(&pred).and_then(|s| s.end_vc.as_ref()) {
                floor.join(end);
            }
        }
        let ts = Self::thread_mut(&mut state, task.tid);
        ts.vc.join(&floor);
        Self::tick(&mut state, task.tid);
    }

    fn task_end(&self, task: &ThreadContext<'_>, _outer: &ThreadContext<'_>, uid: TaskUid) {
        let mut state = self.state.lock();
        let end_vc = Self::thread_mut(&mut state, task.tid).vc.clone();
        if let Some(sync) = state.tasks.get_mut(&uid) {
            sync.end_vc = Some(end_vc);
        }
        Self::tick(&mut state, task.tid);
        // The creator does NOT adopt the body's clock here — the
        // continuation stays concurrent with the task until a taskwait,
        // taskgroup end, or barrier joins it.
    }

    fn task_sync(&self, restored: &ThreadContext<'_>, synced: &[TaskUid]) {
        let mut state = self.state.lock();
        let mut acc = VectorClock::new();
        for uid in synced {
            // Synced tasks never get referenced again (depend edges do
            // not cross a task synchronization point), so drop them.
            if let Some(end) = state.tasks.remove(uid).and_then(|s| s.end_vc) {
                acc.join(&end);
            }
        }
        let ts = Self::thread_mut(&mut state, restored.tid);
        ts.vc.join(&acc);
        Self::tick(&mut state, restored.tid);
    }

    fn mutex_acquired(&self, ctx: &ThreadContext<'_>, mutex: MutexId) {
        let mut state = self.state.lock();
        let lock_vc = state.locks.get(&mutex).cloned();
        let ts = Self::thread_mut(&mut state, ctx.tid);
        if let Some(lock_vc) = lock_vc {
            ts.vc.join(&lock_vc);
        }
        Self::tick(&mut state, ctx.tid);
    }

    fn mutex_released(&self, ctx: &ThreadContext<'_>, mutex: MutexId) {
        let mut state = self.state.lock();
        let vc = Self::thread_mut(&mut state, ctx.tid).vc.clone();
        state.locks.entry(mutex).and_modify(|l| l.join(&vc)).or_insert(vc);
        Self::tick(&mut state, ctx.tid);
    }

    fn access(&self, ctx: &ThreadContext<'_>, access: MemAccess) {
        let mut state = self.state.lock();
        if state.stats.oom {
            return; // the process was killed; nothing more is recorded
        }
        state.stats.accesses += 1;
        let tid = ctx.tid;
        let (vc, epoch) = {
            let ts = Self::thread_mut(&mut state, tid);
            (ts.vc.clone(), ts.epoch)
        };
        // Split the access into per-word byte ranges.
        let mut addr = access.addr;
        let mut remaining = access.size as u64;
        while remaining > 0 {
            let word = addr >> 3;
            let offset = (addr & 7) as u8;
            let len = remaining.min(8 - offset as u64) as u8;
            let victim = match self.config.eviction {
                EvictionPolicy::RoundRobin => None,
                EvictionPolicy::Random(_) => Some(state.rng.gen_range(0..crate::CELLS_PER_WORD)),
            };
            let entry = state.shadow.entry(word).or_default();
            // Race check against every retained cell.
            let mut found: Vec<(PcId, bool, u64)> = Vec::new();
            for cell in entry.cells() {
                let conflicting = cell.tid != tid
                    && cell.overlaps(offset, len)
                    && (cell.is_write || access.kind.is_write())
                    && !(cell.is_atomic && access.kind.is_atomic());
                if conflicting && (cell.epoch > vc.get(cell.tid)) {
                    found.push(((cell.pc), cell.is_write, (word << 3) + offset as u64));
                }
            }
            let outcome = entry
                .store(ShadowCell::new(tid, epoch, offset, len, access.kind, access.pc), victim);
            if outcome == StoreOutcome::Evicted {
                state.stats.evictions += 1;
            }
            for (other_pc, other_is_write, racy_addr) in found {
                let (lo, hi) = if access.pc <= other_pc {
                    (access.pc, other_pc)
                } else {
                    (other_pc, access.pc)
                };
                let writes = if access.pc <= other_pc {
                    (access.kind.is_write(), other_is_write)
                } else {
                    (other_is_write, access.kind.is_write())
                };
                state.races.entry((lo, hi)).and_modify(|r| r.occurrences += 1).or_insert(
                    ArcherRace { pc_lo: lo, pc_hi: hi, writes, addr: racy_addr, occurrences: 1 },
                );
            }
            addr += len as u64;
            remaining -= len as u64;
        }
        Self::account(&mut state, &self.config);
    }
}
