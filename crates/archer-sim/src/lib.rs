//! The ARCHER baseline: a TSan-style happens-before race detector.
//!
//! ARCHER (the paper's comparison point) layers OpenMP synchronization
//! semantics over ThreadSanitizer's engine: vector clocks propagated
//! through fork/join, barriers, and lock release→acquire edges, and a
//! fixed **shadow memory** of four access cells per 8-byte application
//! word. This crate reimplements that engine as a [`sword_ompsim::Tool`]
//! so both detectors observe identical executions.
//!
//! The three failure modes the paper attributes to this design *emerge
//! from the implementation* rather than being scripted:
//!
//! * **memory ∝ footprint** — the shadow map grows with every distinct
//!   application word touched (4 cells ≈ 4× word bytes, before map
//!   overhead), which is what drives it out of memory on large inputs;
//!   an optional node-memory budget (`ArcherConfig::node_budget`, fed by a
//!   `sword_metrics::NodeModel`) kills the analysis
//!   mid-run exactly as the real tool is killed (Table IV's `OOM`);
//! * **eviction misses** — a fifth access to a word evicts a random cell
//!   (seeded RNG for reproducibility), losing e.g. the one write record
//!   among many reads (§II's example, DataRaceBench's
//!   `nowait`/`privatemissing`, the 10 extra AMG races);
//! * **happens-before masking** — a schedule-artifact release→acquire
//!   edge orders otherwise-racy accesses (Figure 1(b)), hiding the race
//!   from any HB detector.
//!
//! The `flush shadow` option (the paper's "archer-low") clears shadow
//! memory between independent top-level parallel regions, trading some
//! runtime for a smaller footprint.

#![forbid(unsafe_code)]

mod shadow;
mod tool;
mod vc;

pub use shadow::{ShadowCell, ShadowWord, CELLS_PER_WORD, MODELED_BYTES_PER_WORD};
pub use tool::{
    ArcherConfig, ArcherRace, ArcherStats, ArcherTool, EvictionPolicy, ARCHER_FIXED_BYTES,
};
pub use vc::VectorClock;
