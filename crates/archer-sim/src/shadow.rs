//! TSan-style shadow memory: four access cells per 8-byte application
//! word, with eviction on overflow.

use sword_trace::{AccessKind, PcId, ThreadId};

/// Cells retained per application word — the TSan/ARCHER constant whose
/// consequences (eviction misses) §II of the paper describes.
pub const CELLS_PER_WORD: usize = 4;

/// Modeled bytes per shadow word at paper scale: 4 shadow cells of one
/// word each (the "memory consumption quintuples" arithmetic of §I).
pub const MODELED_BYTES_PER_WORD: u64 = (CELLS_PER_WORD as u64) * 8;

/// One shadow cell: a recorded access to (part of) a word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShadowCell {
    /// Accessing thread.
    pub tid: ThreadId,
    /// The thread's epoch at access time.
    pub epoch: u64,
    /// First byte within the word (0..8).
    pub offset: u8,
    /// Bytes covered (1..=8).
    pub len: u8,
    /// Write or read.
    pub is_write: bool,
    /// Atomic access.
    pub is_atomic: bool,
    /// Source location for reports.
    pub pc: PcId,
}

impl ShadowCell {
    /// Byte-range overlap within the word.
    #[inline]
    pub fn overlaps(&self, offset: u8, len: u8) -> bool {
        self.offset < offset + len && offset < self.offset + self.len
    }

    /// Builds a cell from an access.
    pub fn new(tid: ThreadId, epoch: u64, offset: u8, len: u8, kind: AccessKind, pc: PcId) -> Self {
        ShadowCell {
            tid,
            epoch,
            offset,
            len,
            is_write: kind.is_write(),
            is_atomic: kind.is_atomic(),
            pc,
        }
    }
}

/// The up-to-four cells of one application word.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShadowWord {
    cells: [Option<ShadowCell>; CELLS_PER_WORD],
    /// Rotating victim cursor for round-robin eviction.
    next_victim: u8,
}

/// What storing a cell did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreOutcome {
    /// Replaced this thread's stale record of the same range.
    Updated,
    /// Used a free slot.
    Filled,
    /// All slots full: an unrelated record was evicted — the §II
    /// information loss.
    Evicted,
}

impl ShadowWord {
    /// Iterates the occupied cells.
    pub fn cells(&self) -> impl Iterator<Item = &ShadowCell> {
        self.cells.iter().flatten()
    }

    /// Stores `cell`, preferring (1) this thread's matching slot, (2) a
    /// free slot, (3) eviction of the slot selected by `victim` — either
    /// a number from the detector's seeded RNG, or `None` for the
    /// deterministic round-robin cursor.
    pub fn store(&mut self, cell: ShadowCell, victim: Option<usize>) -> StoreOutcome {
        // Same thread, same range: refresh in place. A read never
        // overwrites this thread's write record (the write is the more
        // dangerous fact to remember) unless the new access is a write.
        for slot in self.cells.iter_mut() {
            if let Some(existing) = slot {
                if existing.tid == cell.tid
                    && existing.offset == cell.offset
                    && existing.len == cell.len
                    && (cell.is_write || !existing.is_write)
                {
                    *slot = Some(cell);
                    return StoreOutcome::Updated;
                }
            }
        }
        for slot in self.cells.iter_mut() {
            if slot.is_none() {
                *slot = Some(cell);
                return StoreOutcome::Filled;
            }
        }
        let slot = match victim {
            Some(v) => v % CELLS_PER_WORD,
            None => {
                let v = self.next_victim as usize % CELLS_PER_WORD;
                self.next_victim = (v as u8 + 1) % CELLS_PER_WORD as u8;
                v
            }
        };
        self.cells[slot] = Some(cell);
        StoreOutcome::Evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(tid: ThreadId, epoch: u64, kind: AccessKind) -> ShadowCell {
        ShadowCell::new(tid, epoch, 0, 8, kind, 0)
    }

    #[test]
    fn overlap_within_word() {
        let c = ShadowCell::new(0, 1, 2, 4, AccessKind::Read, 0); // bytes 2..6
        assert!(c.overlaps(0, 3));
        assert!(c.overlaps(5, 1));
        assert!(!c.overlaps(6, 2));
        assert!(!c.overlaps(0, 2));
    }

    #[test]
    fn fills_free_slots_first() {
        let mut w = ShadowWord::default();
        for tid in 0..4 {
            assert_eq!(w.store(cell(tid, 1, AccessKind::Read), None), StoreOutcome::Filled);
        }
        assert_eq!(w.cells().count(), 4);
    }

    #[test]
    fn same_thread_same_range_updates() {
        let mut w = ShadowWord::default();
        w.store(cell(3, 1, AccessKind::Read), None);
        assert_eq!(w.store(cell(3, 2, AccessKind::Read), None), StoreOutcome::Updated);
        assert_eq!(w.cells().count(), 1);
        assert_eq!(w.cells().next().unwrap().epoch, 2);
    }

    #[test]
    fn read_does_not_displace_own_write() {
        let mut w = ShadowWord::default();
        w.store(cell(3, 1, AccessKind::Write), None);
        // The read takes a fresh slot, leaving the write record intact.
        assert_eq!(w.store(cell(3, 2, AccessKind::Read), None), StoreOutcome::Filled);
        assert_eq!(w.cells().count(), 2);
        assert!(w.cells().any(|c| c.is_write && c.epoch == 1));
    }

    #[test]
    fn write_replaces_own_read() {
        let mut w = ShadowWord::default();
        w.store(cell(3, 1, AccessKind::Read), None);
        assert_eq!(w.store(cell(3, 2, AccessKind::Write), None), StoreOutcome::Updated);
        assert_eq!(w.cells().count(), 1);
        assert!(w.cells().next().unwrap().is_write);
    }

    #[test]
    fn fifth_access_evicts() {
        // The §II scenario: thread 0's write then four readers; the write
        // record is lost when the victim selector lands on it.
        let mut w = ShadowWord::default();
        w.store(cell(0, 1, AccessKind::Write), None);
        for tid in 1..4 {
            w.store(cell(tid, 1, AccessKind::Read), None);
        }
        assert_eq!(w.store(cell(4, 1, AccessKind::Read), None), StoreOutcome::Evicted);
        // round-robin victim 0 evicted slot 0, which held the write.
        assert!(
            w.cells().all(|c| !c.is_write),
            "the write record was evicted — the §II information loss"
        );
    }

    #[test]
    fn eviction_respects_victim_index() {
        let mut w = ShadowWord::default();
        for tid in 0..4 {
            w.store(cell(tid, 1, AccessKind::Read), None);
        }
        w.store(cell(9, 9, AccessKind::Read), Some(2));
        let tids: Vec<ThreadId> = w.cells().map(|c| c.tid).collect();
        assert_eq!(tids, vec![0, 1, 9, 3]);
    }
}
