//! Vector clocks over dense thread ids.

/// A grow-on-demand vector clock indexed by [`sword_trace::ThreadId`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VectorClock {
    clocks: Vec<u64>,
}

impl VectorClock {
    /// The zero clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Component for `tid` (0 when never set).
    #[inline]
    pub fn get(&self, tid: u32) -> u64 {
        self.clocks.get(tid as usize).copied().unwrap_or(0)
    }

    /// Sets component `tid`.
    pub fn set(&mut self, tid: u32, value: u64) {
        let idx = tid as usize;
        if idx >= self.clocks.len() {
            self.clocks.resize(idx + 1, 0);
        }
        self.clocks[idx] = value;
    }

    /// Increments component `tid`, returning the new value.
    pub fn tick(&mut self, tid: u32) -> u64 {
        let next = self.get(tid) + 1;
        self.set(tid, next);
        next
    }

    /// Pointwise maximum with `other`.
    pub fn join(&mut self, other: &VectorClock) {
        if other.clocks.len() > self.clocks.len() {
            self.clocks.resize(other.clocks.len(), 0);
        }
        for (mine, theirs) in self.clocks.iter_mut().zip(&other.clocks) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// `true` when every component of `self` is ≤ the corresponding
    /// component of `other` (self happens-before-or-equals other).
    pub fn le(&self, other: &VectorClock) -> bool {
        self.clocks.iter().enumerate().all(|(tid, &c)| c <= other.get(tid as u32))
    }

    /// Approximate heap bytes (memory accounting).
    pub fn heap_bytes(&self) -> u64 {
        (self.clocks.capacity() * std::mem::size_of::<u64>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_tick() {
        let mut vc = VectorClock::new();
        assert_eq!(vc.get(5), 0);
        vc.set(5, 7);
        assert_eq!(vc.get(5), 7);
        assert_eq!(vc.tick(5), 8);
        assert_eq!(vc.tick(0), 1);
        assert_eq!(vc.get(99), 0);
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VectorClock::new();
        a.set(0, 3);
        a.set(2, 5);
        let mut b = VectorClock::new();
        b.set(0, 1);
        b.set(1, 9);
        b.set(3, 2);
        a.join(&b);
        assert_eq!(a.get(0), 3);
        assert_eq!(a.get(1), 9);
        assert_eq!(a.get(2), 5);
        assert_eq!(a.get(3), 2);
    }

    #[test]
    fn le_partial_order() {
        let mut a = VectorClock::new();
        a.set(0, 1);
        let mut b = VectorClock::new();
        b.set(0, 2);
        b.set(1, 1);
        assert!(a.le(&b));
        assert!(!b.le(&a));
        assert!(a.le(&a.clone()));
        // Incomparable pair.
        let mut c = VectorClock::new();
        c.set(1, 5);
        assert!(!c.le(&a) && !a.le(&c));
        // Zero clock precedes everything.
        assert!(VectorClock::new().le(&a));
    }

    #[test]
    fn join_after_le() {
        let mut a = VectorClock::new();
        a.set(0, 4);
        let mut b = VectorClock::new();
        b.set(1, 4);
        let mut j = a.clone();
        j.join(&b);
        assert!(a.le(&j) && b.le(&j));
    }
}
