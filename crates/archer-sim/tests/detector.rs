//! Behavioural tests of the ARCHER baseline: correct HB propagation, and
//! the three paper-documented failure modes emerging from the engine.

use std::sync::Arc;

use archer_sim::{ArcherConfig, ArcherTool};
use sword_ompsim::{OmpSim, Sequencer};

fn run_archer(config: ArcherConfig, program: impl FnOnce(&OmpSim)) -> Arc<ArcherTool> {
    let tool = Arc::new(ArcherTool::new(config));
    let sim = OmpSim::with_tool(tool.clone());
    program(&sim);
    tool
}

#[test]
fn clean_loop_no_races() {
    let tool = run_archer(ArcherConfig::default(), |sim| {
        let a = sim.alloc::<f64>(512, 0.0);
        sim.run(|ctx| {
            ctx.parallel(4, |w| {
                w.for_static(0..512, |i| {
                    let v = w.read(&a, i);
                    w.write(&a, i, v + 1.0);
                });
            });
        });
    });
    assert!(tool.races().is_empty(), "{:?}", tool.races());
    assert!(tool.stats().accesses > 0);
}

#[test]
fn unprotected_counter_races() {
    let tool = run_archer(ArcherConfig::default(), |sim| {
        let c = sim.alloc::<u64>(1, 0);
        let seq = Sequencer::new();
        sim.run(|ctx| {
            let seq = &seq;
            ctx.parallel(2, |w| {
                // Interleave the two threads' accesses so neither thread's
                // records are all stale before the other looks.
                let base = w.team_index();
                for round in 0..4 {
                    seq.turn(round * 2 + base, || {
                        let v = w.read(&c, 0);
                        w.write(&c, 0, v + 1);
                    });
                }
            });
        });
    });
    assert!(!tool.races().is_empty());
}

#[test]
fn critical_sections_suppress_races() {
    let tool = run_archer(ArcherConfig::default(), |sim| {
        let c = sim.alloc::<u64>(1, 0);
        sim.run(|ctx| {
            ctx.parallel(4, |w| {
                for _ in 0..64 {
                    w.critical("sum", || {
                        let v = w.read(&c, 0);
                        w.write(&c, 0, v + 1);
                    });
                }
            });
        });
    });
    assert!(tool.races().is_empty(), "{:?}", tool.races());
}

#[test]
fn barrier_creates_happens_before() {
    let tool = run_archer(ArcherConfig::default(), |sim| {
        let a = sim.alloc::<f64>(128, 0.0);
        sim.run(|ctx| {
            ctx.parallel(4, |w| {
                w.for_static(0..128, |i| {
                    w.write(&a, i, 1.0);
                });
                // Reads of neighbours after the barrier: ordered.
                w.for_static(0..127, |i| {
                    let _ = w.read(&a, i + 1);
                });
            });
        });
    });
    assert!(tool.races().is_empty(), "{:?}", tool.races());
}

#[test]
fn fork_join_creates_happens_before() {
    let tool = run_archer(ArcherConfig::default(), |sim| {
        let a = sim.alloc::<u64>(64, 0);
        sim.run(|ctx| {
            ctx.parallel(4, |w| {
                w.for_static_nowait(0..64, |i| {
                    w.write(&a, i, 1);
                });
            });
            // Second region re-reads everything: ordered by join+fork.
            ctx.parallel(4, |w| {
                w.for_static_nowait(0..64, |i| {
                    let _ = w.read(&a, i);
                });
            });
        });
    });
    assert!(tool.races().is_empty(), "{:?}", tool.races());
}

#[test]
fn atomics_do_not_race() {
    let tool = run_archer(ArcherConfig::default(), |sim| {
        let c = sim.alloc::<u64>(1, 0);
        sim.run(|ctx| {
            ctx.parallel(4, |w| {
                for _ in 0..64 {
                    w.fetch_add(&c, 0, 1);
                }
            });
        });
    });
    assert!(tool.races().is_empty(), "{:?}", tool.races());
}

#[test]
fn figure1_interleaving_a_detected() {
    // Interleaving (a): thread 1 runs its locked section first, thread 0's
    // unprotected write comes later — no HB edge covers the pair.
    let tool = run_archer(ArcherConfig::default(), |sim| {
        let a = sim.alloc::<u64>(1, 0);
        let seq = Sequencer::new();
        sim.run(|ctx| {
            let seq = &seq;
            ctx.parallel(2, |w| {
                if w.team_index() == 0 {
                    seq.wait_for(1);
                    w.write(&a, 0, 1); // unprotected write AFTER t1's section
                    w.critical("l", || {});
                } else {
                    seq.turn(0, || {
                        w.critical("l", || {
                            let v = w.read(&a, 0);
                            w.write(&a, 0, v + 1);
                        });
                    });
                }
            });
        });
    });
    assert!(
        !tool.races().is_empty(),
        "interleaving (a) has no masking HB edge; the race must be caught"
    );
}

#[test]
fn figure1_interleaving_b_masked() {
    // Interleaving (b): thread 0 writes, then releases lock L; thread 1
    // acquires L afterwards and touches the same location. The
    // release→acquire edge orders the accesses — the race is masked.
    // (SWORD catches this same execution: see sword-offline's
    // `hb_masked_schedule_is_still_caught`.)
    let tool = run_archer(ArcherConfig::default(), |sim| {
        let a = sim.alloc::<u64>(1, 0);
        let seq = Sequencer::new();
        sim.run(|ctx| {
            let seq = &seq;
            ctx.parallel(2, |w| {
                if w.team_index() == 0 {
                    seq.turn(0, || {
                        w.write(&a, 0, 1); // unprotected write
                    });
                    seq.turn(1, || {
                        w.critical("l", || {}); // then release L
                    });
                } else {
                    seq.wait_for(2);
                    w.critical("l", || {
                        let v = w.read(&a, 0);
                        w.write(&a, 0, v + 1);
                    });
                }
            });
        });
    });
    assert!(
        tool.races().is_empty(),
        "the schedule-artifact HB edge masks the race from ARCHER: {:?}",
        tool.races()
    );
}

/// §II's shadow-eviction scenario, word-packing flavour: `a` is a `u32`
/// array, so `a[0]` and `a[1]` share one 8-byte shadow word. Thread 1
/// reads `a[0]`; then eight other threads read `a[1]` — byte-disjoint, so
/// no conflict, but each distinct (tid, range) takes a cell and the word
/// only has four. Thread 1's `a[0]` record is evicted. When thread 0
/// finally writes `a[0]`, the record of the genuinely racing read is gone
/// and the race is missed. The companion `control` run (no filler reads)
/// proves the detector would otherwise have caught it.
fn eviction_scenario(with_filler_readers: bool) -> Arc<ArcherTool> {
    run_archer(ArcherConfig::default(), |sim| {
        let a = sim.alloc::<u32>(2, 0);
        let seq = Sequencer::new();
        sim.run(|ctx| {
            let seq = &seq;
            ctx.parallel(10, |w| {
                let t = w.team_index();
                match t {
                    0 => {
                        // Writer goes last.
                        seq.turn(9, || {
                            w.write(&a, 0, 7);
                        });
                    }
                    1 => {
                        // The racing read goes first.
                        seq.turn(0, || {
                            let _ = w.read(&a, 0);
                        });
                    }
                    _ => {
                        // Filler readers of the *other* element in the
                        // same word.
                        seq.turn(t - 1, || {
                            if with_filler_readers {
                                let _ = w.read(&a, 1);
                            }
                        });
                    }
                }
            });
        });
    })
}

#[test]
fn shadow_eviction_hides_racing_read_record() {
    let control = eviction_scenario(false);
    assert_eq!(
        control.races().len(),
        1,
        "without cell pressure the write/read race is caught: {:?}",
        control.races()
    );
    let evicted = eviction_scenario(true);
    let stats = evicted.stats();
    assert!(stats.evictions >= 4, "cells must have overflowed: {}", stats.evictions);
    assert!(
        evicted.races().is_empty(),
        "the racing read's record was evicted before the write arrived: {:?}",
        evicted.races()
    );
}

#[test]
fn flush_shadow_reduces_memory() {
    let program = |sim: &OmpSim| {
        let a = sim.alloc::<f64>(4096, 0.0);
        let b = sim.alloc::<f64>(4096, 0.0);
        sim.run(|ctx| {
            ctx.parallel(4, |w| {
                w.for_static(0..4096, |i| {
                    w.write(&a, i, 1.0);
                });
            });
            ctx.parallel(4, |w| {
                w.for_static(0..4096, |i| {
                    w.write(&b, i, 1.0);
                });
            });
        });
    };
    let default = run_archer(ArcherConfig::default(), program);
    let low = run_archer(ArcherConfig { flush_shadow: true, ..Default::default() }, program);
    let d = default.stats();
    let l = low.stats();
    assert_eq!(l.flushes, 2);
    assert!(d.races == l.races);
    assert!(
        l.shadow_words < d.shadow_words,
        "flushing between regions must shrink live shadow: {} vs {}",
        l.shadow_words,
        d.shadow_words
    );
}

#[test]
fn shadow_grows_with_footprint_sword_like_bound_does_not() {
    // The core memory claim: ARCHER's modeled bytes scale with the
    // application's touched footprint.
    let run_with_len = |len: u64| {
        let tool = run_archer(ArcherConfig::default(), |sim| {
            let a = sim.alloc::<f64>(len, 0.0);
            sim.run(|ctx| {
                ctx.parallel(4, |w| {
                    w.for_static(0..len, |i| {
                        w.write(&a, i, 1.0);
                    });
                });
            });
        });
        tool.stats().modeled_tool_bytes
    };
    let small = run_with_len(1024);
    let big = run_with_len(8192);
    assert!(big > small * 6, "shadow must scale with footprint: {small} vs {big}");
    // 8192 f64 = 8192 words → modeled ≈ 8192 × 32.
    assert!(big >= 8192 * 32);
}

#[test]
fn node_budget_kills_run() {
    let tool =
        run_archer(ArcherConfig { node_budget: Some(1 << 20), ..Default::default() }, |sim| {
            // Baseline 512 KB; shadow pushes past 1 MB quickly.
            let a = sim.alloc::<f64>(65_536, 0.0);
            sim.run(|ctx| {
                ctx.sim();
                ctx.parallel(2, |w| {
                    w.for_static(0..65_536, |i| {
                        w.write(&a, i, 1.0);
                    });
                });
            });
        });
    // Tell it the baseline after the fact is too late for this test; the
    // budget is tight enough that shadow alone exceeds it.
    assert!(tool.is_oom(), "1 MB node cannot hold 2 MB of shadow cells");
    let stats = tool.stats();
    assert!(stats.accesses < 65_536 * 2, "detection stopped at the kill point");
}

#[test]
fn nested_regions_inherit_clocks() {
    let tool = run_archer(ArcherConfig::default(), |sim| {
        let a = sim.alloc::<u64>(8, 0);
        sim.run(|ctx| {
            ctx.parallel(2, |w| {
                let t = w.team_index();
                w.write(&a, t, 1);
                w.parallel(2, |inner| {
                    // Each inner team only touches its forker's slot:
                    // ordered by the nested fork.
                    let _ = inner.read(&a, t);
                });
            });
        });
    });
    assert!(tool.races().is_empty(), "{:?}", tool.races());
}

#[test]
fn sibling_tasks_race_and_taskwait_orders() {
    // Two independent sibling tasks write the same cell: no HB edge
    // covers the pair even though the inline schedule serializes them.
    let racy = run_archer(ArcherConfig::default(), |sim| {
        let a = sim.alloc::<u64>(1, 0);
        sim.run(|ctx| {
            ctx.parallel(2, |w| {
                w.master(|| {
                    w.task(|t| t.write(&a, 0, 1));
                    w.task(|t| t.write(&a, 0, 2));
                    w.taskwait();
                });
                w.barrier();
            });
        });
    });
    assert!(!racy.races().is_empty(), "sibling tasks have no ordering edge");

    // With a taskwait between them the second task's floor includes the
    // creator's post-sync clock, which has adopted the first body.
    let clean = run_archer(ArcherConfig::default(), |sim| {
        let a = sim.alloc::<u64>(1, 0);
        sim.run(|ctx| {
            ctx.parallel(2, |w| {
                w.master(|| {
                    w.task(|t| t.write(&a, 0, 1));
                    w.taskwait();
                    w.task(|t| t.write(&a, 0, 2));
                    w.taskwait();
                });
                w.barrier();
            });
        });
    });
    assert!(clean.races().is_empty(), "{:?}", clean.races());
}

#[test]
fn depend_edges_create_happens_before() {
    use sword_ompsim::DepMode;
    let tool = run_archer(ArcherConfig::default(), |sim| {
        let a = sim.alloc::<u64>(1, 0);
        sim.run(|ctx| {
            ctx.parallel(2, |w| {
                w.master(|| {
                    w.task_depend(&[(0, DepMode::Out)], |t| t.write(&a, 0, 1));
                    w.task_depend(&[(0, DepMode::In)], |t| {
                        let _ = t.read(&a, 0);
                    });
                    w.task_depend(&[(0, DepMode::InOut)], |t| {
                        let v = t.read(&a, 0);
                        t.write(&a, 0, v + 1);
                    });
                    w.taskwait();
                });
                w.barrier();
            });
        });
    });
    assert!(tool.races().is_empty(), "{:?}", tool.races());
}

#[test]
fn continuation_races_until_synced() {
    // The creator's continuation write is unordered against the task it
    // just spawned (no adoption at task_end) — caught. After a taskgroup
    // end the creator has adopted the body — clean.
    let racy = run_archer(ArcherConfig::default(), |sim| {
        let a = sim.alloc::<u64>(1, 0);
        sim.run(|ctx| {
            ctx.parallel(2, |w| {
                w.master(|| {
                    w.task(|t| t.write(&a, 0, 1));
                    w.write(&a, 0, 2);
                    w.taskwait();
                });
                w.barrier();
            });
        });
    });
    assert!(!racy.races().is_empty(), "continuation is concurrent with the task");

    let clean = run_archer(ArcherConfig::default(), |sim| {
        let a = sim.alloc::<u64>(1, 0);
        sim.run(|ctx| {
            ctx.parallel(2, |w| {
                w.master(|| {
                    w.taskgroup(|w| {
                        w.task(|t| t.write(&a, 0, 1));
                    });
                    w.write(&a, 0, 2);
                });
                w.barrier();
            });
        });
    });
    assert!(clean.races().is_empty(), "{:?}", clean.races());
}

#[test]
fn ordered_region_creates_happens_before() {
    let tool = run_archer(ArcherConfig::default(), |sim| {
        let c = sim.alloc::<u64>(1, 0);
        sim.run(|ctx| {
            ctx.parallel(4, |w| {
                w.for_static_ordered(0..64, |i, ol| {
                    w.ordered(ol, i, || {
                        let v = w.read(&c, 0);
                        w.write(&c, 0, v + 1);
                    });
                });
            });
        });
    });
    assert!(tool.races().is_empty(), "turn order + lock VCs order the updates");
}

#[test]
fn stats_shape() {
    let tool = run_archer(ArcherConfig::default(), |sim| {
        let a = sim.alloc::<f64>(64, 0.0);
        sim.run(|ctx| {
            ctx.parallel(2, |w| {
                w.for_static(0..64, |i| {
                    w.write(&a, i, 0.0);
                });
            });
        });
    });
    let s = tool.stats();
    assert_eq!(s.accesses, 64);
    assert_eq!(s.shadow_words, 64);
    assert_eq!(s.peak_shadow_words, 64);
    assert_eq!(s.evictions, 0);
    assert!(!s.oom);
    assert!(s.modeled_tool_bytes >= 64 * 32);
}

#[test]
fn mem_gauge_tracks_modeled_memory_live_and_peak() {
    // The config's gauge must report exactly what the figures plot: its
    // peak equals modeled_total_bytes(), and a shadow flush (archer-low)
    // pulls the live value back down while the peak survives.
    let gauge = sword_metrics::MemGauge::new();
    let config =
        ArcherConfig { flush_shadow: true, mem_gauge: gauge.clone(), ..Default::default() };
    let tool = run_archer(config, |sim| {
        let a = sim.alloc::<u64>(4096, 0);
        sim.run(|ctx| {
            ctx.parallel(2, |w| {
                w.for_static(0..4096, |i| {
                    w.write(&a, i, i);
                });
            });
        });
        // Second independent region: the flush between regions must have
        // dropped the live shadow charge before it refills.
        sim.run(|ctx| {
            ctx.parallel(2, |w| {
                w.for_static(0..8, |i| {
                    w.write(&a, i, i);
                });
            });
        });
    });
    let stats = tool.stats();
    assert!(stats.flushes >= 1, "archer-low flushed between regions");
    assert_eq!(gauge.peak(), stats.modeled_total_bytes(), "gauge peak is the figures' quantity");
    assert!(
        gauge.live() < gauge.peak(),
        "post-flush refill stays below the big region's peak ({} vs {})",
        gauge.live(),
        gauge.peak()
    );
}
