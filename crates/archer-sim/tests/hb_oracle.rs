//! Differential testing of the happens-before engine.
//!
//! Random well-formed two-thread schedules (reads, writes, lock
//! acquire/release) are fed to the detector through its callback
//! interface in a fixed global order, and compared against an
//! independently-written oracle: a textbook vector-clock simulation for
//! the happens-before relation, plus the record-retention rule for which
//! prior access the engine can still see (two threads on one 8-byte word
//! never exceed the four shadow cells, so eviction plays no part).
//!
//! The engine must report a racy source pair **iff** the oracle finds a
//! conflicting, non-HB-ordered pair whose earlier access is still
//! recorded.

use std::collections::BTreeSet;
use std::sync::Arc;

use archer_sim::{ArcherConfig, ArcherTool};
use proptest::prelude::*;
use sword_ompsim::{ThreadContext, Tool};
use sword_osl::Label;
use sword_trace::{AccessKind, MemAccess};

const WORD_ADDR: u64 = 0x1000;
const THREADS: u32 = 2;

#[derive(Clone, Copy, Debug, PartialEq)]
enum Op {
    Read,
    Write,
    Acquire(u32),
    Release(u32),
}

/// A feasibility-aware schedule generator: locks are acquired/released in
/// a globally consistent order (a lock is held by at most one thread).
fn arb_schedule() -> impl Strategy<Value = Vec<(u32, Op)>> {
    prop::collection::vec((0u32..THREADS, 0u8..8, 0u32..2), 0..40).prop_map(|raw| {
        let mut held: Vec<Option<u32>> = vec![None; 2]; // lock -> owner
        let mut schedule = Vec::new();
        for (tid, action, lock) in raw {
            let op = match action {
                0..=2 => Some(Op::Read),
                3 | 4 => Some(Op::Write),
                5 | 6 => {
                    // Acquire if the lock is free and not already held by us.
                    if held[lock as usize].is_none() {
                        held[lock as usize] = Some(tid);
                        Some(Op::Acquire(lock))
                    } else {
                        None
                    }
                }
                _ => {
                    if held[lock as usize] == Some(tid) {
                        held[lock as usize] = None;
                        Some(Op::Release(lock))
                    } else {
                        None
                    }
                }
            };
            if let Some(op) = op {
                schedule.push((tid, op));
            }
        }
        // Release any still-held locks so the schedule is well-formed.
        for (lock, owner) in held.iter().enumerate() {
            if let Some(tid) = owner {
                schedule.push((*tid, Op::Release(lock as u32)));
            }
        }
        schedule
    })
}

/// Distinct PC per (tid, op-kind) so pairs carry which sides raced.
fn pc_of(tid: u32, op: Op) -> u32 {
    match op {
        Op::Read => tid * 2,
        Op::Write => tid * 2 + 1,
        _ => unreachable!(),
    }
}

/// The oracle: textbook vector clocks + the retention rule.
fn oracle(schedule: &[(u32, Op)]) -> BTreeSet<(u32, u32)> {
    #[derive(Clone)]
    struct Rec {
        tid: u32,
        is_write: bool,
        epoch: u64,
        pc: u32,
    }
    let mut vc = vec![vec![0u64; THREADS as usize]; THREADS as usize];
    // Each thread's own component starts at 1 (thread birth).
    for (t, v) in vc.iter_mut().enumerate() {
        v[t] = 1;
    }
    let mut lock_vc: Vec<Option<Vec<u64>>> = vec![None; 2];
    let mut records: Vec<Rec> = Vec::new();
    let mut races = BTreeSet::new();

    let join = |a: &mut Vec<u64>, b: &[u64]| {
        for (x, y) in a.iter_mut().zip(b) {
            *x = (*x).max(*y);
        }
    };

    for &(tid, op) in schedule {
        let t = tid as usize;
        match op {
            Op::Acquire(l) => {
                if let Some(lvc) = &lock_vc[l as usize] {
                    let lvc = lvc.clone();
                    join(&mut vc[t], &lvc);
                }
                vc[t][t] += 1;
            }
            Op::Release(l) => {
                let cur = vc[t].clone();
                match &mut lock_vc[l as usize] {
                    Some(lvc) => join(lvc, &cur),
                    None => lock_vc[l as usize] = Some(cur),
                }
                vc[t][t] += 1;
            }
            Op::Read | Op::Write => {
                let is_write = op == Op::Write;
                let epoch = vc[t][t];
                let pc = pc_of(tid, op);
                // Check against retained records.
                for rec in &records {
                    if rec.tid != tid
                        && (rec.is_write || is_write)
                        && rec.epoch > vc[t][rec.tid as usize]
                    {
                        races.insert((pc.min(rec.pc), pc.max(rec.pc)));
                    }
                }
                // Retention mirrors the shadow word's slot rule: the
                // *first* same-thread slot the new access may replace (a
                // write replaces either kind, a read only a read) is
                // overwritten in place; otherwise a new slot is taken.
                let new_rec = Rec { tid, is_write, epoch, pc };
                match records.iter().position(|rec| rec.tid == tid && (is_write || !rec.is_write)) {
                    Some(i) => records[i] = new_rec,
                    None => records.push(new_rec),
                }
            }
        }
    }
    races
}

/// Feeds the same schedule to the real engine.
fn engine(schedule: &[(u32, Op)]) -> BTreeSet<(u32, u32)> {
    let tool = Arc::new(ArcherTool::new(ArcherConfig::default()));
    let labels: Vec<Label> =
        (0..THREADS).map(|i| Label::root().fork(i as u64, THREADS as u64)).collect();
    let ctx = |tid: u32| ThreadContext {
        tid,
        region: 0,
        parent_region: None,
        level: 1,
        team_index: tid as u64,
        span: THREADS as u64,
        bid: 0,
        label: &labels[tid as usize],
    };
    for &(tid, op) in schedule {
        match op {
            Op::Acquire(l) => tool.mutex_acquired(&ctx(tid), l),
            Op::Release(l) => tool.mutex_released(&ctx(tid), l),
            Op::Read => tool
                .access(&ctx(tid), MemAccess::new(WORD_ADDR, 8, AccessKind::Read, pc_of(tid, op))),
            Op::Write => tool
                .access(&ctx(tid), MemAccess::new(WORD_ADDR, 8, AccessKind::Write, pc_of(tid, op))),
        }
    }
    tool.races().iter().map(|r| (r.pc_lo, r.pc_hi)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn engine_matches_vector_clock_oracle(schedule in arb_schedule()) {
        let expect = oracle(&schedule);
        let got = engine(&schedule);
        prop_assert_eq!(got, expect, "schedule: {:?}", schedule);
    }
}

#[test]
fn oracle_sanity_lock_edge_masks() {
    // t0: W, release L; t1: acquire L, W — HB-ordered, no race.
    let masked = vec![
        (0, Op::Write),
        (0, Op::Acquire(0)),
        (0, Op::Release(0)),
        (1, Op::Acquire(0)),
        (1, Op::Release(0)),
        (1, Op::Write),
    ];
    assert!(oracle(&masked).is_empty());
    assert!(engine(&masked).is_empty());

    // Without the lock hand-off, the same writes race.
    let racy = vec![(0, Op::Write), (1, Op::Write)];
    assert_eq!(oracle(&racy).len(), 1);
    assert_eq!(engine(&racy).len(), 1);
}
