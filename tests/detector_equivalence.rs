//! Soundness agreement across detectors and configurations: on race-free
//! programs both detectors must stay silent at every team size (no false
//! alarms — the property §IV verifies before any table), and SWORD's
//! verdicts must be invariant to analysis parallelism and buffer sizing.

use std::path::PathBuf;
use std::sync::Arc;

use sword::archer::{ArcherConfig, ArcherTool};
use sword::offline::{analyze, AnalysisConfig};
use sword::ompsim::{OmpSim, SimConfig};
use sword::runtime::{run_collected, SwordConfig};
use sword::trace::SessionDir;
use sword::workloads::{drb_workloads, ompscr_workloads, RunConfig, Workload};

/// A session directory unique to this call, not just this process: tests
/// in this binary run concurrently, and a stale same-named dir from an
/// earlier aborted run must not be mistaken for ours either.
fn tmp(tag: &str) -> PathBuf {
    static NEXT: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("sword-equiv-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn race_free_suite() -> Vec<Box<dyn Workload>> {
    drb_workloads()
        .into_iter()
        .chain(ompscr_workloads())
        .filter(|w| w.spec().sword_races == 0 && w.spec().documented_races == 0)
        .collect()
}

#[test]
fn no_false_alarms_at_any_team_size() {
    for threads in [2usize, 5, 8] {
        let cfg = RunConfig::with_threads(threads);
        for w in race_free_suite() {
            let name = w.spec().name;
            // ARCHER.
            let tool = Arc::new(ArcherTool::new(ArcherConfig::default()));
            let sim = OmpSim::with_tool(tool.clone());
            w.execute(&sim, &cfg);
            assert!(
                tool.races().is_empty(),
                "{name}@{threads}: archer false alarm {:?}",
                tool.races()
            );
            // SWORD.
            let dir = tmp(&format!("{name}-{threads}"));
            run_collected(SwordConfig::new(&dir), SimConfig::default(), |sim| {
                w.execute(sim, &cfg);
            })
            .unwrap();
            let result = analyze(&SessionDir::new(&dir), &AnalysisConfig::default()).unwrap();
            assert_eq!(
                result.race_count(),
                0,
                "{name}@{threads}: sword false alarm {:?}",
                result.races
            );
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}

#[test]
fn sword_verdicts_invariant_to_buffers_and_workers() {
    let w = sword::workloads::find_workload("c_md").unwrap();
    let cfg = RunConfig::small();
    let mut verdicts = Vec::new();
    for (buffer, workers) in [(64usize, 1usize), (1024, 4), (25_000, 2)] {
        let dir = tmp(&format!("inv-{buffer}-{workers}"));
        run_collected(SwordConfig::new(&dir).buffer_events(buffer), SimConfig::default(), |sim| {
            w.execute(sim, &cfg)
        })
        .unwrap();
        let result =
            analyze(&SessionDir::new(&dir), &AnalysisConfig::default().with_workers(workers))
                .unwrap();
        let mut keys: Vec<_> = result.races.iter().map(|r| r.key).collect();
        keys.sort();
        verdicts.push(keys);
        std::fs::remove_dir_all(&dir).unwrap();
    }
    assert!(
        verdicts.windows(2).all(|p| p[0] == p[1]),
        "verdicts changed across configurations: {verdicts:?}"
    );
    assert_eq!(verdicts[0].len(), 3, "c_md ground truth");
}

#[test]
fn archer_flush_shadow_never_changes_verdicts_here() {
    // archer-low trades memory for time, not detection capability, on
    // every suite workload (single-region kernels cannot lose records to
    // the between-region flush).
    let cfg = RunConfig::small();
    for w in drb_workloads() {
        let run = |flush: bool| {
            let tool = Arc::new(ArcherTool::new(ArcherConfig {
                flush_shadow: flush,
                ..Default::default()
            }));
            let sim = OmpSim::with_tool(tool.clone());
            w.execute(&sim, &cfg);
            tool.races().len()
        };
        assert_eq!(run(false), run(true), "{}", w.spec().name);
    }
}
