//! Soundness agreement across detectors and configurations: on race-free
//! programs both detectors must stay silent at every team size (no false
//! alarms — the property §IV verifies before any table), and SWORD's
//! verdicts must be invariant to analysis parallelism and buffer sizing.

use std::path::PathBuf;
use std::sync::Arc;

use sword::archer::{ArcherConfig, ArcherTool};
use sword::offline::{analyze, AnalysisConfig};
use sword::ompsim::{OmpSim, SimConfig};
use sword::runtime::{run_collected, SwordConfig};
use sword::trace::SessionDir;
use sword::workloads::{drb_workloads, ompscr_workloads, RunConfig, Workload};

/// A session directory unique to this call, not just this process: tests
/// in this binary run concurrently, and a stale same-named dir from an
/// earlier aborted run must not be mistaken for ours either.
fn tmp(tag: &str) -> PathBuf {
    static NEXT: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("sword-equiv-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn race_free_suite() -> Vec<Box<dyn Workload>> {
    drb_workloads()
        .into_iter()
        .chain(ompscr_workloads())
        .filter(|w| w.spec().sword_races == 0 && w.spec().documented_races == 0)
        .collect()
}

#[test]
fn no_false_alarms_at_any_team_size() {
    for threads in [2usize, 5, 8] {
        let cfg = RunConfig::with_threads(threads);
        for w in race_free_suite() {
            let name = w.spec().name;
            // ARCHER.
            let tool = Arc::new(ArcherTool::new(ArcherConfig::default()));
            let sim = OmpSim::with_tool(tool.clone());
            w.execute(&sim, &cfg);
            assert!(
                tool.races().is_empty(),
                "{name}@{threads}: archer false alarm {:?}",
                tool.races()
            );
            // SWORD.
            let dir = tmp(&format!("{name}-{threads}"));
            run_collected(SwordConfig::new(&dir), SimConfig::default(), |sim| {
                w.execute(sim, &cfg);
            })
            .unwrap();
            let result = analyze(&SessionDir::new(&dir), &AnalysisConfig::default()).unwrap();
            assert_eq!(
                result.race_count(),
                0,
                "{name}@{threads}: sword false alarm {:?}",
                result.races
            );
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}

#[test]
fn sword_verdicts_invariant_to_buffers_and_workers() {
    let w = sword::workloads::find_workload("c_md").unwrap();
    let cfg = RunConfig::small();
    let mut verdicts = Vec::new();
    for (buffer, workers) in [(64usize, 1usize), (1024, 4), (25_000, 2)] {
        let dir = tmp(&format!("inv-{buffer}-{workers}"));
        run_collected(SwordConfig::new(&dir).buffer_events(buffer), SimConfig::default(), |sim| {
            w.execute(sim, &cfg)
        })
        .unwrap();
        let result =
            analyze(&SessionDir::new(&dir), &AnalysisConfig::default().with_workers(workers))
                .unwrap();
        let mut keys: Vec<_> = result.races.iter().map(|r| r.key).collect();
        keys.sort();
        verdicts.push(keys);
        std::fs::remove_dir_all(&dir).unwrap();
    }
    assert!(
        verdicts.windows(2).all(|p| p[0] == p[1]),
        "verdicts changed across configurations: {verdicts:?}"
    );
    assert_eq!(verdicts[0].len(), 3, "c_md ground truth");
}

#[test]
fn evidence_chains_identical_between_batch_and_live() {
    // Provenance must survive both analysis paths byte-for-byte: the
    // race list, each race's headline, and the full evidence chain
    // (interval coordinates, label derivation, solver witness, log byte
    // ranges) may not depend on whether the session was analyzed in one
    // batch or ingested incrementally. Generated programs get the same
    // check on every fuzz iteration (see `sword_fuzz_gen::driver`); this
    // covers the real benchmark kernels.
    use std::io::BufReader;
    use sword::offline::LiveAnalyzer;
    use sword::trace::PcTable;

    for name in ["plusplus-orig-yes", "c_md"] {
        let w = sword::workloads::find_workload(name).unwrap();
        let cfg = RunConfig::small();
        let dir = tmp(&format!("ev-{name}"));
        run_collected(SwordConfig::new(&dir).live(), SimConfig::default(), |sim| {
            w.execute(sim, &cfg)
        })
        .unwrap();
        let session = SessionDir::new(&dir);
        let batch = analyze(&session, &AnalysisConfig::default()).unwrap();
        assert!(!batch.races.is_empty(), "{name}: expected races to compare evidence on");

        let live_cfg = AnalysisConfig::sequential();
        let mut live = LiveAnalyzer::new(&session, &live_cfg);
        while !live.poll().unwrap().finished {}
        let live_result = live.into_result().unwrap();

        let pcs =
            PcTable::read_from(BufReader::new(std::fs::File::open(session.pcs_path()).unwrap()))
                .unwrap();
        let chain =
            |r: &sword::offline::Race| format!("{}\n{}", r.render(&pcs), r.render_evidence(&pcs));
        let batch_ev: Vec<String> = batch.races.iter().map(chain).collect();
        let live_ev: Vec<String> = live_result.races.iter().map(chain).collect();
        assert_eq!(batch_ev, live_ev, "{name}: batch and live evidence diverged");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn archer_flush_shadow_never_changes_verdicts_here() {
    // archer-low trades memory for time, not detection capability, on
    // every suite workload (single-region kernels cannot lose records to
    // the between-region flush).
    let cfg = RunConfig::small();
    for w in drb_workloads() {
        let run = |flush: bool| {
            let tool = Arc::new(ArcherTool::new(ArcherConfig {
                flush_shadow: flush,
                ..Default::default()
            }));
            let sim = OmpSim::with_tool(tool.clone());
            w.execute(&sim, &cfg);
            tool.races().len()
        };
        assert_eq!(run(false), run(true), "{}", w.spec().name);
    }
}
