//! Per-site attribution must stay in the compare stage's noise floor:
//! attaching a [`SiteTable`] to the offline analysis adds two dense-Vec
//! index-and-add credits per candidate pair in an otherwise lock-free
//! worker accumulator, and this test pins that at <5% of compare-stage
//! time in optimized builds (CI runs it under `--release`; see ci.yml).
//! Debug codegen doesn't inline the accumulator, so unoptimized builds
//! only get a coarse did-not-regress bound.
//!
//! Methodology mirrors `obs_overhead.rs` in `sword-runtime`, with one
//! refinement: each round measures both configurations back-to-back and
//! the assertion takes the *minimum ratio* across rounds. Machine noise
//! (frequency scaling, background load) moves both sides of a round
//! together, and the cleanest round upper-bounds the true overhead;
//! comparing independent per-side bests instead lets one lucky baseline
//! sample fail the test on a machine whose noise floor exceeds 5%.

use std::path::PathBuf;

use sword::obs::SiteTable;
use sword::offline::{analyze, AnalysisConfig};
use sword::ompsim::SimConfig;
use sword::runtime::{run_collected, SwordConfig};
use sword::trace::SessionDir;

const THREADS: usize = 4;
const SITES: u32 = 96;
const INTERVALS: u64 = 4;
const ROUNDS: usize = 5;

/// Collects a compare-heavy session: in every barrier interval each
/// thread sweeps the whole shared buffer tid-strided once per site, so
/// each tree holds `SITES` summarized strided nodes over the same
/// address range and the compare stage walks `SITES x SITES` candidate
/// pairs (all reaching the solver, none racing — tid-disjoint strides)
/// per concurrent tree pair.
fn collect(dir: &PathBuf) {
    const SWEEP: u64 = 8;
    let _ = std::fs::remove_dir_all(dir);
    run_collected(SwordConfig::new(dir), SimConfig::default(), |sim| {
        let a = sim.alloc::<u64>(SWEEP * THREADS as u64, 0);
        let pcs: Vec<_> = (0..SITES).map(|s| sim.intern_site("attribution.rs", s + 1)).collect();
        sim.run(|ctx| {
            ctx.parallel(THREADS, |w| {
                let tid = w.team_index();
                for _ in 0..INTERVALS {
                    for &pc in &pcs {
                        for k in 0..SWEEP {
                            w.write_pc(&a, k * THREADS as u64 + tid, 1, pc);
                        }
                    }
                    w.barrier();
                }
            });
        });
    })
    .expect("collection succeeds");
}

/// Compare-stage busy seconds of one sequential analysis.
fn compare_secs(session: &SessionDir, attribute: bool) -> f64 {
    let mut config = AnalysisConfig::sequential();
    if attribute {
        config = config.with_site_attribution(SiteTable::new());
    }
    let result = analyze(session, &config).expect("analysis succeeds");
    assert!(result.stats.candidate_pairs > 10_000, "compare stage must have real work");
    result.stages.get("compare").expect("compare stage recorded").busy_secs
}

#[test]
fn site_attribution_overhead_within_five_percent() {
    let dir = std::env::temp_dir().join(format!("sword-site-overhead-{}", std::process::id()));
    collect(&dir);
    let session = SessionDir::new(&dir);

    // Warm the page cache and code paths.
    compare_secs(&session, false);
    compare_secs(&session, true);

    let mut ratios = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        let plain = compare_secs(&session, false);
        let attr = compare_secs(&session, true);
        ratios.push(attr / plain);
    }
    std::fs::remove_dir_all(&dir).ok();
    let best = ratios.iter().copied().fold(f64::INFINITY, f64::min);
    let margin = if cfg!(debug_assertions) { 1.30 } else { 1.05 };
    assert!(
        best <= margin,
        "per-site attribution overhead {:.1}% exceeds {:.0}% of compare-stage \
         time in every round (ratios {ratios:?})",
        (best - 1.0) * 100.0,
        (margin - 1.0) * 100.0
    );
}
