//! Named regression tests for `decompress` / frame-reading hardening,
//! replaying the generator-produced adversarial corpus from
//! `sword::fuzz::adversarial`. Each test pins one decoder validation
//! path by case name so a future behavior change fails with the exact
//! grammar violation it regressed on, not just "some case broke".

use sword::compress::{decompress, frame_decompress, DecodeError, FrameReader};
use sword::fuzz::adversarial::{evil_frames, evil_streams};

/// Looks a raw-stream case up by name and asserts its exact error class.
fn assert_stream(name: &str, expect: DecodeError) {
    let case = evil_streams()
        .into_iter()
        .find(|c| c.name == name)
        .unwrap_or_else(|| panic!("adversarial corpus lost case `{name}`"));
    assert_eq!(case.expect, expect, "case `{name}` re-classified in the corpus");
    let mut out = Vec::new();
    assert_eq!(decompress(&case.bytes, &mut out), Err(expect), "case `{name}`");
}

/// Looks a framed-file case up by name and asserts both readers reject it.
fn assert_frame(name: &str) {
    let case = evil_frames()
        .into_iter()
        .find(|c| c.name == name)
        .unwrap_or_else(|| panic!("adversarial corpus lost case `{name}`"));
    let mut out = Vec::new();
    let err = FrameReader::new(&case.bytes[..])
        .read_to_end(&mut out)
        .expect_err(&format!("case `{name}` must not decode"));
    // Validation failures report InvalidData; a payload cut mid-read
    // surfaces the underlying short read instead. Both are clean errors.
    assert!(
        matches!(err.kind(), std::io::ErrorKind::InvalidData | std::io::ErrorKind::UnexpectedEof),
        "case `{name}`: unexpected error kind {:?}: {err}",
        err.kind()
    );
    if name != "trailing-garbage-frame" {
        // The one-shot helper reads a single frame, so trailing garbage
        // is invisible to it; every other case must fail there too.
        frame_decompress(&case.bytes).expect_err(&format!("case `{name}` one-shot"));
    }
}

#[test]
fn empty_stream_is_truncated() {
    assert_stream("empty-stream", DecodeError::Truncated);
}

#[test]
fn missing_literals_are_truncated() {
    assert_stream("literals-promised-but-missing", DecodeError::Truncated);
}

#[test]
fn literal_length_chain_cut_at_token_is_truncated() {
    assert_stream("literal-chain-cut-at-token", DecodeError::Truncated);
}

#[test]
fn literal_length_chain_exceeding_input_is_truncated() {
    assert_stream("literal-chain-exceeds-input", DecodeError::Truncated);
}

#[test]
fn zero_match_offset_is_a_bad_offset() {
    assert_stream("match-offset-zero", DecodeError::BadOffset);
}

#[test]
fn match_offset_beyond_output_is_a_bad_offset() {
    assert_stream("match-offset-beyond-output", DecodeError::BadOffset);
}

#[test]
fn match_truncated_at_its_offset_is_truncated() {
    assert_stream("match-truncated-at-offset", DecodeError::Truncated);
}

#[test]
fn bytes_after_the_terminal_token_are_truncated() {
    assert_stream("data-after-terminal", DecodeError::Truncated);
}

#[test]
fn match_chain_past_the_decode_run_cap_is_oversize() {
    // The headline hardening property: a 4-byte stream must not be able
    // to demand gigabytes of output. The cap fires mid-chain, before any
    // allocation proportional to the claimed length.
    assert_stream("match-chain-exceeds-decode-run", DecodeError::Oversize);
}

#[test]
fn frame_with_corrupt_magic_is_rejected() {
    assert_frame("bad-magic");
}

#[test]
fn frame_with_truncated_header_is_rejected() {
    assert_frame("truncated-header");
}

#[test]
fn frame_with_wrong_raw_length_is_rejected() {
    assert_frame("raw-len-mismatch");
}

#[test]
fn frame_with_payload_cut_short_is_rejected() {
    assert_frame("payload-cut-short");
}

#[test]
fn frame_with_flipped_token_byte_is_rejected() {
    assert_frame("payload-token-flip");
}

#[test]
fn stored_frame_with_length_mismatch_is_rejected() {
    assert_frame("stored-length-mismatch");
}

#[test]
fn garbage_after_a_valid_frame_is_rejected() {
    assert_frame("trailing-garbage-frame");
}

#[test]
fn corpus_and_this_suite_enumerate_the_same_cases() {
    // If a new adversarial case is added to the generator, this fails
    // until a named test above covers it.
    let streams: Vec<&str> = evil_streams().iter().map(|c| c.name).collect();
    let frames: Vec<&str> = evil_frames().iter().map(|c| c.name).collect();
    assert_eq!(
        streams,
        [
            "empty-stream",
            "literals-promised-but-missing",
            "literal-chain-cut-at-token",
            "literal-chain-exceeds-input",
            "match-offset-zero",
            "match-offset-beyond-output",
            "match-truncated-at-offset",
            "data-after-terminal",
            "match-chain-exceeds-decode-run",
        ]
    );
    assert_eq!(
        frames,
        [
            "bad-magic",
            "truncated-header",
            "raw-len-mismatch",
            "payload-cut-short",
            "payload-token-flip",
            "stored-length-mismatch",
            "trailing-garbage-frame",
        ]
    );
}
