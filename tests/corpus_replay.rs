//! Replays the checked-in fuzz corpus (`tests/corpus/*.prog`) through the
//! full differential pipeline on every `cargo test`: each program runs
//! under SWORD (batch and live) and ARCHER, and every verdict is diffed
//! against the ground-truth oracle.
//!
//! The corpus has two sources: `seeded_entries()` deterministically picks
//! the first 5 racy and first 5 race-free generated programs and shrinks
//! each while preserving its exact oracle verdict set, and
//! `tasking_entries()` pins six hand-written minimal tasking/scheduling
//! reproducers (taskwait, taskgroup scope, depend chain, racy siblings,
//! dynamic-schedule race, ordered clause). A regeneration guard keeps the
//! checked-in files byte-identical to what the current sources produce;
//! to refresh after an intentional generator change, run
//! `UPDATE_CORPUS=1 cargo test --test corpus_replay`.

use std::path::PathBuf;

use sword::fuzz::check_program;
use sword::fuzz::corpus::{load_dir, save, seeded_entries, tasking_entries};
use sword::fuzz::oracle;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("corpus")
}

fn expected_entries() -> Vec<(String, sword::fuzz::program::Program)> {
    let mut expected = seeded_entries();
    expected.extend(tasking_entries());
    expected.sort_by(|a, b| a.0.cmp(&b.0));
    expected
}

#[test]
fn checked_in_corpus_matches_the_generator() {
    let dir = corpus_dir();
    let expected = expected_entries();
    if std::env::var_os("UPDATE_CORPUS").is_some() {
        std::fs::create_dir_all(&dir).unwrap();
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            if path.extension().is_some_and(|e| e == "prog") {
                std::fs::remove_file(path).unwrap();
            }
        }
        for (name, prog) in &expected {
            let pairs = oracle::analyze(prog).pairs;
            let source = if name.starts_with("tasking-") {
                "hand-written tasking reproducer"
            } else {
                "generator-seeded reproducer"
            };
            let notes = vec![format!("{source}; oracle pairs: {pairs:?}")];
            save(&dir, name, prog, &notes).unwrap();
        }
    }

    let loaded = load_dir(&dir).unwrap_or_else(|e| panic!("corpus dir {dir:?}: {e}"));
    let loaded_names: Vec<&str> = loaded.iter().map(|(n, _)| n.as_str()).collect();
    let expected_names: Vec<&str> = expected.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(
        loaded_names, expected_names,
        "checked-in corpus out of sync with the generator — \
         rerun with UPDATE_CORPUS=1 if the generator changed on purpose"
    );
    for ((name, on_disk), (_, generated)) in loaded.iter().zip(&expected) {
        assert_eq!(
            on_disk.to_text(),
            generated.to_text(),
            "corpus entry `{name}` drifted from the generator"
        );
    }
}

#[test]
fn corpus_has_both_classes_nested_and_flat() {
    let loaded = load_dir(&corpus_dir()).unwrap();
    assert_eq!(loaded.len(), 16);
    let racy = loaded.iter().filter(|(n, _)| n.contains("-racy-")).count();
    let quiet = loaded.iter().filter(|(n, _)| n.contains("-quiet-")).count();
    assert_eq!((racy, quiet), (8, 8));
    let tasking = loaded.iter().filter(|(n, _)| n.starts_with("tasking-")).count();
    assert_eq!(tasking, 6, "tasking reproducers missing from corpus");
    assert!(loaded.iter().any(|(n, _)| n.ends_with("-nested")), "no nested program in corpus");
    assert!(loaded.iter().any(|(n, _)| n.ends_with("-flat")), "no flat program in corpus");
    // Names encode the class the oracle must still agree with.
    for (name, prog) in &loaded {
        let pairs = oracle::analyze(prog).pairs;
        assert_eq!(
            name.contains("-racy-"),
            !pairs.is_empty(),
            "corpus entry `{name}` changed verdict class: oracle pairs {pairs:?}"
        );
    }
}

#[test]
fn corpus_replays_cleanly_through_both_detectors() {
    let loaded = load_dir(&corpus_dir()).unwrap();
    assert!(!loaded.is_empty(), "empty corpus — nothing was replayed");
    for (name, prog) in &loaded {
        let report = check_program(prog, false);
        assert!(report.ok(), "corpus entry `{name}` diverged:\n  {}", report.failures.join("\n  "));
    }
}

/// Runs a corpus entry through collection + batch analysis and returns
/// the full `sword explain` rendering of race 0.
fn explain_text(entry: &str) -> String {
    use std::io::BufReader;

    use sword::fuzz::exec::run_program;
    use sword::offline::{analyze, render_explain, AnalysisConfig};
    use sword::ompsim::SimConfig;
    use sword::runtime::{run_collected, SwordConfig};
    use sword::trace::{PcTable, SessionDir};

    let loaded = load_dir(&corpus_dir()).unwrap();
    let (_, prog) = loaded.iter().find(|(n, _)| n == entry).expect("pinned corpus entry present");
    let o = oracle::analyze(prog);
    let dir =
        std::env::temp_dir().join(format!("sword-explain-pin-{entry}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    run_collected(SwordConfig::new(&dir), SimConfig::default(), |sim| {
        run_program(sim, prog, &o.plan)
    })
    .unwrap();
    let session = SessionDir::new(&dir);
    let result = analyze(&session, &AnalysisConfig::sequential()).unwrap();
    let pcs = PcTable::read_from(BufReader::new(std::fs::File::open(session.pcs_path()).unwrap()))
        .unwrap();
    let text = render_explain(&result, &pcs, 0).expect("corpus program has a race to explain");
    std::fs::remove_dir_all(&dir).unwrap();
    text
}

#[test]
fn explain_rendering_pins_the_full_evidence_chain() {
    let text = explain_text("seed000-team2-racy-nested");
    // The full rendering is pinned: any drift in evidence collection,
    // canonical side ordering, dedup fairness, label explanation, or the
    // solver witness shows up as a diff here. Both sides carry a
    // trailing task-fork pair (`[1,4294967296]` = slot 1 of TASK_SPAN),
    // so the pin also covers task-label rendering; the divergence that
    // decides concurrency is the earlier nested-team fork pair.
    let expected = "\
race #0 of 2
race: fuzz.gen:3 (Write) <-> fuzz.gen:3 (Write) at addr 0x10000048 [threads 3 vs 4, region 1, seen 1x]

side A: fuzz.gen:3 (Write) on thread 3
  barrier interval: region 1, interval 0, label [0,1][0,1][0,2][0,1][1,4294967296]
  access pattern: base 0x10000048, stride 0, count 0, size 8 (1 accesses)
  log bytes: [0, 7) of thread_3.log
side B: fuzz.gen:3 (Write) on thread 4
  barrier interval: region 2, interval 0, label [0,1][0,1][1,2][0,1][1,4294967296]
  access pattern: base 0x10000048, stride 0, count 0, size 8 (1 accesses)
  log bytes: [0, 7) of thread_4.log
concurrency (offset-span labels):
  label A = [0,1][0,1][0,2][0,1][1,4294967296]
  label B = [0,1][0,1][1,2][0,1][1,4294967296]
  common prefix (2 pairs) = [0,1][0,1]
  first divergent pair: [0,2] vs [1,2]
  same span 2: compare barrier generations 0 = 0/2 vs 0 = 1/2
  equal generation 0, different slots 0 vs 1: no barrier or join orders them => CONCURRENT
solver witness (overlap constraint model):
  addr 0x10000048 = A.base 0x10000048 + A.stride 0 * x0 0 + s0 0
  addr 0x10000048 = B.base 0x10000048 + B.stride 0 * x1 0 + s1 0
occurrences: 1 interval pair exhibited this source pair (first shown)
";
    assert_eq!(text, expected, "pinned explain rendering drifted");
}

#[test]
fn explain_rendering_pins_a_tasking_race_end_to_end() {
    let text = explain_text("tasking-siblings-racy-flat");
    // Two undeferred sibling tasks from one creator. Side A is the first
    // task (trailing `[1,4294967296]` = task side of fork 0); side B is
    // the second task, whose label threads through the first fork's
    // continuation (`[0,4294967296]`) before its own fork pair. The
    // first divergent pair has TASK_SPAN, so the renderer names the
    // task/continuation roles explicitly before the generation/slot
    // comparison that proves concurrency.
    let expected = "\
race #0 of 1
race: fuzz.gen:1 (Write) <-> fuzz.gen:2 (Write) at addr 0x10000000 [threads 2 vs 3, region 1, seen 1x]

side A: fuzz.gen:1 (Write) on thread 2
  barrier interval: region 1, interval 0, label [0,1][0,1][0,1][0,1][1,4294967296]
  access pattern: base 0x10000000, stride 0, count 0, size 8 (1 accesses)
  log bytes: [0, 7) of thread_2.log
side B: fuzz.gen:2 (Write) on thread 3
  barrier interval: region 2, interval 0, label [0,1][0,1][0,1][0,1][0,4294967296][1,1][1,4294967296]
  access pattern: base 0x10000000, stride 0, count 0, size 8 (1 accesses)
  log bytes: [0, 7) of thread_3.log
concurrency (offset-span labels):
  label A = [0,1][0,1][0,1][0,1][1,4294967296]
  label B = [0,1][0,1][0,1][0,1][0,4294967296][1,1][1,4294967296]
  common prefix (4 pairs) = [0,1][0,1][0,1][0,1]
  first divergent pair: [1,4294967296] vs [0,4294967296]
  span 4294967296 marks a task-creation fork: A is the created task, B is the creator's continuation
  same span 4294967296: compare barrier generations 0 = 1/4294967296 vs 0 = 0/4294967296
  equal generation 0, different slots 1 vs 0: no barrier or join orders them => CONCURRENT
solver witness (overlap constraint model):
  addr 0x10000000 = A.base 0x10000000 + A.stride 0 * x0 0 + s0 0
  addr 0x10000000 = B.base 0x10000000 + B.stride 0 * x1 0 + s1 0
occurrences: 1 interval pair exhibited this source pair (first shown)
";
    assert_eq!(text, expected, "pinned tasking explain rendering drifted");
}
