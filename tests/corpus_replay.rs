//! Replays the checked-in fuzz corpus (`tests/corpus/*.prog`) through the
//! full differential pipeline on every `cargo test`: each program runs
//! under SWORD (batch and live) and ARCHER, and every verdict is diffed
//! against the ground-truth oracle.
//!
//! The corpus is generator-derived: `seeded_entries()` deterministically
//! picks the first 5 racy and first 5 race-free generated programs and
//! shrinks each while preserving its exact oracle verdict set. A
//! regeneration guard keeps the checked-in files byte-identical to what
//! the current generator produces; to refresh after an intentional
//! generator change, run
//! `UPDATE_CORPUS=1 cargo test --test corpus_replay`.

use std::path::PathBuf;

use sword::fuzz::check_program;
use sword::fuzz::corpus::{load_dir, save, seeded_entries};
use sword::fuzz::oracle;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("corpus")
}

#[test]
fn checked_in_corpus_matches_the_generator() {
    let dir = corpus_dir();
    let expected = seeded_entries();
    if std::env::var_os("UPDATE_CORPUS").is_some() {
        std::fs::create_dir_all(&dir).unwrap();
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            if path.extension().is_some_and(|e| e == "prog") {
                std::fs::remove_file(path).unwrap();
            }
        }
        for (name, prog) in &expected {
            let pairs = oracle::analyze(prog).pairs;
            let notes = vec![format!("generator-seeded reproducer; oracle pairs: {pairs:?}")];
            save(&dir, name, prog, &notes).unwrap();
        }
    }

    let loaded = load_dir(&dir).unwrap_or_else(|e| panic!("corpus dir {dir:?}: {e}"));
    let loaded_names: Vec<&str> = loaded.iter().map(|(n, _)| n.as_str()).collect();
    let expected_names: Vec<&str> = expected.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(
        loaded_names, expected_names,
        "checked-in corpus out of sync with the generator — \
         rerun with UPDATE_CORPUS=1 if the generator changed on purpose"
    );
    for ((name, on_disk), (_, generated)) in loaded.iter().zip(&expected) {
        assert_eq!(
            on_disk.to_text(),
            generated.to_text(),
            "corpus entry `{name}` drifted from the generator"
        );
    }
}

#[test]
fn corpus_has_both_classes_nested_and_flat() {
    let loaded = load_dir(&corpus_dir()).unwrap();
    assert_eq!(loaded.len(), 10);
    let racy = loaded.iter().filter(|(n, _)| n.contains("-racy-")).count();
    let quiet = loaded.iter().filter(|(n, _)| n.contains("-quiet-")).count();
    assert_eq!((racy, quiet), (5, 5));
    assert!(loaded.iter().any(|(n, _)| n.ends_with("-nested")), "no nested program in corpus");
    assert!(loaded.iter().any(|(n, _)| n.ends_with("-flat")), "no flat program in corpus");
    // Names encode the class the oracle must still agree with.
    for (name, prog) in &loaded {
        let pairs = oracle::analyze(prog).pairs;
        assert_eq!(
            name.contains("-racy-"),
            !pairs.is_empty(),
            "corpus entry `{name}` changed verdict class: oracle pairs {pairs:?}"
        );
    }
}

#[test]
fn corpus_replays_cleanly_through_both_detectors() {
    let loaded = load_dir(&corpus_dir()).unwrap();
    assert!(!loaded.is_empty(), "empty corpus — nothing was replayed");
    for (name, prog) in &loaded {
        let report = check_program(prog, false);
        assert!(report.ok(), "corpus entry `{name}` diverged:\n  {}", report.failures.join("\n  "));
    }
}
