//! Cross-crate integration: the collected session is a faithful,
//! deterministic record of the execution, and the analyzer consumes
//! exactly what the collector produced.

use std::fs;
use std::io::BufReader;
use std::path::PathBuf;

use sword::offline::{analyze, AnalysisConfig, LoadedSession};
use sword::ompsim::{OmpSim, SimConfig};
use sword::runtime::{run_collected, SwordConfig, SwordStats};
use sword::trace::{read_meta, Event, EventDecoder, LogReader, SessionDir};

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sword-integ-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn collect_program(dir: &PathBuf) -> SwordStats {
    let (_, stats) = run_collected(SwordConfig::new(dir), SimConfig::default(), |sim| {
        let a = sim.alloc::<f64>(300, 0.0);
        let c = sim.alloc::<u64>(1, 0);
        sim.run(|ctx| {
            ctx.parallel(3, |w| {
                w.for_static(0..300, |i| {
                    w.write(&a, i, i as f64);
                });
                w.critical("c", || {
                    let v = w.read(&c, 0);
                    w.write(&c, 0, v + 1);
                });
                w.barrier();
                w.for_static_nowait(0..300, |i| {
                    let _ = w.read(&a, i);
                });
            });
        });
    })
    .expect("collection");
    stats
}

#[test]
fn every_logged_event_is_decodable_and_counted() {
    let dir = tmp("decode-all");
    let stats = collect_program(&dir);
    let session = SessionDir::new(&dir);
    let mut decoded_total = 0u64;
    for tid in session.thread_ids().unwrap() {
        let rows =
            read_meta(BufReader::new(fs::File::open(session.thread_meta(tid)).unwrap())).unwrap();
        let mut reader = LogReader::new(fs::File::open(session.thread_log(tid)).unwrap());
        for row in &rows {
            let mut bytes = Vec::new();
            reader.read_range(row.data_begin, row.size, &mut bytes).unwrap();
            let events = EventDecoder::new().decode_all(&bytes).unwrap();
            decoded_total += events.len() as u64;
            // Mutex events must be balanced inside each interval.
            let mut depth = 0i64;
            for e in &events {
                match e {
                    Event::MutexAcquire(_) => depth += 1,
                    Event::MutexRelease(_) => depth -= 1,
                    Event::Access(_) => {}
                }
                assert!(depth >= 0, "release before acquire in interval");
            }
            assert_eq!(depth, 0, "unbalanced mutex events in an interval");
        }
    }
    assert_eq!(decoded_total, stats.events, "collector and logs agree on event count");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn collection_is_deterministic_per_thread() {
    // The same pinned program collected twice produces byte-identical
    // per-thread logs and metadata (modulo nothing: static scheduling and
    // virtual addresses are deterministic).
    let d1 = tmp("det-1");
    let d2 = tmp("det-2");
    collect_program(&d1);
    collect_program(&d2);
    let s1 = SessionDir::new(&d1);
    let s2 = SessionDir::new(&d2);
    assert_eq!(s1.thread_ids().unwrap(), s2.thread_ids().unwrap());
    for tid in s1.thread_ids().unwrap() {
        let meta1 = fs::read(s1.thread_meta(tid)).unwrap();
        let meta2 = fs::read(s2.thread_meta(tid)).unwrap();
        assert_eq!(meta1, meta2, "meta files differ for tid {tid}");
        let log1 = fs::read(s1.thread_log(tid)).unwrap();
        let log2 = fs::read(s2.thread_log(tid)).unwrap();
        assert_eq!(log1, log2, "log files differ for tid {tid}");
    }
    fs::remove_dir_all(&d1).unwrap();
    fs::remove_dir_all(&d2).unwrap();
}

#[test]
fn analysis_is_idempotent_and_stream_insensitive() {
    let dir = tmp("idem");
    collect_program(&dir);
    let session = SessionDir::new(&dir);
    let r1 = analyze(&session, &AnalysisConfig::sequential()).unwrap();
    let r2 = analyze(&session, &AnalysisConfig::sequential()).unwrap();
    let r3 = analyze(&session, &AnalysisConfig::sequential().with_chunk_bytes(11)).unwrap();
    let keys =
        |r: &sword::offline::AnalysisResult| -> Vec<_> { r.races.iter().map(|x| x.key).collect() };
    assert_eq!(keys(&r1), keys(&r2));
    assert_eq!(keys(&r1), keys(&r3));
    assert_eq!(r1.stats.events, r3.stats.events);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn offline_label_reconstruction_matches_runtime_labels() {
    // A tool records every worker's live label; the analyzer's
    // fork-label · [offset, span] reconstruction must reproduce them
    // exactly, barrier bumps included.
    use std::sync::{Arc, Mutex};
    use sword::ompsim::{ThreadContext, Tool};
    use sword::osl::Label;

    #[derive(Default)]
    struct LabelSpy {
        labels: Mutex<Vec<(u32, u64, u32, Label)>>, // (tid, region, bid, label)
    }
    impl Tool for LabelSpy {
        fn thread_begin(&self, ctx: &ThreadContext<'_>) {
            self.labels.lock().unwrap().push((ctx.tid, ctx.region, ctx.bid, ctx.label.clone()));
        }
        fn barrier_end(&self, ctx: &ThreadContext<'_>) {
            self.labels.lock().unwrap().push((ctx.tid, ctx.region, ctx.bid, ctx.label.clone()));
        }
    }

    // Run the SAME deterministic program twice: once spied, once
    // collected. Static scheduling makes the structures identical.
    let program = |sim: &OmpSim| {
        let a = sim.alloc::<u64>(64, 0);
        sim.run(|ctx| {
            ctx.parallel(2, |w| {
                w.write(&a, w.team_index(), 1);
                w.barrier();
                w.parallel(2, |inner| {
                    inner.write(&a, 8 + inner.team_index(), 1);
                });
                w.barrier();
                w.write(&a, 16 + w.team_index(), 1);
            });
        });
    };

    let spy = Arc::new(LabelSpy::default());
    let sim = OmpSim::with_tool(spy.clone());
    program(&sim);

    let dir = tmp("labels");
    run_collected(SwordConfig::new(&dir), SimConfig::default(), |sim| program(sim)).unwrap();
    let loaded = LoadedSession::load(&SessionDir::new(&dir)).unwrap();

    // Region ids of concurrent sibling regions may be assigned in either
    // order across runs; the (bid, label) pair is the schedule-invariant
    // identity of a barrier interval.
    let mut live: Vec<(u32, String)> = spy
        .labels
        .lock()
        .unwrap()
        .iter()
        .map(|(_, _, bid, label)| (*bid, format!("{label}")))
        .collect();
    live.sort();
    live.dedup();

    let mut reconstructed: Vec<(u32, String)> = Vec::new();
    for (_, rows) in &loaded.threads {
        for row in rows {
            let label = sword::offline::intervals::full_label(&loaded, row).unwrap();
            reconstructed.push((row.bid, format!("{label}")));
        }
    }
    reconstructed.sort();
    reconstructed.dedup();

    assert_eq!(live, reconstructed, "offline labels must equal runtime labels");
    fs::remove_dir_all(&dir).unwrap();
}
